//! Cross-view **shared-prefix i-diff reuse** — the engine hook under
//! the multi-view catalog (`idivm-sched`).
//!
//! The paper's idIVM is a multi-view maintainer: i-diffs are computed
//! once per base-table modification and pushed through every dependent
//! view. When several registered views contain the *same operator
//! subtree* over the same base tables (e.g. the BSMA Q7 family all
//! starting from `σ_ts(mentions ⋈ microblog)`), the i-diffs at that
//! subtree's root are a pure function of
//!
//! * the subtree structure (ID-extended plan + the `minimize` knob),
//! * the base-table i-diff schemas of the tables it scans, and
//! * the pending net changes restricted to those tables
//!
//! — base tables are never mutated during a maintenance round, so the
//! value is identical for every view maintained against the same
//! pending net in the same round. [`detect_shared_prefixes`] finds such
//! subtrees across a set of registered engines; the engine's shared
//! walk ([`crate::IdIvm::maintain_with_changes_shared`]) then computes
//! each prefix **once** per round and serves every other dependent view
//! from the round-scoped [`SharedDiffCache`] at zero counted accesses.
//!
//! Soundness invariants (enforced by the designation rules here):
//!
//! 1. **No cache strictly inside a prefix.** Skipping the subtree walk
//!    skips its interior cache-boundary applies, which would let a
//!    reusing view's private caches rot. A cache *at* the prefix root
//!    is fine — the shared walk still applies the (reused) diffs there.
//! 2. **Keys bind structure + schemas + pending net.** The round lookup
//!    key ties the structural fingerprint to a digest of the net
//!    changes of the subtree's base tables, so views with different
//!    pending horizons (deferred vs eager) can never alias.
//! 3. **Per-round lifetime.** A [`SharedDiffCache`] must be created
//!    fresh for each scheduler round (and horizon group) and dropped
//!    afterwards; entries are never carried across rounds.

use crate::access::PathId;
use crate::diff::DiffInstance;
use crate::engine::IdIvm;
use crate::trace::op_label;
use idivm_algebra::Plan;
use idivm_reldb::{StatsSnapshot, TableChanges};
use idivm_types::Key;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One designated shared-prefix boundary inside a view's plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSpec {
    /// Structural fingerprint: subtree debug form + `minimize` knob +
    /// the i-diff schema fingerprints of the subtree's base tables.
    /// Views sharing this string compute identical i-diffs at the
    /// boundary for identical pending nets.
    pub structural: String,
    /// Structure-only fingerprint ([`structure_key`]): the subtree
    /// debug form + `minimize` knob, *without* the per-view diff-schema
    /// splits. This is the promotion-matching key — consumers of a
    /// materialized intermediate regenerate their own diff schemas from
    /// the backing table, so schema-split compatibility (required for
    /// round-sharing) is not required for promotion.
    pub structure: String,
    /// Base tables scanned by the subtree, sorted and deduplicated —
    /// the net-digest domain.
    pub tables: Vec<String>,
    /// Human-readable label for reports (`op` + scan list).
    pub label: String,
}

/// A view's designated shared-prefix boundaries: plan path → spec.
/// Computed by [`detect_shared_prefixes`]; consumed by
/// [`crate::IdIvm::maintain_with_changes_shared`]. Empty means the view
/// shares nothing (the shared walk degrades to the plain walk).
#[derive(Debug, Clone, Default)]
pub struct SharedPrefixes {
    /// Designated boundaries.
    pub map: HashMap<PathId, PrefixSpec>,
}

impl SharedPrefixes {
    /// No designated prefixes.
    pub fn none() -> Self {
        SharedPrefixes::default()
    }

    /// Number of designated boundaries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no boundary is designated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The per-round lookup key for the boundary at `path` under the
    /// pending net `net`, or `None` if `path` is not designated.
    pub fn round_key(
        &self,
        path: &PathId,
        net: &HashMap<String, TableChanges>,
    ) -> Option<String> {
        let spec = self.map.get(path)?;
        Some(format!(
            "{}#{:016x}",
            spec.structural,
            net_digest(net, &spec.tables)
        ))
    }
}

/// What happened at one shared prefix over a cache's lifetime (one
/// scheduler round / horizon group).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPrefixStat {
    /// Report label (see [`PrefixSpec::label`]).
    pub label: String,
    /// Structure-only fingerprint of the boundary subtree (see
    /// [`PrefixSpec::structure`]) — the key the adaptive promotion
    /// trackers accumulate per-round observations under.
    pub structure: String,
    /// Counted accesses the one computation spent (subtree walk).
    pub compute_accesses: StatsSnapshot,
    /// Diff tuples published at the boundary.
    pub diff_tuples: usize,
    /// Reuses served from the cache after the computation.
    pub hits: u64,
}

impl SharedPrefixStat {
    /// Counted accesses the reuses avoided: every hit would have spent
    /// the compute cost again.
    pub fn saved_accesses(&self) -> u64 {
        self.compute_accesses.total() * self.hits
    }
}

#[derive(Debug)]
struct SharedEntry {
    diffs: Vec<DiffInstance>,
    stat: SharedPrefixStat,
}

/// Round-scoped cache of shared-prefix i-diffs: the first view to walk
/// a designated subtree publishes its boundary diffs (plus compute
/// cost); every later view with the same round key clones them at zero
/// counted accesses. Create one per scheduler round (per horizon
/// group), drop it when the round ends — entries must never outlive
/// the base-table state they were computed against.
#[derive(Debug, Default)]
pub struct SharedDiffCache {
    entries: HashMap<String, SharedEntry>,
}

impl SharedDiffCache {
    /// An empty round cache.
    pub fn new() -> Self {
        SharedDiffCache::default()
    }

    /// Serve a reuse: clone the published diffs for `key` and count the
    /// hit. `None` means this round key has not been computed yet.
    pub fn reuse(&mut self, key: &str) -> Option<Vec<DiffInstance>> {
        let e = self.entries.get_mut(key)?;
        e.stat.hits += 1;
        Some(e.diffs.clone())
    }

    /// Publish the diffs computed at a boundary (first walk of the
    /// round). Later `reuse` calls with the same key are served from
    /// this entry.
    pub fn publish(
        &mut self,
        key: String,
        label: &str,
        structure: &str,
        diffs: &[DiffInstance],
        compute_accesses: StatsSnapshot,
    ) {
        let diff_tuples = diffs.iter().map(DiffInstance::len).sum();
        self.entries.insert(
            key,
            SharedEntry {
                diffs: diffs.to_vec(),
                stat: SharedPrefixStat {
                    label: label.to_string(),
                    structure: structure.to_string(),
                    compute_accesses,
                    diff_tuples,
                    hits: 0,
                },
            },
        );
    }

    /// Number of published boundaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing was published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reuses served across all boundaries.
    pub fn total_hits(&self) -> u64 {
        self.entries.values().map(|e| e.stat.hits).sum()
    }

    /// Counted accesses avoided across all boundaries.
    pub fn total_saved_accesses(&self) -> u64 {
        self.entries.values().map(|e| e.stat.saved_accesses()).sum()
    }

    /// Per-prefix statistics, sorted by label (deterministic report
    /// order for any `HashMap` iteration order).
    pub fn stats(&self) -> Vec<SharedPrefixStat> {
        let mut out: Vec<SharedPrefixStat> =
            self.entries.values().map(|e| e.stat.clone()).collect();
        out.sort_by(|a, b| a.label.cmp(&b.label));
        out
    }
}

/// Detect shared operator-tree prefixes across registered engines.
/// Returns one [`SharedPrefixes`] per input engine (same order). A
/// subtree is designated for a view when
///
/// * it is not a bare `Scan` (base tables are already shared storage),
/// * its structural fingerprint occurs at least twice across all
///   `(view, path)` pairs (so one computation has at least one
///   consumer),
/// * the view materializes no cache *strictly inside* the subtree
///   (invariant 1 of the module docs; a cache at the subtree root is
///   allowed), and
/// * the subtree contains no **non-invertible aggregate** (MIN/MAX).
///   The round key binds structure + base-table nets only; that pins
///   the boundary diffs exactly when every rule is a pure function of
///   base state and the pending net. The dirty-group extremum rule is
///   not: it reads the operator's *own materialized output* (the stored
///   extremum) to choose between delta and rescan, and that output is
///   per-view state — a cache at the boundary root is allowed, and one
///   view's copy can lag after an aborted round recovered by recompute
///   while another's did not. Reusing the first walker's diffs would
///   then corrupt every other consumer, so such subtrees refuse
///   designation outright.
///
/// Nested designations compose: an outer reuse short-circuits the inner
/// boundary, while the outer *computation* publishes the inner boundary
/// on its way up — **unless** every occurrence of the inner group lies
/// strictly inside an occurrence of a single designated outer group. In
/// that case any walk that could reach the inner boundary hits the
/// outer boundary first: the first walk of a round computes (and would
/// publish) both, and every later walk with the same pending horizon
/// short-circuits at the outer boundary, so the inner publish can never
/// be consumed. Such fully covered groups are suppressed — publishing
/// them is pure overhead (a clone of every boundary diff per round with
/// a structurally guaranteed `hits: 0`; the `join[mentions,microblog]`
/// entry of `BENCH_multiview.json` burned 1708 diff-tuple clones per
/// run this way). Coverage is transitive over strict path containment,
/// so one pass against the full designated set is exact.
pub fn detect_shared_prefixes(views: &[&IdIvm]) -> Vec<SharedPrefixes> {
    let mut occurrences: HashMap<String, Vec<(usize, PathId, PrefixSpec)>> = HashMap::new();
    for (vi, view) in views.iter().enumerate() {
        let mut candidates = Vec::new();
        collect_candidates(view, view.plan(), &PathId::new(), &mut candidates);
        for (path, spec) in candidates {
            occurrences
                .entry(spec.structural.clone())
                .or_default()
                .push((vi, path, spec));
        }
    }
    let designated: Vec<Vec<(usize, PathId, PrefixSpec)>> = occurrences
        .into_values()
        .filter(|occs| occs.len() >= 2)
        .collect();
    let mut out: Vec<SharedPrefixes> = views.iter().map(|_| SharedPrefixes::none()).collect();
    for (gi, occs) in designated.iter().enumerate() {
        let covered = designated
            .iter()
            .enumerate()
            .any(|(gj, outer)| gj != gi && covers(outer, occs));
        if covered {
            continue;
        }
        for (vi, path, spec) in occs {
            out[*vi].map.insert(path.clone(), spec.clone());
        }
    }
    out
}

/// Does every occurrence of `inner` lie strictly inside an occurrence
/// of `outer` in the same view?
fn covers(outer: &[(usize, PathId, PrefixSpec)], inner: &[(usize, PathId, PrefixSpec)]) -> bool {
    inner.iter().all(|(vi, p, _)| {
        outer
            .iter()
            .any(|(vj, q, _)| vj == vi && q.len() < p.len() && p[..q.len()] == q[..])
    })
}

fn collect_candidates(
    view: &IdIvm,
    node: &Plan,
    path: &PathId,
    out: &mut Vec<(PathId, PrefixSpec)>,
) {
    if !matches!(node, Plan::Scan { .. })
        && !has_cache_strictly_inside(view, path)
        && !contains_noninvertible_agg(node)
    {
        out.push((path.clone(), prefix_spec(view, node)));
    }
    for (i, c) in node.children().into_iter().enumerate() {
        let mut p = path.clone();
        p.push(i);
        collect_candidates(view, c, &p, out);
    }
}

/// Does the subtree contain a `GroupBy` with any non-invertible
/// aggregate (MIN/MAX)? Such subtrees refuse shared-prefix designation
/// — see [`detect_shared_prefixes`].
fn contains_noninvertible_agg(node: &Plan) -> bool {
    if let Plan::GroupBy { aggs, .. } = node {
        if aggs.iter().any(|a| !a.func.is_invertible()) {
            return true;
        }
    }
    node.children()
        .into_iter()
        .any(contains_noninvertible_agg)
}

/// Does `view` materialize a cache at a *proper descendant* of `path`?
/// (The root mapping `[] → view` is at depth 0 and never strictly
/// inside a candidate.)
fn has_cache_strictly_inside(view: &IdIvm, path: &PathId) -> bool {
    view.cache_map()
        .keys()
        .any(|cp| cp.len() > path.len() && cp[..path.len()] == path[..])
}

/// The structural fingerprint + metadata of one candidate subtree.
fn prefix_spec(view: &IdIvm, node: &Plan) -> PrefixSpec {
    let mut tables: Vec<String> = node
        .scans()
        .into_iter()
        .map(|(_, t)| t.to_string())
        .collect();
    tables.sort();
    tables.dedup();
    // Exact structural identity: the subtree's debug form is a faithful
    // rendering of operators, predicates, and column indices (`Plan`
    // has no `Hash`), and the per-table diff-schema debug pins the
    // update-schema split the populate step will use.
    let structure = structure_key(view.options().minimize, node);
    let mut structural = structure.clone();
    for t in &tables {
        if let Some(s) = view.schemas().tables.get(t) {
            structural.push_str(&format!(";{t}={s:?}"));
        }
    }
    let label = format!("{}[{}]", op_label(node), tables.join(","));
    PrefixSpec {
        structural,
        structure,
        tables,
        label,
    }
}

/// Structure-only fingerprint of a subtree: debug form + `minimize`
/// knob, *without* the per-view i-diff schema splits that
/// [`PrefixSpec::structural`] appends. Two plans with equal structure
/// keys compute identical boundary *contents* from identical base
/// state — which is all materialized-intermediate promotion needs,
/// since each consumer regenerates its own diff schemas from the
/// backing table.
pub fn structure_key(minimize: bool, node: &Plan) -> String {
    format!("minimize={minimize};{node:?}")
}

/// FNV-1a digest of the pending net restricted to `tables` (sorted
/// key order — deterministic for any `HashMap` iteration order).
pub fn net_digest(net: &HashMap<String, TableChanges>, tables: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for t in tables {
        let Some(changes) = net.get(t) else { continue };
        eat(t);
        let mut items: Vec<(&Key, _)> = changes.iter().collect();
        items.sort_by_key(|(k, _)| *k);
        for (k, c) in items {
            eat(&format!("{k:?}={c:?}"));
        }
    }
    h
}

/// One promotable subtree: an operator structure that occurs in at
/// least two *distinct* registered views. Promotion materializes the
/// subtree once as a hidden backing table maintained by its own i-diff
/// script and rewrites every consumer to scan the backing instead —
/// turning per-consumer prefix recomputation into a single O(Δ)
/// maintenance round (see `idivm-sched`'s `ViewCatalog::promote`).
#[derive(Debug, Clone, PartialEq)]
pub struct PromotionCandidate {
    /// Structure-only fingerprint ([`structure_key`]) — the identity
    /// promotion trackers and rewrites match on.
    pub structure: String,
    /// Human-readable label (`op[tables…]`), same shape as
    /// [`PrefixSpec::label`].
    pub label: String,
    /// Base tables the subtree scans, sorted and deduplicated.
    pub tables: Vec<String>,
    /// The subtree itself (taken from the first consumer in name
    /// order; all consumers' copies are structurally identical by
    /// construction of the fingerprint).
    pub subtree: Plan,
    /// Names of the distinct views containing the structure.
    pub consumers: BTreeSet<String>,
}

/// Detect promotable subtrees across named view plans. `views` is
/// `(name, current plan, minimize knob)` per view. A subtree is a
/// candidate when it
///
/// * contains at least two base-table scans (single-table subtrees are
///   cheap enough that materializing them just moves work around), and
/// * occurs in at least two distinct views (an intermediate with one
///   consumer saves nothing over that consumer's own caches).
///
/// Results are sorted by structure key — deterministic for any input
/// order, which is what makes downstream promotion decisions
/// byte-identical across runs and thread counts.
pub fn promotion_candidates(views: &[(&str, &Plan, bool)]) -> Vec<PromotionCandidate> {
    let mut by_structure: BTreeMap<String, PromotionCandidate> = BTreeMap::new();
    for (name, plan, minimize) in views {
        let mut nodes = Vec::new();
        collect_subtrees(plan, &mut nodes);
        for node in nodes {
            if node.scans().len() < 2 {
                continue;
            }
            let structure = structure_key(*minimize, node);
            let entry = by_structure.entry(structure.clone()).or_insert_with(|| {
                let mut tables: Vec<String> =
                    node.scans().into_iter().map(|(_, t)| t.to_string()).collect();
                tables.sort();
                tables.dedup();
                let label = format!("{}[{}]", op_label(node), tables.join(","));
                PromotionCandidate {
                    structure,
                    label,
                    tables,
                    subtree: node.clone(),
                    consumers: BTreeSet::new(),
                }
            });
            entry.consumers.insert((*name).to_string());
        }
    }
    by_structure
        .into_values()
        .filter(|c| c.consumers.len() >= 2)
        .collect()
}

fn collect_subtrees<'a>(node: &'a Plan, out: &mut Vec<&'a Plan>) {
    if !matches!(node, Plan::Scan { .. }) {
        out.push(node);
    }
    for c in node.children() {
        collect_subtrees(c, out);
    }
}

/// Rebuild `plan`, replacing every subtree whose [`structure_key`]
/// appears in `map` with the mapped replacement (a backing-table scan).
/// Substitution is **top-down**: the outermost matching boundary wins
/// and its interior is not revisited — nested promoted structures
/// inside an already-replaced subtree are the intermediate's own
/// business, not the consumer's.
pub fn substitute_structures(
    plan: &Plan,
    minimize: bool,
    map: &BTreeMap<String, Plan>,
) -> Plan {
    if !matches!(plan, Plan::Scan { .. }) {
        if let Some(replacement) = map.get(&structure_key(minimize, plan)) {
            return replacement.clone();
        }
    }
    rebuild(plan, |child| substitute_structures(child, minimize, map))
}

/// Rebuild `plan`, replacing every `Scan` of `table` with a clone of
/// `subtree` — the inverse of [`substitute_structures`], used at
/// demotion to restore a consumer's original plan before the backing
/// table is dropped.
pub fn substitute_scan(plan: &Plan, table: &str, subtree: &Plan) -> Plan {
    if let Plan::Scan { table: t, .. } = plan {
        if t == table {
            return subtree.clone();
        }
    }
    rebuild(plan, |child| substitute_scan(child, table, subtree))
}

/// Clone `plan` with each child passed through `f` (scans are returned
/// verbatim).
fn rebuild(plan: &Plan, mut f: impl FnMut(&Plan) -> Plan) -> Plan {
    match plan {
        Plan::Scan { .. } => plan.clone(),
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(f(input)),
            pred: pred.clone(),
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(f(input)),
            cols: cols.clone(),
        },
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => Plan::Join {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
            residual: residual.clone(),
        },
        Plan::LeftOuterJoin {
            left,
            right,
            on,
            residual,
        } => Plan::LeftOuterJoin {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
            residual: residual.clone(),
        },
        Plan::SemiJoin {
            left,
            right,
            on,
            residual,
        } => Plan::SemiJoin {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
            residual: residual.clone(),
        },
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Plan::AntiJoin {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
            on: on.clone(),
            residual: residual.clone(),
        },
        Plan::UnionAll { left, right } => Plan::UnionAll {
            left: Box::new(f(left)),
            right: Box::new(f(right)),
        },
        Plan::GroupBy { input, keys, aggs } => Plan::GroupBy {
            input: Box::new(f(input)),
            keys: keys.clone(),
            aggs: aggs.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use idivm_reldb::NetChange;
    use idivm_types::{row, Value};

    fn change(v: i64) -> NetChange {
        NetChange::Inserted { post: row![v] }
    }

    #[test]
    fn net_digest_is_order_insensitive_and_table_scoped() {
        let mut a: HashMap<String, TableChanges> = HashMap::new();
        let mut t = TableChanges::new();
        t.insert(Key(vec![Value::Int(1)]), change(1));
        t.insert(Key(vec![Value::Int(2)]), change(2));
        a.insert("m".into(), t);

        let mut b: HashMap<String, TableChanges> = HashMap::new();
        let mut t = TableChanges::new();
        t.insert(Key(vec![Value::Int(2)]), change(2));
        t.insert(Key(vec![Value::Int(1)]), change(1));
        b.insert("m".into(), t);
        // An extra table outside the digest domain must not matter.
        let mut u = TableChanges::new();
        u.insert(Key(vec![Value::Int(9)]), change(9));
        b.insert("users".into(), u);

        let tables = vec!["m".to_string()];
        assert_eq!(net_digest(&a, &tables), net_digest(&b, &tables));
        // But a change inside the domain must.
        let mut c = a.clone();
        c.get_mut("m")
            .unwrap()
            .insert(Key(vec![Value::Int(3)]), change(3));
        assert_ne!(net_digest(&a, &tables), net_digest(&c, &tables));
    }

    #[test]
    fn cache_reuse_counts_hits_and_savings() {
        let mut cache = SharedDiffCache::new();
        assert!(cache.reuse("k").is_none());
        cache.publish(
            "k".into(),
            "join[m,b]",
            "minimize=false;…",
            &[],
            StatsSnapshot {
                tuple_accesses: 10,
                index_lookups: 5,
            },
        );
        assert!(cache.reuse("k").is_some());
        assert!(cache.reuse("k").is_some());
        assert_eq!(cache.total_hits(), 2);
        assert_eq!(cache.total_saved_accesses(), 30);
        let stats = cache.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].label, "join[m,b]");
        assert_eq!(stats[0].structure, "minimize=false;…");
        assert_eq!(stats[0].saved_accesses(), 30);
    }

    use idivm_types::{ColumnType, Schema};

    fn scan(table: &str) -> Plan {
        Plan::Scan {
            table: table.into(),
            alias: table.into(),
            schema: Schema::from_pairs(
                &[("id", ColumnType::Int), ("v", ColumnType::Int)],
                &["id"],
            )
            .unwrap(),
        }
    }

    fn join(left: Plan, right: Plan) -> Plan {
        Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            on: vec![(0, 0)],
            residual: None,
        }
    }

    #[test]
    fn promotion_candidates_filtering() {
        let shared = join(scan("m"), scan("b"));
        let a = Plan::Select {
            input: Box::new(shared.clone()),
            pred: idivm_algebra::Expr::col(0).eq(idivm_algebra::Expr::lit(1)),
        };
        let b = Plan::Project {
            input: Box::new(shared.clone()),
            cols: vec![("id".into(), idivm_algebra::Expr::col(0))],
        };
        // `c` shares nothing: single-scan subtrees are never candidates.
        let c = Plan::Select {
            input: Box::new(scan("users")),
            pred: idivm_algebra::Expr::col(1).eq(idivm_algebra::Expr::lit(2)),
        };
        let out = promotion_candidates(&[
            ("va", &a, false),
            ("vb", &b, false),
            ("vc", &c, false),
        ]);
        assert_eq!(out.len(), 1, "only the shared two-scan join qualifies");
        assert_eq!(out[0].subtree, shared);
        assert_eq!(out[0].tables, vec!["b".to_string(), "m".to_string()]);
        assert_eq!(
            out[0].consumers.iter().collect::<Vec<_>>(),
            vec!["va", "vb"]
        );
        assert_eq!(out[0].structure, structure_key(false, &shared));

        // Two occurrences inside the *same* view do not qualify.
        let twice = join(shared.clone(), shared.clone());
        let out = promotion_candidates(&[("va", &twice, false), ("vc", &c, false)]);
        assert!(
            out.iter().all(|cand| cand.subtree != shared),
            "single-view repetition must not promote"
        );
    }

    #[test]
    fn substitution_round_trips_through_backing_scan() {
        let shared = join(scan("m"), scan("b"));
        let view = Plan::GroupBy {
            input: Box::new(Plan::Select {
                input: Box::new(shared.clone()),
                pred: idivm_algebra::Expr::col(0).eq(idivm_algebra::Expr::lit(1)),
            }),
            keys: vec![0],
            aggs: vec![],
        };
        let backing = scan("__ivm_backing");
        let mut map = BTreeMap::new();
        map.insert(structure_key(false, &shared), backing.clone());
        let rewritten = substitute_structures(&view, false, &map);
        assert_ne!(rewritten, view);
        let mut found = Vec::new();
        collect_subtrees(&rewritten, &mut found);
        assert!(
            found.iter().all(|n| **n != shared),
            "shared subtree must be gone after substitution"
        );
        assert!(rewritten
            .scans()
            .iter()
            .any(|(_, t)| *t == "__ivm_backing"));
        // Demotion restores the original plan exactly.
        let restored = substitute_scan(&rewritten, "__ivm_backing", &shared);
        assert_eq!(restored, view);
    }

    #[test]
    fn substitution_is_top_down_outermost_wins() {
        let inner = join(scan("m"), scan("b"));
        let outer = join(inner.clone(), scan("users"));
        let mut map = BTreeMap::new();
        map.insert(structure_key(false, &inner), scan("__bk_inner"));
        map.insert(structure_key(false, &outer), scan("__bk_outer"));
        let rewritten = substitute_structures(&outer, false, &map);
        assert_eq!(rewritten, scan("__bk_outer"), "outer boundary must win");
    }

    #[test]
    fn noninvertible_aggregates_refuse_designation() {
        use idivm_algebra::{AggFunc, AggSpec, Expr};
        let group = |func: AggFunc| Plan::GroupBy {
            input: Box::new(join(scan("m"), scan("b"))),
            keys: vec![0],
            aggs: vec![AggSpec {
                func,
                arg: Expr::col(1),
                name: "a".into(),
            }],
        };
        assert!(contains_noninvertible_agg(&group(AggFunc::Min)));
        assert!(contains_noninvertible_agg(&group(AggFunc::Max)));
        assert!(!contains_noninvertible_agg(&group(AggFunc::Sum)));
        // The guard sees through wrapping operators.
        let wrapped = Plan::Select {
            input: Box::new(group(AggFunc::Max)),
            pred: idivm_algebra::Expr::col(0).eq(idivm_algebra::Expr::lit(1)),
        };
        assert!(contains_noninvertible_agg(&wrapped));
        assert!(!contains_noninvertible_agg(&join(scan("m"), scan("b"))));
    }

    #[test]
    fn covered_groups_are_suppressed() {
        // Group `inner` occurs only strictly inside `outer` occurrences
        // (same views, deeper paths) → covered.
        let spec = |s: &str| PrefixSpec {
            structural: s.into(),
            structure: s.into(),
            tables: vec![],
            label: s.into(),
        };
        let outer = vec![
            (0usize, vec![0usize], spec("o")),
            (1, vec![], spec("o")),
        ];
        let inner = vec![
            (0usize, vec![0usize, 1], spec("i")),
            (1, vec![0], spec("i")),
        ];
        assert!(covers(&outer, &inner));
        // One occurrence outside any outer occurrence → not covered.
        let escaped = vec![
            (0usize, vec![0usize, 1], spec("i")),
            (2, vec![0], spec("i")),
        ];
        assert!(!covers(&outer, &escaped));
        // Same path (not *strictly* inside) → not covered.
        let same = vec![(0usize, vec![0usize], spec("i"))];
        assert!(!covers(&outer, &same));
    }
}
