//! `idivm-core`: the paper's contribution — **ID-based incremental view
//! maintenance** (idIVM).
//!
//! Instead of classical *tuple-based* diffs (one diff tuple per modified
//! view tuple), idIVM propagates **i-diffs**: diff tuples that identify
//! the to-be-modified view tuples through a *subset* `Ī′` of the view's
//! ID (key) attributes, optionally carrying pre-state (`Ā′_pre`) and
//! post-state (`Ā″_post`) values for some non-ID attributes. A single
//! i-diff tuple can stand for many view tuples, and computing i-diffs
//! usually avoids the base-table joins tuple-based IVM needs.
//!
//! The crate mirrors the system architecture of paper Section 3:
//!
//! * [`schema_gen`] — the *base-table i-diff schema generator*
//!   (view-definition time): splits attributes into conditional sets
//!   `C_op` and the non-conditional set `NC`, one update-diff schema per
//!   set (Section 5).
//! * [`diff`] — i-diff schemas and instances (Section 2), including
//!   effectiveness checking.
//! * [`rules`] — the per-operator i-diff propagation rules (Tables
//!   4–13), one module per operator.
//! * [`minimize`] — the semantic-minimization switch (Pass 4 / Figure
//!   8): every rule has a *general* form that probes base data and,
//!   where Figure 8 licenses it, a *minimized* diff-only form.
//! * [`access`] — `RelAccess`, the counted access path to any subview
//!   (`Input_pre` / `Input_post` / `Output` of Section 4), served from
//!   base tables, pre-state overlays, or intermediate caches.
//! * [`apply`] — the APPLY statements of Section 2 (UPDATE / INSERT /
//!   DELETE against the materialized view or a cache).
//! * [`cache`] — intermediate-cache planning for aggregate operators
//!   (Section 4, Example 4.6), with the multi-valued-dependency guard.
//! * [`engine`] — [`engine::IdIvm`]: setup (the four passes) and
//!   [`maintain`](engine::IdIvm::maintain) (modification log → i-diff
//!   instances → propagation → application), with a per-phase cost
//!   report.
//! * [`script`] — a human-readable rendering of the generated ∆-script
//!   (paper Figure 7).
//! * [`supervisor`] — the self-healing maintenance supervisor: drives
//!   rounds to convergence with retry/backoff, poison-diff bisection
//!   and quarantine, recompute escalation, and round budgets.
//! * [`config`] — the [`config::EngineKnobs`] block and
//!   [`config::EngineConfig`] trait shared by every engine.
//! * [`shared`] — cross-view shared-prefix i-diff reuse (the engine
//!   hook under the `idivm-sched` view catalog).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod access;
pub mod apply;
pub mod cache;
pub mod config;
pub mod diff;
pub mod engine;
pub mod faults;
pub mod minimize;
pub mod report;
pub mod rules;
pub mod schema_gen;
pub mod script;
pub mod shared;
pub mod supervisor;
pub mod trace;

pub use config::{EngineConfig, EngineKnobs};
pub use diff::{DiffInstance, DiffKind, DiffSchema};
pub use engine::{IdIvm, IvmOptions, RecoveryPolicy};
pub use faults::{FaultKind, FaultPlan, FaultSite, FaultState, RoundBudget};
pub use report::MaintenanceReport;
pub use shared::{
    detect_shared_prefixes, promotion_candidates, structure_key, substitute_scan,
    substitute_structures, PrefixSpec, PromotionCandidate, SharedDiffCache, SharedPrefixStat,
    SharedPrefixes,
};
pub use supervisor::{
    BackoffPolicy, BisectNode, BisectOutcome, MaintenanceSupervisor, QuarantineEntry,
    QuarantineLog, SupervisedEngine, SupervisorConfig, SupervisorReport, SupervisorVerdict,
};
pub use trace::{IngestTrace, OpTrace, PhaseTimings, RoundTrace, TraceConfig, TracePhase};
