//! Applying i-diffs to a materialized relation — the `APPLY` statements
//! of paper Section 2.
//!
//! * **Update**: `UPDATE V SET Ā″ = Ā″_post FROM ∆u WHERE V.Ī′ = ∆u.Ī′`
//! * **Insert**: `INSERT INTO V SELECT … FROM ∆+ WHERE ROW(…) NOT IN V`
//! * **Delete**: `DELETE FROM V WHERE ROW(Ī′) IN (SELECT Ī′ FROM ∆−)`
//!
//! Cost accounting follows the paper's view-modification model: one view
//! *index lookup* per diff tuple (locating the targets through the view
//! index on `Ī′`) plus one view *tuple access* per actually-modified
//! view tuple. Diff tuples that match nothing (“dummy” tuples produced
//! by overestimating rules) cost only their index lookup — the effect
//! the paper's compression factor `p` measures.
//!
//! **Atomicity.** Each public entry point ([`apply`], [`apply_all`])
//! is all-or-nothing: mutations journal their inverses into the
//! table's shared [`UndoLog`](idivm_reldb::UndoLog) and an `Err`
//! mid-batch rolls back both the table (rows and indexes) and the
//! caller's `changes` overlay map before returning — no half-applied
//! APPLY escapes. The session composes with an enclosing maintenance
//! round (`Database::begin_round`): on success the journaled suffix is
//! handed to the round's owner, on failure only this APPLY's suffix is
//! replayed, and the round's own abort restores the rest.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::diff::{DiffInstance, DiffKind, State};
use idivm_reldb::{NetChange, Table, TableChanges, UndoLog};
use idivm_types::{Error, Key, Result, Row, Value};
use std::collections::HashMap;

/// Outcome counters of one APPLY.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// View tuples inserted.
    pub inserted: u64,
    /// View tuples deleted.
    pub deleted: u64,
    /// View tuples updated in place.
    pub updated: u64,
    /// Diff tuples that matched no view tuple (overestimation).
    pub dummies: u64,
}

impl ApplyOutcome {
    fn absorb(&mut self, other: ApplyOutcome) {
        self.inserted += other.inserted;
        self.deleted += other.deleted;
        self.updated += other.updated;
        self.dummies += other.dummies;
    }
}

/// First-touch pre-images of the caller's `changes` overlay map, so a
/// failed APPLY can restore it alongside the table. Keys the APPLY
/// never touched are never cloned.
#[derive(Debug, Default)]
struct ChangesJournal {
    saved: HashMap<Key, Option<NetChange>>,
}

impl ChangesJournal {
    /// Remember `key`'s current overlay entry the first time the APPLY
    /// touches it.
    fn save(&mut self, changes: &TableChanges, key: &Key) {
        if !self.saved.contains_key(key) {
            self.saved.insert(key.clone(), changes.get(key).cloned());
        }
    }

    /// Put every touched key back to its saved pre-image.
    fn restore(self, changes: &mut TableChanges) {
        for (k, pre) in self.saved {
            match pre {
                Some(net) => {
                    changes.insert(k, net);
                }
                None => {
                    changes.remove(&k);
                }
            }
        }
    }
}

/// One all-or-nothing APPLY scope over a table's shared undo journal.
struct ApplySession {
    undo: UndoLog,
    mark: usize,
    journal: ChangesJournal,
}

impl ApplySession {
    fn begin(table: &Table) -> Self {
        let undo = table.undo_log().clone();
        let mark = undo.arm();
        ApplySession {
            undo,
            mark,
            journal: ChangesJournal::default(),
        }
    }

    /// Keep the mutations. Inside a maintenance round the journaled
    /// suffix stays for the round's owner; standalone (no other
    /// interest), the journal is drained so it cannot grow unboundedly.
    fn commit(self) {
        self.undo.disarm();
        if !self.undo.is_armed() {
            self.undo.clear();
        }
    }

    /// Replay this session's suffix in reverse (rows and indexes,
    /// uncounted) and restore the touched `changes` entries.
    fn rollback(self, table: &mut Table, changes: &mut TableChanges) {
        self.undo.disarm();
        for op in self.undo.split_off(self.mark).into_iter().rev() {
            table.apply_undo(op);
        }
        self.journal.restore(changes);
    }
}

/// Apply `diff` to `table` (a materialized view or cache), recording the
/// induced net changes into `changes` so later rules can read the
/// relation's pre-state through an overlay. All-or-nothing: on `Err`,
/// `table` and `changes` are exactly as before the call.
///
/// # Errors
/// Conflicting inserts (an ineffective diff — upstream bug) or arity
/// mismatches.
pub fn apply(
    table: &mut Table,
    diff: &DiffInstance,
    changes: &mut TableChanges,
) -> Result<ApplyOutcome> {
    let mut session = ApplySession::begin(table);
    match apply_one(table, diff, changes, &mut session.journal) {
        Ok(out) => {
            session.commit();
            Ok(out)
        }
        Err(e) => {
            session.rollback(table, changes);
            Err(e)
        }
    }
}

fn apply_one(
    table: &mut Table,
    diff: &DiffInstance,
    changes: &mut TableChanges,
    journal: &mut ChangesJournal,
) -> Result<ApplyOutcome> {
    let mut out = ApplyOutcome::default();
    match diff.schema.kind {
        DiffKind::Update => out.absorb(apply_update(table, diff, changes, journal)?),
        DiffKind::Insert => out.absorb(apply_insert(table, diff, changes, journal)?),
        DiffKind::Delete => out.absorb(apply_delete(table, diff, changes, journal)?),
    }
    Ok(out)
}

/// Apply a whole batch of diffs in any order (they are effective, so
/// order is immaterial — paper Section 2); inserts are deferred last so
/// an insert+update pair targeting the same fresh tuple cannot trip the
/// duplicate-insert guard. All-or-nothing across the whole batch: on
/// `Err`, `table` and `changes` are exactly as before the call.
///
/// # Errors
/// Same conditions as [`apply`].
pub fn apply_all(
    table: &mut Table,
    diffs: &[DiffInstance],
    changes: &mut TableChanges,
) -> Result<ApplyOutcome> {
    let mut session = ApplySession::begin(table);
    match apply_all_inner(table, diffs, changes, &mut session.journal) {
        Ok(out) => {
            session.commit();
            Ok(out)
        }
        Err(e) => {
            session.rollback(table, changes);
            Err(e)
        }
    }
}

fn apply_all_inner(
    table: &mut Table,
    diffs: &[DiffInstance],
    changes: &mut TableChanges,
    journal: &mut ChangesJournal,
) -> Result<ApplyOutcome> {
    let mut out = ApplyOutcome::default();
    for d in diffs.iter().filter(|d| d.schema.kind == DiffKind::Delete) {
        out.absorb(apply_one(table, d, changes, journal)?);
    }
    for d in diffs.iter().filter(|d| d.schema.kind == DiffKind::Update) {
        out.absorb(apply_one(table, d, changes, journal)?);
    }
    for d in diffs.iter().filter(|d| d.schema.kind == DiffKind::Insert) {
        out.absorb(apply_one(table, d, changes, journal)?);
    }
    Ok(out)
}

fn apply_update(
    table: &mut Table,
    diff: &DiffInstance,
    changes: &mut TableChanges,
    journal: &mut ChangesJournal,
) -> Result<ApplyOutcome> {
    let mut out = ApplyOutcome::default();
    // The paper assumes a view index on the view IDs; ensure one exists
    // for this diff's Ī′ (creation is a setup cost, not counted).
    table.create_index_positions(diff.schema.id_cols.clone());
    let pk_cols = table.schema().key().to_vec();
    for d in &diff.rows {
        let probe = diff.schema.id_key(d);
        let pks = table.pks_by(&diff.schema.id_cols, &probe);
        if pks.is_empty() {
            out.dummies += 1;
            continue;
        }
        let mut assignments: Vec<(usize, Value)> = Vec::with_capacity(diff.schema.post_cols.len());
        for &c in &diff.schema.post_cols {
            let v = diff.schema.post_value(d, c).ok_or_else(|| {
                Error::Internal(format!(
                    "update i-diff carries no post value for column #{c} \
                     (schema {:?})",
                    diff.schema
                ))
            })?;
            assignments.push((c, v));
        }
        for pk in pks {
            if let Some(pre) = table.patch(&pk, &assignments) {
                let post = table
                    .get_uncounted(&pk)
                    .ok_or_else(|| {
                        Error::Internal(format!(
                            "row {pk:?} vanished immediately after patch"
                        ))
                    })?
                    .clone();
                if pre != post {
                    let key = pre.key(&pk_cols);
                    journal.save(changes, &key);
                    record_update(changes, key, pre, post);
                    out.updated += 1;
                } else {
                    out.dummies += 1;
                }
            } else {
                // The indexed pk points at a row that is no longer there
                // (e.g. a delete applied earlier in the batch). The diff
                // tuple had nothing to update: count it as a dummy
                // rather than aborting a half-applied round.
                out.dummies += 1;
            }
        }
    }
    Ok(out)
}

fn apply_insert(
    table: &mut Table,
    diff: &DiffInstance,
    changes: &mut TableChanges,
    journal: &mut ChangesJournal,
) -> Result<ApplyOutcome> {
    let mut out = ApplyOutcome::default();
    let arity = table.schema().arity();
    let pk_cols = table.schema().key().to_vec();
    for d in &diff.rows {
        let row = diff
            .schema
            .full_row(d, arity, State::Post)
            .ok_or_else(|| {
                Error::Internal(format!(
                    "insert i-diff does not cover the full target row \
                     (schema {:?})",
                    diff.schema
                ))
            })?;
        let key = row.key(&pk_cols);
        if table.insert_if_absent(row.clone())? {
            journal.save(changes, &key);
            record_insert(changes, key, row);
            out.inserted += 1;
        } else {
            out.dummies += 1;
        }
    }
    Ok(out)
}

fn apply_delete(
    table: &mut Table,
    diff: &DiffInstance,
    changes: &mut TableChanges,
    journal: &mut ChangesJournal,
) -> Result<ApplyOutcome> {
    let mut out = ApplyOutcome::default();
    table.create_index_positions(diff.schema.id_cols.clone());
    let pk_cols = table.schema().key().to_vec();
    for d in &diff.rows {
        let probe = diff.schema.id_key(d);
        let pks = table.pks_by(&diff.schema.id_cols, &probe);
        if pks.is_empty() {
            out.dummies += 1;
            continue;
        }
        for pk in pks {
            if let Some(pre) = table.delete_located(&pk) {
                let key = pre.key(&pk_cols);
                journal.save(changes, &key);
                record_delete(changes, key, pre);
                out.deleted += 1;
            }
        }
    }
    Ok(out)
}

fn record_update(
    changes: &mut TableChanges,
    key: idivm_types::Key,
    pre: Row,
    post: Row,
) {
    match changes.remove(&key) {
        None => {
            changes.insert(key, NetChange::Updated { pre, post });
        }
        Some(NetChange::Inserted { .. }) => {
            changes.insert(key, NetChange::Inserted { post });
        }
        Some(NetChange::Updated { pre: first, .. }) => {
            if first == post {
                // Round-tripped back: no net change.
            } else {
                changes.insert(key, NetChange::Updated { pre: first, post });
            }
        }
        Some(NetChange::Deleted { pre: del_pre }) => {
            // Deleted then re-updated cannot happen with effective diffs;
            // keep the delete (defensive).
            changes.insert(key, NetChange::Deleted { pre: del_pre });
        }
    }
}

fn record_insert(changes: &mut TableChanges, key: idivm_types::Key, post: Row) {
    match changes.remove(&key) {
        None => {
            changes.insert(key, NetChange::Inserted { post });
        }
        Some(NetChange::Deleted { pre }) => {
            // delete + re-insert (an expanded condition-affected
            // update): net update, or nothing if the row came back
            // identical.
            if pre != post {
                changes.insert(key, NetChange::Updated { pre, post });
            }
        }
        Some(other) => {
            // Inserting over a live entry is prevented by
            // insert_if_absent; restore (defensive).
            changes.insert(key, other);
        }
    }
}

fn record_delete(changes: &mut TableChanges, key: idivm_types::Key, pre: Row) {
    match changes.remove(&key) {
        None => {
            changes.insert(key, NetChange::Deleted { pre });
        }
        Some(NetChange::Inserted { .. }) => {
            // insert + delete in one round: net nothing.
        }
        Some(NetChange::Updated { pre: first, .. }) => {
            changes.insert(key, NetChange::Deleted { pre: first });
        }
        Some(NetChange::Deleted { pre: first }) => {
            changes.insert(key, NetChange::Deleted { pre: first });
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::diff::DiffSchema;
    use idivm_reldb::AccessStats;
    use idivm_types::{row, ColumnType, Schema};

    /// The running-example view V(did, pid, price) of Figure 2.
    fn view() -> Table {
        let schema = Schema::from_pairs(
            &[
                ("did", ColumnType::Str),
                ("pid", ColumnType::Str),
                ("price", ColumnType::Int),
            ],
            &["did", "pid"],
        )
        .unwrap();
        let mut t = Table::new("V", schema, AccessStats::new());
        t.load(row!["D1", "P1", 10]).unwrap();
        t.load(row!["D2", "P1", 10]).unwrap();
        t.load(row!["D1", "P2", 20]).unwrap();
        t
    }

    /// Example 2.2: one update i-diff tuple updates *both* P1 rows.
    #[test]
    fn update_by_id_subset_hits_all_matches() {
        let mut v = view();
        let mut ch = HashMap::new();
        let d = DiffInstance::new(
            DiffSchema::update(&[1], &[2], &[2]),
            vec![row!["P1", 10, 11]],
        );
        v.stats().reset();
        let out = apply(&mut v, &d, &mut ch).unwrap();
        assert_eq!(out.updated, 2);
        assert_eq!(out.dummies, 0);
        assert_eq!(
            v.get_uncounted(&Key(vec![Value::str("D1"), Value::str("P1")]))
                .unwrap(),
            &row!["D1", "P1", 11]
        );
        // Cost: 1 index lookup (the single diff tuple) + 2 tuple writes.
        let snap = v.stats().snapshot();
        assert_eq!((snap.index_lookups, snap.tuple_accesses), (1, 2));
        assert_eq!(ch.len(), 2);
    }

    /// Example 2.3: insert i-diff; re-applying the same insert is a no-op
    /// (the NOT IN guard).
    #[test]
    fn insert_with_not_in_guard() {
        let mut v = view();
        let mut ch = HashMap::new();
        let d = DiffInstance::new(
            DiffSchema::insert(&[0, 1], 3),
            vec![row!["D3", "P2", 20], row!["D4", "P3", 30]],
        );
        let out = apply(&mut v, &d, &mut ch).unwrap();
        assert_eq!(out.inserted, 2);
        assert_eq!(v.len(), 5);
        // Same insert again: both are dummies.
        let out2 = apply(&mut v, &d, &mut HashMap::new()).unwrap();
        assert_eq!(out2.inserted, 0);
        assert_eq!(out2.dummies, 2);
    }

    /// Example 2.4: delete i-diff by pid removes both P1 tuples.
    #[test]
    fn delete_by_id_subset() {
        let mut v = view();
        let mut ch = HashMap::new();
        let d = DiffInstance::new(
            DiffSchema::delete(&[1], &[2]),
            vec![row!["P1", 10]],
        );
        let out = apply(&mut v, &d, &mut ch).unwrap();
        assert_eq!(out.deleted, 2);
        assert_eq!(v.len(), 1);
    }

    /// Overestimation: a dummy P3 update matches nothing and costs only
    /// its index lookup (Section 1's overestimation discussion).
    #[test]
    fn dummy_update_costs_one_lookup() {
        let mut v = view();
        let mut ch = HashMap::new();
        let d = DiffInstance::new(
            DiffSchema::update(&[1], &[2], &[2]),
            vec![row!["P3", 20, 21]],
        );
        v.stats().reset();
        let out = apply(&mut v, &d, &mut ch).unwrap();
        assert_eq!(out.dummies, 1);
        assert_eq!(out.updated, 0);
        let snap = v.stats().snapshot();
        assert_eq!((snap.index_lookups, snap.tuple_accesses), (1, 0));
        assert!(ch.is_empty());
    }

    #[test]
    fn conflicting_insert_is_an_error() {
        let mut v = view();
        let d = DiffInstance::new(
            DiffSchema::insert(&[0, 1], 3),
            vec![row!["D1", "P1", 999]], // same key, different price
        );
        assert!(apply(&mut v, &d, &mut HashMap::new()).is_err());
    }

    /// Regression (partial-effect APPLY): a conflicting insert in the
    /// middle of a batch used to return `Err` with the earlier rows of
    /// the same diff already inserted. The APPLY session must roll the
    /// whole diff back: table, indexes, and the `changes` overlay.
    #[test]
    fn failed_insert_batch_is_all_or_nothing() {
        let mut v = view();
        v.create_index(&["pid"]).unwrap();
        let before = v.signature();
        let d = DiffInstance::new(
            DiffSchema::insert(&[0, 1], 3),
            vec![
                row!["D7", "P7", 70],   // fresh — would insert
                row!["D1", "P1", 999],  // conflicts with existing D1/P1
                row!["D8", "P8", 80],   // never reached
            ],
        );
        let mut ch = HashMap::new();
        assert!(apply(&mut v, &d, &mut ch).is_err());
        assert_eq!(v.signature(), before, "table must be untouched");
        assert!(ch.is_empty(), "changes overlay must be untouched");
        assert!(
            v.undo_log().is_empty() && !v.undo_log().is_armed(),
            "standalone session must leave the journal drained"
        );
    }

    /// Same property across a batch of several diffs: a failure in a
    /// later diff rolls back earlier diffs of the same `apply_all`.
    #[test]
    fn failed_apply_all_rolls_back_earlier_diffs() {
        let mut v = view();
        let before = v.signature();
        let diffs = vec![
            DiffInstance::new(
                DiffSchema::delete(&[1], &[]),
                vec![Row(vec![Value::str("P2")])], // applies first, succeeds
            ),
            DiffInstance::new(
                DiffSchema::insert(&[0, 1], 3),
                vec![row!["D2", "P1", 999]], // conflicting insert
            ),
        ];
        let mut ch = HashMap::new();
        assert!(apply_all(&mut v, &diffs, &mut ch).is_err());
        assert_eq!(v.signature(), before);
        assert!(ch.is_empty());
    }

    /// Pre-existing overlay entries touched by a failing APPLY must be
    /// restored to their exact prior value, not dropped.
    #[test]
    fn rollback_restores_preexisting_changes_entries() {
        let mut v = view();
        let key = Key(vec![Value::str("D1"), Value::str("P2")]);
        let mut ch = HashMap::new();
        ch.insert(
            key.clone(),
            NetChange::Updated {
                pre: row!["D1", "P2", 19],
                post: row!["D1", "P2", 20],
            },
        );
        let prior = ch.clone();
        let diffs = vec![
            DiffInstance::new(
                DiffSchema::delete(&[1], &[]),
                vec![Row(vec![Value::str("P2")])], // touches the journaled key
            ),
            DiffInstance::new(
                DiffSchema::insert(&[0, 1], 3),
                vec![row!["D2", "P1", 999]], // then fails
            ),
        ];
        assert!(apply_all(&mut v, &diffs, &mut ch).is_err());
        assert_eq!(ch, prior, "overlay entry must be restored verbatim");
    }

    #[test]
    fn apply_all_orders_deletes_updates_inserts() {
        let mut v = view();
        let mut ch = HashMap::new();
        let diffs = vec![
            DiffInstance::new(
                DiffSchema::insert(&[0, 1], 3),
                vec![row!["D9", "P9", 90]],
            ),
            DiffInstance::new(
                DiffSchema::delete(&[1], &[]),
                vec![Row(vec![Value::str("P2")])],
            ),
        ];
        let out = apply_all(&mut v, &diffs, &mut ch).unwrap();
        assert_eq!(out.inserted, 1);
        assert_eq!(out.deleted, 1);
        assert_eq!(v.len(), 3);
    }

    /// Regression: a delete and an update landing on the same key in one
    /// batch (a folded delete racing a stale update diff) must not panic
    /// — the update finds nothing and is counted as a dummy.
    #[test]
    fn delete_then_update_same_key_is_dummy_not_panic() {
        let mut v = view();
        let mut ch = HashMap::new();
        let diffs = vec![
            DiffInstance::new(
                DiffSchema::update(&[1], &[2], &[2]),
                vec![row!["P2", 20, 25]],
            ),
            DiffInstance::new(
                DiffSchema::delete(&[1], &[]),
                vec![Row(vec![Value::str("P2")])],
            ),
        ];
        // apply_all orders deletes first, so the update probes a key
        // whose rows are gone.
        let out = apply_all(&mut v, &diffs, &mut ch).unwrap();
        assert_eq!(out.deleted, 1);
        assert_eq!(out.updated, 0);
        assert_eq!(out.dummies, 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn noop_update_counts_as_dummy() {
        let mut v = view();
        let d = DiffInstance::new(
            DiffSchema::update(&[1], &[2], &[2]),
            vec![row!["P2", 20, 20]], // sets price to its current value
        );
        let mut ch = HashMap::new();
        let out = apply(&mut v, &d, &mut ch).unwrap();
        assert_eq!(out.updated, 0);
        assert_eq!(out.dummies, 1);
        assert!(ch.is_empty());
    }
}
