//! Intermediate-cache planning — paper Section 4 (Example 4.6) and its
//! multi-valued-dependency guard (footnote 6).
//!
//! For every aggregate operator idIVM tries to materialize
//!
//! * an **input cache** holding the subview under the aggregate (the
//!   SPJ result the γ rules probe via `Input_pre`/`Input_post`), and
//! * an **output cache** holding the aggregate's own result — reused as
//!   the view itself when the aggregate is the plan root.
//!
//! Input caches are skipped when the subview is a bare scan (the base
//! table already is materialized) or when it is "expected to contain
//! multi-valued dependencies (for instance due to a many-to-many join),
//! since in that case reading the result from the cache would incur more
//! tuple accesses than recomputing it on the fly" (footnote 6). The
//! heuristic here flags joins in which neither side joins on a key.

use crate::access::PathId;
use idivm_algebra::{infer_ids, Plan};
use idivm_types::Result;
use std::collections::HashMap;

/// One cache to materialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheDef {
    /// Plan path of the subview this cache materializes.
    pub path: PathId,
    /// Storage table name.
    pub name: String,
    /// Column sets to index (probe paths the rules will use).
    pub index_sets: Vec<Vec<usize>>,
}

/// Decide which subviews to cache for `plan` (already ID-extended).
/// `view_name` is used as the output materialization of a root
/// aggregate and to derive cache names. Returns the cache definitions
/// (excluding the view itself) and the full path→table map (including
/// the root mapped to the view).
///
/// `use_input_caches = false` disables the aggregate *input* caches
/// (the knob the paper's experiments compare against); aggregate
/// *output* materializations are always created because the propagation
/// rules require `Output`.
///
/// # Errors
/// ID-inference failures on malformed plans.
pub fn plan_caches(
    plan: &Plan,
    view_name: &str,
    use_input_caches: bool,
) -> Result<(Vec<CacheDef>, HashMap<PathId, String>)> {
    let mut defs = Vec::new();
    let mut map = HashMap::new();
    // The view itself serves as the materialization of the root.
    map.insert(PathId::new(), view_name.to_string());
    walk(plan, &PathId::new(), view_name, use_input_caches, &mut defs, &mut map)?;
    Ok((defs, map))
}

fn walk(
    node: &Plan,
    path: &PathId,
    view_name: &str,
    use_input_caches: bool,
    defs: &mut Vec<CacheDef>,
    map: &mut HashMap<PathId, String>,
) -> Result<()> {
    if let Plan::GroupBy { input, keys, .. } = node {
        // Output cache (unless this node is the root — then the view
        // already materializes it).
        if !path.is_empty() && !map.contains_key(path) {
            let name = format!("{view_name}#out{}", suffix(path));
            map.insert(path.clone(), name.clone());
            defs.push(CacheDef {
                path: path.clone(),
                name,
                index_sets: vec![(0..keys.len()).collect()],
            });
        }
        // Input cache.
        let in_path = child(path, 0);
        let worth = use_input_caches
            && !matches!(**input, Plan::Scan { .. })
            && !has_m2m_join(input)
            && !map.contains_key(&in_path);
        if worth {
            let name = format!("{view_name}#cache{}", suffix(&in_path));
            let mut index_sets = vec![keys.clone()];
            index_sets.extend(diff_probe_sets(input)?);
            map.insert(in_path.clone(), name.clone());
            defs.push(CacheDef {
                path: in_path,
                name,
                index_sets,
            });
        }
    }
    for (i, c) in node.children().into_iter().enumerate() {
        walk(c, &child(path, i), view_name, use_input_caches, defs, map)?;
    }
    Ok(())
}

/// ID column sets with which base-table diffs will probe this subview:
/// for every scanned alias, the positions its key columns occupy in the
/// subview output (when they all survive).
fn diff_probe_sets(node: &Plan) -> Result<Vec<Vec<usize>>> {
    let cols = node.output_cols();
    let mut sets = Vec::new();
    for (alias, _) in node.scans() {
        let mut set = Vec::new();
        let mut by_base: Vec<(usize, usize)> = Vec::new(); // (base col, out pos)
        for (pos, c) in cols.iter().enumerate() {
            if let Some(o) = &c.origin {
                if o.alias == alias {
                    by_base.push((o.column, pos));
                }
            }
        }
        // We need the alias's key columns; without the base schema here
        // we approximate with "all surviving columns of the alias that
        // are part of the subview's IDs".
        let ids = infer_ids(node)?;
        for (_, pos) in by_base {
            if ids.contains(&pos) {
                set.push(pos);
            }
        }
        set.sort_unstable();
        set.dedup();
        if !set.is_empty() {
            sets.push(set);
        }
    }
    sets.sort();
    sets.dedup();
    Ok(sets)
}

/// Does the subtree contain a join in which *neither* side joins on any
/// of its own ID columns? Such joins cross two value-correlated but
/// key-independent row sets — the multi-valued-dependency shape
/// footnote 6 excludes from caching. Joins anchored on at least one
/// side's key (or key component) are hierarchical fan-outs — the shape
/// foreign keys produce, which the paper's FK-based inference admits
/// (it caches, e.g., the friends-of-friends chain of Q*1).
pub fn has_m2m_join(node: &Plan) -> bool {
    let this = match node {
        Plan::Join {
            left, right, on, ..
        }
        | Plan::LeftOuterJoin {
            left, right, on, ..
        } => {
            let lids = infer_ids(left).unwrap_or_default();
            let rids = infer_ids(right).unwrap_or_default();
            let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
            let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
            let left_anchored = lcols.iter().any(|c| lids.contains(c));
            let right_anchored = rcols.iter().any(|c| rids.contains(c));
            !(left_anchored || right_anchored)
        }
        _ => false,
    };
    this || node.children().iter().any(|c| has_m2m_join(c))
}

fn child(path: &[usize], i: usize) -> PathId {
    let mut p = path.to_vec();
    p.push(i);
    p
}

fn suffix(path: &[usize]) -> String {
    if path.is_empty() {
        "_root".to_string()
    } else {
        let parts: Vec<String> = path.iter().map(usize::to_string).collect();
        format!("_{}", parts.join("_"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_algebra::{AggFunc, PlanBuilder};
    use idivm_types::{ColumnType, Schema};

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "parts".to_string(),
            Schema::from_pairs(
                &[("pid", ColumnType::Str), ("price", ColumnType::Int)],
                &["pid"],
            )
            .unwrap(),
        );
        m.insert(
            "devices_parts".to_string(),
            Schema::from_pairs(
                &[("did", ColumnType::Str), ("pid", ColumnType::Str)],
                &["did", "pid"],
            )
            .unwrap(),
        );
        m
    }

    #[test]
    fn root_aggregate_gets_input_cache_only() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .group_by(
                &["devices_parts.did"],
                &[(AggFunc::Sum, "parts.price", "cost")],
            )
            .unwrap()
            .build()
            .unwrap();
        let (defs, map) = plan_caches(&plan, "v", true).unwrap();
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].path, vec![0]);
        assert_eq!(map[&PathId::new()], "v");
        assert_eq!(map[&vec![0usize]], defs[0].name);
    }

    #[test]
    fn aggregate_over_scan_gets_no_input_cache() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "devices_parts")
            .unwrap()
            .group_by(&["devices_parts.did"], &[(AggFunc::Count, "*", "n")])
            .unwrap()
            .build()
            .unwrap();
        let (defs, _) = plan_caches(&plan, "v", true).unwrap();
        assert!(defs.is_empty());
    }

    #[test]
    fn m2m_join_detected() {
        let cat = catalog();
        // Join parts to parts on the non-key price column: m:n.
        let plan = PlanBuilder::scan_as(&cat, "parts", "a")
            .unwrap()
            .join(
                PlanBuilder::scan_as(&cat, "parts", "b").unwrap(),
                &[("a.price", "b.price")],
            )
            .unwrap()
            .build()
            .unwrap();
        assert!(has_m2m_join(&plan));
        // Key-to-key join is not m:n.
        let plan2 = PlanBuilder::scan_as(&cat, "parts", "a")
            .unwrap()
            .join(
                PlanBuilder::scan_as(&cat, "parts", "b").unwrap(),
                &[("a.pid", "b.pid")],
            )
            .unwrap()
            .build()
            .unwrap();
        assert!(!has_m2m_join(&plan2));
    }

    #[test]
    fn caches_disabled() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .group_by(
                &["devices_parts.did"],
                &[(AggFunc::Sum, "parts.price", "cost")],
            )
            .unwrap()
            .build()
            .unwrap();
        let (defs, map) = plan_caches(&plan, "v", false).unwrap();
        assert!(defs.is_empty()); // root γ's output is the view itself
        assert_eq!(map.len(), 1);
    }
}
