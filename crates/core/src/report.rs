//! Maintenance-round reporting, broken down into the phases the paper's
//! Figure 12 stacks: diff computation, cache update, and view update.

use crate::apply::ApplyOutcome;
use crate::trace::RoundTrace;
use idivm_reldb::{StatsSnapshot, TableChanges};
use std::fmt;
use std::time::Duration;

/// Cost and outcome of one maintenance round.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Accesses spent computing diffs (rule evaluation / probes).
    pub diff_compute: StatsSnapshot,
    /// Accesses spent applying diffs to intermediate caches.
    pub cache_update: StatsSnapshot,
    /// Accesses spent applying diffs to the view.
    pub view_update: StatsSnapshot,
    /// What happened to the view.
    pub view_outcome: ApplyOutcome,
    /// What happened to the caches (summed).
    pub cache_outcome: ApplyOutcome,
    /// Base-table diff tuples consumed.
    pub base_diff_tuples: usize,
    /// View-level diff tuples produced (before application).
    pub view_diff_tuples: usize,
    /// Dirty-group rescans performed by non-invertible aggregates
    /// (MIN/MAX): groups whose stored extremum was removed and had to
    /// be re-read from the input. The member lookups themselves are
    /// counted in the access phases; this counts how often the fallback
    /// fired.
    pub rescans: u64,
    /// Wall-clock time of the round.
    pub wall: Duration,
    /// Per-operator trace (recorded only when
    /// [`TraceConfig::enabled`](crate::trace::TraceConfig) is set).
    pub trace: Option<RoundTrace>,
    /// True iff the incremental round failed, was rolled back, and the
    /// view was repaired by full recompute
    /// ([`RecoveryPolicy::RecomputeOnError`](crate::engine::RecoveryPolicy)).
    /// The phase counters above then describe the (empty) recovered
    /// round, not the aborted incremental attempt.
    pub recovered: bool,
    /// Accesses spent on the recompute repair (separate from the
    /// incremental phase counters; zero unless `recovered`).
    pub recovery: StatsSnapshot,
    /// Display form of the error the recovery repaired (`None` unless
    /// `recovered`).
    pub recovery_cause: Option<String>,
    /// Net changes the round applied to the view table, keyed by view
    /// key. When the view serves as the backing table of a promoted
    /// intermediate, these are exactly the Δ its consumers must see as
    /// pending base-table changes — surfacing them here is what makes
    /// intermediate maintenance O(Δ) for the whole consumer set (no
    /// recompute, no table diff). Empty after a recompute recovery (the
    /// repair rewrites the table wholesale; callers must fall back to a
    /// table-level diff in that case).
    pub view_changes: TableChanges,
}

impl MaintenanceReport {
    /// Combined access cost (the paper's unit) across all phases.
    pub fn total_accesses(&self) -> u64 {
        self.diff_compute.total() + self.cache_update.total() + self.view_update.total()
    }

    /// i-diff compression factor observed at the view:
    /// `p = |D_V| / |∆_V|` — view tuples actually modified per view diff
    /// tuple (Section 6's `p`). `None` when no view diffs were produced.
    pub fn compression_factor(&self) -> Option<f64> {
        if self.view_diff_tuples == 0 {
            return None;
        }
        let modified = self.view_outcome.inserted
            + self.view_outcome.deleted
            + self.view_outcome.updated;
        Some(modified as f64 / self.view_diff_tuples as f64)
    }
}

impl fmt::Display for MaintenanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "maintenance: {} base diff tuples -> {} view diff tuples",
            self.base_diff_tuples, self.view_diff_tuples
        )?;
        writeln!(f, "  diff computation: {}", self.diff_compute)?;
        writeln!(f, "  cache update:     {}", self.cache_update)?;
        writeln!(f, "  view update:      {}", self.view_update)?;
        writeln!(
            f,
            "  view outcome: +{} -{} ~{} (dummies {})",
            self.view_outcome.inserted,
            self.view_outcome.deleted,
            self.view_outcome.updated,
            self.view_outcome.dummies
        )?;
        if self.rescans > 0 {
            writeln!(f, "  extremum rescans: {}", self.rescans)?;
        }
        if self.recovered {
            writeln!(
                f,
                "  recovered by recompute ({}) after: {}",
                self.recovery,
                self.recovery_cause.as_deref().unwrap_or("unknown error")
            )?;
        }
        write!(f, "  total accesses: {}", self.total_accesses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_compression() {
        let mut r = MaintenanceReport {
            diff_compute: StatsSnapshot {
                tuple_accesses: 5,
                index_lookups: 2,
            },
            view_update: StatsSnapshot {
                tuple_accesses: 3,
                index_lookups: 1,
            },
            view_diff_tuples: 2,
            ..Default::default()
        };
        r.view_outcome.updated = 4;
        assert_eq!(r.total_accesses(), 11);
        assert_eq!(r.compression_factor(), Some(2.0));
        let text = r.to_string();
        assert!(text.contains("total accesses: 11"));
    }

    #[test]
    fn compression_none_without_diffs() {
        let r = MaintenanceReport::default();
        assert!(r.compression_factor().is_none());
    }
}
