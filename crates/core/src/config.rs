//! The shared engine tuning-knob block.
//!
//! Every maintenance engine in this workspace (`IdIvm`, `TupleIvm`,
//! `Sdbt`) carries the same five runtime knobs: partitioned-propagation
//! configuration, per-operator tracing, deterministic fault injection,
//! a per-round access budget, and the post-rollback recovery policy.
//! PR 4 left three near-identical blocks of getter/setter plumbing —
//! this module replaces them with one [`EngineKnobs`] struct and one
//! [`EngineConfig`] trait whose *default methods* provide the whole
//! accessor surface; an engine implements only [`EngineConfig::knobs`]
//! and [`EngineConfig::knobs_mut`].

use crate::engine::RecoveryPolicy;
use crate::faults::{FaultPlan, RoundBudget};
use crate::trace::TraceConfig;
use idivm_exec::ParallelConfig;
use idivm_types::Result;

/// The runtime knobs shared by every engine. Setup-time options that
/// differ per engine (e.g. `IdIvm`'s `minimize` / `use_input_caches`)
/// stay on the engine's own options type.
#[derive(Debug, Clone, Copy)]
pub struct EngineKnobs {
    /// Partitioned delta propagation (serial by default); access counts
    /// are bit-identical for any thread count.
    pub parallel: ParallelConfig,
    /// Per-operator trace recording (off by default; zero cost when
    /// off). See [`crate::trace`].
    pub trace: TraceConfig,
    /// Deterministic fault injection (disabled by default; zero cost
    /// when off). See [`crate::faults`].
    pub faults: FaultPlan,
    /// Opt-in per-round access budget (unlimited by default).
    pub budget: RoundBudget,
    /// What to do after a mid-round error forced a rollback.
    pub recovery: RecoveryPolicy,
}

impl Default for EngineKnobs {
    fn default() -> Self {
        EngineKnobs {
            parallel: ParallelConfig::serial(),
            trace: TraceConfig::disabled(),
            faults: FaultPlan::disabled(),
            budget: RoundBudget::unlimited(),
            recovery: RecoveryPolicy::Abort,
        }
    }
}

/// Access to an engine's [`EngineKnobs`], with the full getter/setter
/// surface as default methods. Implementors provide the two accessors;
/// everything else comes for free (and stays consistent across
/// engines).
pub trait EngineConfig {
    /// The engine's knob block.
    fn knobs(&self) -> &EngineKnobs;
    /// Mutable access to the engine's knob block.
    fn knobs_mut(&mut self) -> &mut EngineKnobs;

    /// The partitioned-propagation configuration.
    fn parallel(&self) -> ParallelConfig {
        self.knobs().parallel
    }

    /// Set the partitioned-propagation configuration (serial by
    /// default). Access counts are bit-identical for any thread count.
    ///
    /// # Errors
    /// [`Error::Config`](idivm_types::Error::Config) for an invalid
    /// thread count (see [`ParallelConfig::validate`]).
    fn set_parallel(&mut self, parallel: ParallelConfig) -> Result<()> {
        parallel.validate()?;
        self.knobs_mut().parallel = parallel;
        Ok(())
    }

    /// The per-operator trace configuration.
    fn trace(&self) -> TraceConfig {
        self.knobs().trace
    }

    /// Enable or disable per-operator trace recording (off by default).
    fn set_trace(&mut self, trace: TraceConfig) {
        self.knobs_mut().trace = trace;
    }

    /// The armed fault-injection plan.
    fn faults(&self) -> FaultPlan {
        self.knobs().faults
    }

    /// Arm a deterministic fault-injection plan (disabled by default;
    /// zero cost when off). See [`crate::faults`].
    fn set_faults(&mut self, faults: FaultPlan) {
        self.knobs_mut().faults = faults;
    }

    /// The current recovery policy.
    fn recovery(&self) -> RecoveryPolicy {
        self.knobs().recovery
    }

    /// Set what a round does after an error forced a rollback.
    fn set_recovery(&mut self, recovery: RecoveryPolicy) {
        self.knobs_mut().recovery = recovery;
    }

    /// The current per-round access budget.
    fn budget(&self) -> RoundBudget {
        self.knobs().budget
    }

    /// Set the per-round access budget (unlimited by default; zero
    /// cost when off). See [`RoundBudget`].
    fn set_budget(&mut self, budget: RoundBudget) {
        self.knobs_mut().budget = budget;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        knobs: EngineKnobs,
    }

    impl EngineConfig for Fake {
        fn knobs(&self) -> &EngineKnobs {
            &self.knobs
        }
        fn knobs_mut(&mut self) -> &mut EngineKnobs {
            &mut self.knobs
        }
    }

    #[test]
    fn default_methods_round_trip() {
        let mut e = Fake {
            knobs: EngineKnobs::default(),
        };
        assert!(!e.trace().enabled);
        e.set_trace(TraceConfig::enabled());
        assert!(e.trace().enabled);
        e.set_budget(RoundBudget::capped(7));
        assert_eq!(e.budget().max_accesses, Some(7));
        e.set_recovery(RecoveryPolicy::RecomputeOnError);
        assert_eq!(e.recovery(), RecoveryPolicy::RecomputeOnError);
        e.set_faults(FaultPlan::at_operator(1, 9));
        assert!(e.faults().enabled());
        assert!(e.set_parallel(ParallelConfig::with_threads(4)).is_ok());
        assert_eq!(e.parallel().threads, 4);
        assert!(e.set_parallel(ParallelConfig::with_threads(0)).is_err());
    }
}
