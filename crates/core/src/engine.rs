//! The idIVM engine: view-definition-time setup (the four passes of
//! paper Section 4) and maintenance-time execution (Section 3's online
//! components).
//!
//! [`IdIvm::setup`] runs at view definition time:
//!
//! 1. **Pass 1** — ID inference: extend the plan so every subview keeps
//!    its ID attributes ([`idivm_algebra::ensure_ids`]).
//! 2. Base-table i-diff **schema generation**
//!    ([`crate::schema_gen::generate`]).
//! 3. **Cache planning** ([`crate::cache::plan_caches`]) and
//!    materialization of the view, the caches, and their indexes.
//!
//! Passes 2–4 (rule instantiation, composition, minimization) are
//! realized structurally: the rule set is instantiated per operator at
//! propagation time, composed by the bottom-up walk, and minimized by
//! the per-rule diff-local shortcuts (see [`crate::minimize`]).
//!
//! [`IdIvm::maintain`] runs the deferred-maintenance round: fold the
//! modification log into effective net changes, populate base i-diff
//! instances, propagate bottom-up (applying cache diffs at cache
//! boundaries), and apply the final i-diffs to the view.

use crate::access::{AccessCtx, PathId};
use crate::apply::{apply_all, ApplyOutcome};
use crate::cache::{plan_caches, CacheDef};
use crate::config::{EngineConfig, EngineKnobs};
use crate::diff::DiffInstance;
use crate::faults::{FaultPlan, FaultState, RoundBudget};
use crate::report::MaintenanceReport;
use crate::rules::{propagate, IncomingDiff, RuleCtx};
use crate::schema_gen::{generate, populate, BaseDiffSchemas};
use crate::shared::{SharedDiffCache, SharedPrefixes};
use crate::trace::{op_label, OpTrace, RoundTrace, TraceConfig, TracePhase};
use idivm_algebra::{ensure_ids, Plan};
use idivm_exec::{materialize_view, refresh_view, view_schema, ParallelConfig};
use idivm_reldb::{Database, StatsSnapshot, TableChanges};
use idivm_types::{Error, Result, Schema};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// What a maintenance round does after an error forced a rollback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Propagate the error (default). The rollback has already restored
    /// every view, cache, and index to its pre-round state, and the
    /// modification log is preserved, so the round can be retried.
    #[default]
    Abort,
    /// After rollback, repair the view and its caches by full recompute
    /// ([`idivm_exec::refresh_view`]) and return a successful report
    /// with [`recovered`](MaintenanceReport::recovered) set and the
    /// repair's access cost in
    /// [`recovery`](MaintenanceReport::recovery).
    RecomputeOnError,
}

/// Tuning knobs of the engine.
#[derive(Debug, Clone, Copy)]
pub struct IvmOptions {
    /// Pass-4 semantic minimization (Figure 8). On by default; the
    /// ablation benches switch it off.
    pub minimize: bool,
    /// Materialize intermediate caches under aggregate operators
    /// (Section 4 / Example 4.6). On by default.
    pub use_input_caches: bool,
    /// Partitioned delta propagation: diff batches are hash-sharded by
    /// diff key and propagated on worker threads, with shard outputs
    /// merged deterministically before the (serial) Apply step. Serial
    /// by default; access counts are bit-identical for any thread
    /// count.
    pub parallel: ParallelConfig,
    /// Per-operator trace recording (off by default; zero cost when
    /// off). See [`crate::trace`].
    pub trace: TraceConfig,
    /// Deterministic fault injection (disabled by default; zero cost
    /// when off). See [`crate::faults`].
    pub faults: FaultPlan,
    /// Opt-in per-round access budget (unlimited by default; zero cost
    /// when off). A round exceeding it aborts with the retryable
    /// [`Error::Budget`](idivm_types::Error::Budget) and rolls back.
    pub budget: RoundBudget,
    /// What to do after a mid-round error forced a rollback.
    pub recovery: RecoveryPolicy,
}

impl Default for IvmOptions {
    fn default() -> Self {
        IvmOptions {
            minimize: true,
            use_input_caches: true,
            parallel: ParallelConfig::serial(),
            trace: TraceConfig::disabled(),
            faults: FaultPlan::disabled(),
            budget: RoundBudget::unlimited(),
            recovery: RecoveryPolicy::Abort,
        }
    }
}

/// An incrementally maintained view under ID-based IVM.
pub struct IdIvm {
    view_name: String,
    plan: Plan,
    minimize: bool,
    use_input_caches: bool,
    knobs: EngineKnobs,
    schemas: BaseDiffSchemas,
    cache_defs: Vec<CacheDef>,
    cache_map: HashMap<PathId, String>,
}

impl EngineConfig for IdIvm {
    fn knobs(&self) -> &EngineKnobs {
        &self.knobs
    }
    fn knobs_mut(&mut self) -> &mut EngineKnobs {
        &mut self.knobs
    }
}

impl IdIvm {
    /// Register and materialize a view for ID-based maintenance.
    ///
    /// # Errors
    /// Plan validation/ID-inference failures, name collisions, unknown
    /// tables.
    pub fn setup(
        db: &mut Database,
        view_name: &str,
        plan: Plan,
        options: IvmOptions,
    ) -> Result<Self> {
        Self::setup_inner(db, view_name, plan, options, false)
    }

    /// Re-register a view over a *content-equivalent* rewrite of its
    /// plan — the promotion/demotion rewire path of the adaptive
    /// intermediate layer. Instead of re-materializing, the existing
    /// view table is kept when its storage shape (arity + key
    /// positions) matches the rewritten plan, and so is every cache
    /// whose name and shape survive the rewrite. Caches that only
    /// exist under the old plan must be dropped by the caller (the
    /// catalog knows the old definitions); caches new to the rewritten
    /// plan are materialized from scratch.
    ///
    /// The caller asserts the content invariant: the rewritten plan
    /// evaluates to exactly the same rows as the plan the kept tables
    /// were maintained under (true when a prefix subtree is swapped
    /// for a scan of its freshly populated backing table, and when the
    /// swap is reversed). Column *names* may drift (scan-alias
    /// prefixes); signatures fingerprint rows and index postings only,
    /// so a rewire is invisible to bit-identity checks.
    ///
    /// # Errors
    /// Same conditions as [`IdIvm::setup`], plus a storage-shape
    /// mismatch of the existing view table ([`Error::Plan`] — the
    /// rewrite was not content-equivalent).
    pub fn setup_over(
        db: &mut Database,
        view_name: &str,
        plan: Plan,
        options: IvmOptions,
    ) -> Result<Self> {
        Self::setup_inner(db, view_name, plan, options, true)
    }

    fn setup_inner(
        db: &mut Database,
        view_name: &str,
        plan: Plan,
        options: IvmOptions,
        reuse: bool,
    ) -> Result<Self> {
        options.parallel.validate()?;
        // Pass 1: make every subview carry its IDs.
        let plan = ensure_ids(plan)?;
        plan.validate()?;
        // Base-table i-diff schemas (Section 5).
        let catalog = base_catalog(db, &plan)?;
        let schemas = generate(&plan, &catalog)?;
        // Probe indexes shared with the baseline (see
        // [`ensure_probe_indexes`]).
        ensure_probe_indexes(db, &plan)?;
        // Cache planning + materialization.
        let (cache_defs, cache_map) = plan_caches(&plan, view_name, options.use_input_caches)?;
        if reuse && db.has_table(view_name) {
            ensure_storage_shape(db, view_name, &plan)?;
        } else {
            materialize_view(db, view_name, &plan)?;
        }
        for def in &cache_defs {
            let sub = crate::access::node_at(&plan, &def.path)?.clone();
            if reuse && db.has_table(&def.name) {
                if ensure_storage_shape(db, &def.name, &sub).is_err() {
                    // Same name, different shape after the rewrite:
                    // rebuild from scratch.
                    db.drop_table(&def.name);
                    materialize_view(db, &def.name, &sub)?;
                }
            } else {
                materialize_view(db, &def.name, &sub)?;
            }
            let t = db.table_mut(&def.name)?;
            for set in &def.index_sets {
                t.create_index_positions(set.clone());
            }
        }
        Ok(IdIvm {
            view_name: view_name.to_string(),
            plan,
            minimize: options.minimize,
            use_input_caches: options.use_input_caches,
            knobs: EngineKnobs {
                parallel: options.parallel,
                trace: options.trace,
                faults: options.faults,
                budget: options.budget,
                recovery: options.recovery,
            },
            schemas,
            cache_defs,
            cache_map,
        })
    }

    /// The maintained view's name.
    pub fn view_name(&self) -> &str {
        &self.view_name
    }

    /// The (ID-extended) plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The generated base-table i-diff schemas.
    pub fn schemas(&self) -> &BaseDiffSchemas {
        &self.schemas
    }

    /// Cache definitions (excluding the view itself).
    pub fn caches(&self) -> &[CacheDef] {
        &self.cache_defs
    }

    /// Cache boundaries: plan path → materialized table name (the root
    /// path `[]` maps to the view itself).
    pub fn cache_map(&self) -> &HashMap<PathId, String> {
        &self.cache_map
    }

    /// Engine options, reconstructed from the setup-time flags and the
    /// current [`EngineKnobs`] (see [`EngineConfig`]).
    pub fn options(&self) -> IvmOptions {
        IvmOptions {
            minimize: self.minimize,
            use_input_caches: self.use_input_caches,
            parallel: self.knobs.parallel,
            trace: self.knobs.trace,
            faults: self.knobs.faults,
            budget: self.knobs.budget,
            recovery: self.knobs.recovery,
        }
    }

    /// Run one deferred maintenance round: consume the modification
    /// log, bring caches and the view up to date, and report costs.
    ///
    /// The round is **atomic**: on any `Err` every view, cache, and
    /// secondary index is rolled back to its exact pre-round state and
    /// the modification log is preserved, so a clean retry (or a
    /// recompute) starts from consistent state. With
    /// [`RecoveryPolicy::RecomputeOnError`] the error is repaired
    /// in-place and reported instead of returned.
    ///
    /// # Errors
    /// Propagation or application failures (each indicates an engine
    /// bug — the paper's algorithm never fails on valid input) or an
    /// injected fault.
    pub fn maintain(&self, db: &mut Database) -> Result<MaintenanceReport> {
        // i-diff instance generation: fold the log (effective diffs).
        // The log is cleared only after the round commits (or recovery
        // repairs), keeping failed rounds retryable.
        let fold_started = Instant::now();
        let net = db.fold_log();
        let fold = fold_started.elapsed();
        let mut report = self.maintain_with_changes(db, &net)?;
        db.clear_log();
        if let Some(trace) = report.trace.as_mut() {
            trace.timings.fold = fold;
        }
        Ok(report)
    }

    /// Like [`IdIvm::maintain`], but over an externally folded change
    /// set — several views maintained from one shared modification log
    /// fold it once and pass it to each engine. The modification log is
    /// untouched (the caller owns it); atomicity is as in
    /// [`IdIvm::maintain`].
    ///
    /// # Errors
    /// Propagation or application failures, or an injected fault.
    pub fn maintain_with_changes(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport> {
        self.maintain_inner(db, net, None)
    }

    /// Like [`IdIvm::maintain_with_changes`], with cross-view
    /// **shared-prefix i-diff reuse**: at each plan path designated in
    /// `prefixes`, the walk first consults the round-scoped `cache` —
    /// on a hit the whole subtree walk is skipped and the published
    /// i-diffs are fanned in at zero counted accesses; on a miss the
    /// subtree is computed normally and its boundary diffs published.
    /// Results are bit-identical to the unshared walk (see
    /// [`crate::shared`] for the soundness invariants); `cache` must be
    /// fresh for the round and shared only between views maintained
    /// against the same pending net.
    ///
    /// # Errors
    /// Same conditions as [`IdIvm::maintain_with_changes`].
    pub fn maintain_with_changes_shared(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
        prefixes: &SharedPrefixes,
        cache: &mut SharedDiffCache,
    ) -> Result<MaintenanceReport> {
        self.maintain_inner(db, net, Some((prefixes, cache)))
    }

    fn maintain_inner(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
        shared: Option<(&SharedPrefixes, &mut SharedDiffCache)>,
    ) -> Result<MaintenanceReport> {
        let owner = db.begin_round();
        match self.round_body(db, net, shared) {
            Ok(report) => {
                if owner {
                    db.commit_round();
                } else {
                    db.end_nested_round();
                }
                Ok(report)
            }
            Err(e) => {
                if owner {
                    db.abort_round();
                    if self.knobs.recovery == RecoveryPolicy::RecomputeOnError {
                        return self.recover(db, &e);
                    }
                } else {
                    // Nested under someone else's round: the owner's
                    // abort (and recovery policy) handles the outcome.
                    db.end_nested_round();
                }
                Err(e)
            }
        }
    }

    /// Repair the view and caches by full recompute after a rollback.
    fn recover(&self, db: &mut Database, cause: &Error) -> Result<MaintenanceReport> {
        let started = Instant::now();
        let before = db.stats().snapshot();
        refresh_view(db, &self.view_name, &self.plan)?;
        for def in &self.cache_defs {
            let sub = crate::access::node_at(&self.plan, &def.path)?.clone();
            refresh_view(db, &def.name, &sub)?;
        }
        let recovery = db.stats().snapshot().since(&before);
        let mut report = MaintenanceReport {
            recovered: true,
            recovery,
            recovery_cause: Some(cause.to_string()),
            ..MaintenanceReport::default()
        };
        if self.knobs.trace.enabled {
            let mut trace = RoundTrace::default();
            trace.operators.push(OpTrace {
                path: PathId::new(),
                op: format!("recompute `{}`", self.view_name),
                phase: TracePhase::Recovery,
                diffs_in: 0,
                diffs_out: 0,
                dummies: 0,
                accesses: recovery,
            });
            report.trace = Some(trace);
        }
        report.wall = started.elapsed();
        Ok(report)
    }

    /// The incremental round itself (no commit/abort handling).
    fn round_body(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
        shared: Option<(&SharedPrefixes, &mut SharedDiffCache)>,
    ) -> Result<MaintenanceReport> {
        let started = Instant::now();
        let faults = FaultState::with_budget(self.knobs.faults, self.knobs.budget);
        // Content-dependent failpoint: a poison key in the pending
        // batch fails the round before any propagation.
        faults.on_batch(net)?;
        let round0 = db.stats().snapshot();
        let mut report = MaintenanceReport::default();
        if self.knobs.trace.enabled {
            report.trace = Some(RoundTrace::default());
        }
        // Round keys bind each designated prefix to this round's
        // pending net; the net is constant for the whole round, so
        // they are computed once up front.
        let shared = shared.map(|(prefixes, cache)| {
            let round_keys = prefixes
                .map
                .keys()
                .filter_map(|p| prefixes.round_key(p, net).map(|k| (p.clone(), k)))
                .collect();
            SharedCtx {
                prefixes,
                cache,
                round_keys,
            }
        });
        let net = net.clone();
        let mut base_diffs: HashMap<String, Vec<DiffInstance>> = HashMap::new();
        for (table, changes) in &net {
            if let Some(schemas) = self.schemas.tables.get(table) {
                let diffs = populate(schemas, changes);
                report.base_diff_tuples += diffs.iter().map(DiffInstance::len).sum::<usize>();
                base_diffs.insert(table.clone(), diffs);
            }
        }
        let populate_done = started.elapsed();
        if base_diffs.is_empty() {
            if let Some(trace) = report.trace.as_mut() {
                trace.timings.populate = populate_done;
            }
            report.wall = started.elapsed();
            return Ok(report);
        }
        let rescans = AtomicU64::new(0);
        let mut state = RoundState {
            net,
            base_diffs,
            cache_changes: HashMap::new(),
            report: &mut report,
            faults: &faults,
            rescans: &rescans,
            round0,
            shared,
        };
        let propagate_started = Instant::now();
        let root_diffs = self.walk(db, &mut state, &self.plan, &PathId::new())?;
        let propagate_done = propagate_started.elapsed();
        report.rescans = rescans.load(Ordering::Relaxed);
        // Apply the final i-diffs to the view.
        report.view_diff_tuples = root_diffs.iter().map(DiffInstance::len).sum();
        faults.on_apply(&self.view_name)?;
        let apply_started = Instant::now();
        let before = db.stats().snapshot();
        let mut view_changes = TableChanges::new();
        let outcome = apply_all(db.table_mut(&self.view_name)?, &root_diffs, &mut view_changes)?;
        report.view_update = db.stats().snapshot().since(&before);
        report.view_outcome = outcome;
        report.view_changes = view_changes;
        if faults.wants_access() {
            faults.on_access(db.stats().snapshot().since(&round0).total())?;
        }
        if let Some(trace) = report.trace.as_mut() {
            trace.operators.push(OpTrace {
                path: PathId::new(),
                op: op_label(&self.plan).to_string(),
                phase: TracePhase::ViewApply,
                diffs_in: report.view_diff_tuples as u64,
                diffs_out: 0,
                dummies: outcome.dummies,
                accesses: report.view_update,
            });
            trace.timings.populate = populate_done;
            trace.timings.propagate = propagate_done;
            trace.timings.apply = apply_started.elapsed();
        }
        report.wall = started.elapsed();
        Ok(report)
    }

    /// Bottom-up propagation. Returns the diffs over `node`'s output.
    fn walk(
        &self,
        db: &mut Database,
        state: &mut RoundState<'_>,
        node: &Plan,
        path: &PathId,
    ) -> Result<Vec<DiffInstance>> {
        // Scan leaves consume the base-table i-diff instances.
        if let Plan::Scan { table, .. } = node {
            return Ok(state
                .base_diffs
                .get(table)
                .cloned()
                .unwrap_or_default());
        }
        // Shared-prefix boundary: another view maintained against the
        // same pending net may already have published this subtree's
        // i-diffs into the round cache — serve the reuse at zero
        // counted accesses and skip the whole subtree walk. On a miss,
        // remember the key so the computed diffs get published below.
        let mut publish_key: Option<String> = None;
        let mut reused: Option<Vec<DiffInstance>> = None;
        if let Some(shared) = state.shared.as_mut() {
            if let Some(key) = shared.round_keys.get(path) {
                match shared.cache.reuse(key) {
                    Some(diffs) => reused = Some(diffs),
                    None => publish_key = Some(key.clone()),
                }
            }
        }
        let out = if let Some(out) = reused {
            if let Some(trace) = state.report.trace.as_mut() {
                trace.operators.push(OpTrace {
                    path: path.clone(),
                    op: format!("{} (shared-prefix reuse)", op_label(node)),
                    phase: TracePhase::Propagate,
                    diffs_in: 0,
                    diffs_out: out.iter().map(|d| d.len() as u64).sum(),
                    dummies: 0,
                    accesses: StatsSnapshot::default(),
                });
            }
            out
        } else {
            // Children first. The subtree-entry snapshot prices the
            // whole walk below this boundary for the publish record.
            let sub0 = db.stats().snapshot();
            let mut incoming = Vec::new();
            for (i, c) in node.children().into_iter().enumerate() {
                let child_path = {
                    let mut p = path.clone();
                    p.push(i);
                    p
                };
                for diff in self.walk(db, state, c, &child_path)? {
                    incoming.push(IncomingDiff { side: i, diff });
                }
            }
            if incoming.is_empty() {
                return Ok(Vec::new());
            }
            state.faults.on_operator(op_label(node))?;
            let diffs_in: u64 = incoming.iter().map(|i| i.diff.len() as u64).sum();
            // Rule application (counted as diff-computation cost).
            let before = db.stats().snapshot();
            let out = {
                let access = AccessCtx {
                    db,
                    base_changes: &state.net,
                    caches: &self.cache_map,
                    cache_changes: &state.cache_changes,
                };
                let ctx = RuleCtx {
                    access: &access,
                    minimize: self.minimize,
                    parallel: self.knobs.parallel,
                    faults: Some(state.faults),
                    rescans: Some(state.rescans),
                };
                propagate(&ctx, node, path, incoming)?
            };
            let spent = db.stats().snapshot().since(&before);
            state.report.diff_compute = state.report.diff_compute.merge(spent);
            if let Some(trace) = state.report.trace.as_mut() {
                trace.operators.push(OpTrace {
                    path: path.clone(),
                    op: op_label(node).to_string(),
                    phase: TracePhase::Propagate,
                    diffs_in,
                    diffs_out: out.iter().map(|d| d.len() as u64).sum(),
                    dummies: 0,
                    accesses: spent,
                });
            }
            if state.faults.wants_access() {
                state
                    .faults
                    .on_access(db.stats().snapshot().since(&state.round0).total())?;
            }
            if let Some(key) = publish_key {
                if let Some(shared) = state.shared.as_mut() {
                    let (label, structure) = shared
                        .prefixes
                        .map
                        .get(path)
                        .map_or(("prefix", ""), |s| {
                            (s.label.as_str(), s.structure.as_str())
                        });
                    let compute = db.stats().snapshot().since(&sub0);
                    shared.cache.publish(key, label, structure, &out, compute);
                }
            }
            out
        };
        // Cache boundary: apply the diffs so operators above see the
        // cache in post-state (pre-state through the overlay).
        if let Some(cache_name) = self.cache_map.get(path) {
            if !path.is_empty() {
                state.faults.on_apply(cache_name)?;
                let before = db.stats().snapshot();
                let mut changes = state
                    .cache_changes
                    .remove(cache_name)
                    .unwrap_or_default();
                let outcome = apply_all(db.table_mut(cache_name)?, &out, &mut changes)?;
                state.cache_changes.insert(cache_name.clone(), changes);
                let spent = db.stats().snapshot().since(&before);
                state.report.cache_update = state.report.cache_update.merge(spent);
                state.report.cache_outcome = merge_outcomes(state.report.cache_outcome, outcome);
                if let Some(trace) = state.report.trace.as_mut() {
                    trace.operators.push(OpTrace {
                        path: path.clone(),
                        op: op_label(node).to_string(),
                        phase: TracePhase::CacheApply,
                        diffs_in: out.iter().map(|d| d.len() as u64).sum(),
                        diffs_out: 0,
                        dummies: outcome.dummies,
                        accesses: spent,
                    });
                }
                // Checkpoint after the cache-boundary apply, so access
                // faults and round budgets observe cache-maintenance
                // accesses too — not just the propagation spine.
                if state.faults.wants_access() {
                    state
                        .faults
                        .on_access(db.stats().snapshot().since(&state.round0).total())?;
                }
            }
        }
        Ok(out)
    }
}

struct RoundState<'r> {
    net: HashMap<String, TableChanges>,
    base_diffs: HashMap<String, Vec<DiffInstance>>,
    cache_changes: HashMap<String, TableChanges>,
    report: &'r mut MaintenanceReport,
    faults: &'r FaultState,
    rescans: &'r AtomicU64,
    round0: StatsSnapshot,
    shared: Option<SharedCtx<'r>>,
}

/// The shared-prefix machinery threaded through one round's walk.
struct SharedCtx<'r> {
    prefixes: &'r SharedPrefixes,
    cache: &'r mut SharedDiffCache,
    /// Designated path → this round's cache key (structural
    /// fingerprint ⊕ pending-net digest), precomputed at round start.
    round_keys: HashMap<PathId, String>,
}

fn merge_outcomes(a: ApplyOutcome, b: ApplyOutcome) -> ApplyOutcome {
    ApplyOutcome {
        inserted: a.inserted + b.inserted,
        deleted: a.deleted + b.deleted,
        updated: a.updated + b.updated,
        dummies: a.dummies + b.dummies,
    }
}

/// Create the base-table secondary indexes the diff-driven probe paths
/// use: join/semijoin/antijoin key columns and grouping columns, mapped
/// to their origin tables via provenance. The paper's experimental
/// setup gives these to the tuple-based baseline for free (and the
/// ID-based engine uses them for insert diffs, which "incur the same
/// base table accesses as tuple-based approaches" — Section 9); index
/// maintenance is never charged, matching the paper.
///
/// # Errors
/// Unknown tables.
pub fn ensure_probe_indexes(db: &mut Database, plan: &Plan) -> Result<()> {
    let mut wanted: Vec<(String, Vec<usize>)> = Vec::new();
    collect_probe_sets(plan, &mut wanted);
    for (table, cols) in wanted {
        if db.has_table(&table) {
            db.table_mut(&table)?.create_index_positions(cols);
        }
    }
    Ok(())
}

fn collect_probe_sets(node: &Plan, out: &mut Vec<(String, Vec<usize>)>) {
    let mut add_side = |side: &Plan, cols: &[usize]| {
        let out_cols = side.output_cols();
        let scans: HashMap<&str, &str> = side.scans().into_iter().collect();
        // Group the probed columns per origin table; only usable when
        // every column maps to the same scan (the push-down case).
        let mut per_alias: HashMap<String, Vec<usize>> = HashMap::new();
        for &c in cols {
            if let Some(o) = &out_cols[c].origin {
                per_alias
                    .entry(o.alias.clone())
                    .or_default()
                    .push(o.column);
            }
        }
        for (alias, mut base_cols) in per_alias {
            if let Some(table) = scans.get(alias.as_str()) {
                base_cols.sort_unstable();
                base_cols.dedup();
                out.push((table.to_string(), base_cols));
            }
        }
    };
    match node {
        Plan::Join {
            left, right, on, ..
        }
        | Plan::LeftOuterJoin {
            left, right, on, ..
        }
        | Plan::SemiJoin {
            left, right, on, ..
        }
        | Plan::AntiJoin {
            left, right, on, ..
        } => {
            let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
            let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
            add_side(left, &lcols);
            add_side(right, &rcols);
        }
        Plan::GroupBy { input, keys, .. } => {
            add_side(input, keys);
        }
        _ => {}
    }
    for c in node.children() {
        collect_probe_sets(c, out);
    }
}

/// Check that an existing table can keep serving as the storage of
/// `plan`: same arity and same key *positions*. Column names are
/// deliberately ignored — a plan rewrite that swaps a subtree for a
/// backing-table scan renames columns (scan-alias prefixes) without
/// moving them.
///
/// # Errors
/// [`Error::Plan`] on a shape mismatch; inference failures.
fn ensure_storage_shape(db: &Database, name: &str, plan: &Plan) -> Result<()> {
    let want = view_schema(db, plan)?;
    let have = db.table(name)?.schema();
    if have.arity() == want.arity() && have.key() == want.key() {
        Ok(())
    } else {
        Err(Error::Plan(format!(
            "table `{name}` (arity {}, key {:?}) cannot store the rewritten plan \
             (arity {}, key {:?})",
            have.arity(),
            have.key(),
            want.arity(),
            want.key()
        )))
    }
}

/// Gather the schemas of the base tables scanned by `plan`.
///
/// # Errors
/// Unknown tables.
pub fn base_catalog(db: &Database, plan: &Plan) -> Result<HashMap<String, Schema>> {
    let mut m = HashMap::new();
    for (_, table) in plan.scans() {
        if !m.contains_key(table) {
            m.insert(table.to_string(), db.table(table)?.schema().clone());
        }
    }
    Ok(m)
}

/// Derive the storage schema of the (ID-extended) view plan — exposed
/// for tests and tooling.
///
/// # Errors
/// Same conditions as [`idivm_exec::view_schema`].
pub fn storage_schema(db: &Database, plan: &Plan) -> Result<Schema> {
    view_schema(db, plan)
}
