//! Deterministic fault injection for maintenance rounds.
//!
//! A [`FaultPlan`] arms exactly one *failpoint*: fire a typed
//! [`Error::Injected`] at the k-th operator entry, the k-th APPLY call,
//! or the first serial checkpoint where the round's cumulative access
//! count reaches k. The engines consult the plan at fixed points on
//! their **serial** walk (operator entries, APPLY boundaries — the same
//! places the trace layer attributes accesses), so a given plan fires
//! at the same logical point for any `ParallelConfig` thread count:
//! access counts are bit-identical across thread counts, and the
//! operator/apply orders are properties of the plan walk, not of
//! scheduling.
//!
//! Like [`TraceConfig`](crate::trace::TraceConfig), a disabled plan
//! (the default) costs nothing per tuple: every hook starts with a
//! `Copy` field comparison and returns immediately.
//!
//! This is test/chaos machinery. [`Error::Injected`] is never produced
//! organically; the fault-sweep suite uses it to prove that *any*
//! mid-round error triggers a bit-identical rollback (see
//! `Database::begin_round`/`abort_round` in `idivm-reldb`).

use idivm_types::{Error, Result};
use std::cell::Cell;

/// Where in the round a [`FaultPlan`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// At the first serial checkpoint where the round's cumulative
    /// access count (tuple accesses + index lookups since round start)
    /// is ≥ `at`. Checkpoints sit at operator and APPLY boundaries, so
    /// several `at` values can resolve to the same firing point — the
    /// point itself is deterministic and thread-stable.
    Access,
    /// On entry to the `at`-th (0-based) operator of the serial plan
    /// walk — before its rule evaluates or its phase runs.
    Operator,
    /// On the `at`-th (0-based) APPLY call (cache or view), before any
    /// diff lands.
    Apply,
}

impl FaultSite {
    /// Stable lowercase label (error messages, JSON).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Access => "access",
            FaultSite::Operator => "operator",
            FaultSite::Apply => "apply",
        }
    }
}

/// A deterministic fault to inject into maintenance rounds. `Copy`, so
/// it rides on [`IvmOptions`](crate::IvmOptions) like the other knobs.
/// Disabled by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Armed failpoint; `None` disables injection entirely.
    pub site: Option<FaultSite>,
    /// The failpoint index k (see [`FaultSite`] for each site's unit).
    pub at: u64,
    /// Sweep-identification seed, echoed in the injected error message
    /// so a failing differential run names the exact scenario.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// No injection (the default) — zero per-tuple cost.
    pub fn disabled() -> Self {
        FaultPlan {
            site: None,
            at: 0,
            seed: 0,
        }
    }

    /// Fire on the `k`-th operator entry.
    pub fn at_operator(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Operator),
            at: k,
            seed,
        }
    }

    /// Fire on the `k`-th APPLY call.
    pub fn at_apply(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Apply),
            at: k,
            seed,
        }
    }

    /// Fire once the round has spent `k` accesses (at the next serial
    /// checkpoint).
    pub fn at_access(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Access),
            at: k,
            seed,
        }
    }

    /// True iff some failpoint is armed.
    pub fn enabled(&self) -> bool {
        self.site.is_some()
    }
}

/// Per-round firing state: the plan plus serial counters. Engines
/// create one at round start and call the hooks from the serial walk.
/// (`Cell`, not atomics: every hook site is on the single-threaded
/// spine of the round, by construction.)
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    operators: Cell<u64>,
    applies: Cell<u64>,
    fired: Cell<bool>,
}

impl FaultState {
    /// Fresh counters for one round under `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            operators: Cell::new(0),
            applies: Cell::new(0),
            fired: Cell::new(false),
        }
    }

    /// True iff some failpoint is armed (engines may skip checkpoint
    /// bookkeeping entirely when not).
    pub fn enabled(&self) -> bool {
        self.plan.enabled()
    }

    /// True iff the plan needs cumulative access counts — lets engines
    /// skip the stats snapshot at checkpoints otherwise.
    pub fn wants_access(&self) -> bool {
        self.plan.site == Some(FaultSite::Access)
    }

    fn fire(&self, what: &str) -> Error {
        self.fired.set(true);
        let site = self.plan.site.map_or("?", FaultSite::label);
        Error::Injected(format!(
            "fault[site={site}, at={}, seed={}] fired at {what}",
            self.plan.at, self.plan.seed
        ))
    }

    /// Hook: entry to an operator on the serial walk.
    ///
    /// # Errors
    /// [`Error::Injected`] when this is the armed operator entry.
    pub fn on_operator(&self, label: &str) -> Result<()> {
        if self.plan.site != Some(FaultSite::Operator) || self.fired.get() {
            return Ok(());
        }
        let n = self.operators.get();
        self.operators.set(n + 1);
        if n == self.plan.at {
            return Err(self.fire(&format!("operator entry {n} (`{label}`)")));
        }
        Ok(())
    }

    /// Hook: an APPLY call (cache or view), before any diff lands.
    ///
    /// # Errors
    /// [`Error::Injected`] when this is the armed APPLY call.
    pub fn on_apply(&self, target: &str) -> Result<()> {
        if self.plan.site != Some(FaultSite::Apply) || self.fired.get() {
            return Ok(());
        }
        let n = self.applies.get();
        self.applies.set(n + 1);
        if n == self.plan.at {
            return Err(self.fire(&format!("apply call {n} (target `{target}`)")));
        }
        Ok(())
    }

    /// Hook: serial checkpoint carrying the round's cumulative access
    /// count. Callers gate the (mildly costly) snapshot on
    /// [`FaultState::wants_access`].
    ///
    /// # Errors
    /// [`Error::Injected`] at the first checkpoint where `cumulative`
    /// reaches the armed threshold.
    pub fn on_access(&self, cumulative: u64) -> Result<()> {
        if self.plan.site != Some(FaultSite::Access) || self.fired.get() {
            return Ok(());
        }
        if cumulative >= self.plan.at {
            return Err(self.fire(&format!("access checkpoint (cumulative {cumulative})")));
        }
        Ok(())
    }

    /// Number of operator entries seen so far (sweep sizing).
    pub fn operators_seen(&self) -> u64 {
        self.operators.get()
    }

    /// Number of APPLY calls seen so far (sweep sizing).
    pub fn applies_seen(&self) -> u64 {
        self.applies.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let s = FaultState::new(FaultPlan::disabled());
        assert!(!s.enabled());
        for i in 0..100 {
            s.on_operator("x").unwrap();
            s.on_apply("v").unwrap();
            s.on_access(i).unwrap();
        }
    }

    #[test]
    fn operator_site_fires_exactly_at_k() {
        let s = FaultState::new(FaultPlan::at_operator(2, 42));
        s.on_operator("a").unwrap();
        s.on_apply("v").unwrap(); // other sites untouched
        s.on_operator("b").unwrap();
        let err = s.on_operator("c").unwrap_err();
        match err {
            Error::Injected(m) => {
                assert!(m.contains("seed=42"), "{m}");
                assert!(m.contains("operator entry 2"), "{m}");
            }
            other => panic!("expected Injected, got {other:?}"),
        }
        // Fired once; later hooks are inert.
        s.on_operator("d").unwrap();
    }

    #[test]
    fn apply_site_counts_applies_only() {
        let s = FaultState::new(FaultPlan::at_apply(0, 7));
        s.on_operator("a").unwrap();
        assert!(matches!(s.on_apply("V"), Err(Error::Injected(_))));
    }

    #[test]
    fn access_site_fires_at_first_checkpoint_reaching_k() {
        let s = FaultState::new(FaultPlan::at_access(10, 1));
        assert!(s.wants_access());
        s.on_access(3).unwrap();
        s.on_access(9).unwrap();
        assert!(matches!(s.on_access(14), Err(Error::Injected(_))));
        s.on_access(20).unwrap(); // single-shot
    }
}
