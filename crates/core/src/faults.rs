//! Deterministic fault injection for maintenance rounds.
//!
//! A [`FaultPlan`] arms exactly one *failpoint*: fire a typed error at
//! the k-th operator entry, the k-th APPLY call, the first serial
//! checkpoint where the round's cumulative access count reaches k, or
//! (content-dependent) at round start when the pending diff batch
//! contains a *poison key*. The engines consult the plan at fixed
//! points on their **serial** walk (operator entries, APPLY boundaries
//! — the same places the trace layer attributes accesses), so a given
//! plan fires at the same logical point for any `ParallelConfig`
//! thread count: access counts are bit-identical across thread counts,
//! and the operator/apply orders are properties of the plan walk, not
//! of scheduling.
//!
//! Faults carry a [`FaultKind`] classification: [`FaultKind::Transient`]
//! fires [`Error::Injected`] (retryable; optionally healing after a
//! fixed number of attempts via [`FaultPlan::heal_after`]) and
//! [`FaultKind::Permanent`] fires [`Error::Poison`] (deterministic for
//! a given input; a supervisor must bisect and quarantine instead of
//! retrying — see `idivm_core::supervisor`).
//!
//! [`FaultState`] also enforces the opt-in per-round access budget
//! ([`RoundBudget`]): at the same serial checkpoints, a round whose
//! cumulative access count exceeds the budget is aborted with the
//! retryable [`Error::Budget`], rolling back through the atomic-round
//! undo path like any other mid-round error.
//!
//! Like [`TraceConfig`](crate::trace::TraceConfig), a disabled plan
//! with no budget (the default) costs nothing per tuple: every hook
//! starts with a `Copy` field comparison and returns immediately.
//!
//! This is test/chaos machinery. [`Error::Injected`] / [`Error::Poison`]
//! are never produced organically; the fault-sweep suite uses them to
//! prove that *any* mid-round error triggers a bit-identical rollback
//! (see `Database::begin_round`/`abort_round` in `idivm-reldb`).

use idivm_exec::partition::stable_hash_key;
use idivm_reldb::TableChanges;
use idivm_types::{Error, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Where in the round a [`FaultPlan`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// At the first serial checkpoint where the round's cumulative
    /// access count (tuple accesses + index lookups since round start)
    /// is ≥ `at`. Checkpoints sit at operator and APPLY boundaries, so
    /// several `at` values can resolve to the same firing point — the
    /// point itself is deterministic and thread-stable.
    Access,
    /// On entry to the `at`-th (0-based) operator of the serial plan
    /// walk — before its rule evaluates or its phase runs.
    Operator,
    /// On the `at`-th (0-based) APPLY call (cache or view), before any
    /// diff lands.
    Apply,
    /// Content-dependent: at round start, when the folded diff batch
    /// contains at least one *poison key* — a key whose seeded stable
    /// hash satisfies `(hash ^ seed) % at == 0` (`at` acts as the
    /// poison modulus: roughly one key in `at` is poison). The firing
    /// point is before any propagation, so the round rolls back
    /// trivially; the same predicate lets a supervisor bisect down to
    /// the exact poison set.
    Diff,
    /// Ingest path: on the `at`-th (0-based) event enqueue into the
    /// bounded CDC queue. Fires **before** the event is buffered, so
    /// the producer still owns it (retryable — nothing is lost).
    Enqueue,
    /// Ingest path: on the `at`-th (0-based) micro-batch cut decision,
    /// before any admitted event touches the database. The buffered
    /// batch stays buffered (retryable).
    BatchCut,
    /// Ingest path: on the `at`-th (0-based) wire-event decode, before
    /// validation. Distinct from a *malformed* event (which is
    /// dead-lettered): an injected decode fault models the decoder
    /// itself failing and leaves the raw event pending (retryable).
    Decode,
    /// Durability path: on the `at`-th (0-based) WAL record append,
    /// **before** the record's bytes reach the log file. The crash
    /// harness interprets a fault here as a kill mid-append: a seeded
    /// prefix of the record may land on disk (a torn tail for recovery
    /// to truncate), but never the whole record.
    WalAppend,
    /// Durability path: on the `at`-th (0-based) WAL fsync. The crash
    /// harness interprets a fault here as a kill after the OS buffered
    /// the appended bytes but before they were made durable: recovery
    /// sees the log truncated back to the last synced offset.
    WalFsync,
    /// Durability path: on the `at`-th (0-based) checkpoint attempt,
    /// before the atomic rename publishes it. A partial temp file may
    /// exist; the previous checkpoint and the WAL stay authoritative.
    Checkpoint,
}

impl FaultSite {
    /// Stable lowercase label (error messages, JSON).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Access => "access",
            FaultSite::Operator => "operator",
            FaultSite::Apply => "apply",
            FaultSite::Diff => "diff",
            FaultSite::Enqueue => "enqueue",
            FaultSite::BatchCut => "batch_cut",
            FaultSite::Decode => "decode",
            FaultSite::WalAppend => "wal_append",
            FaultSite::WalFsync => "wal_fsync",
            FaultSite::Checkpoint => "checkpoint",
        }
    }
}

/// Transient-vs-permanent classification of an armed fault — decides
/// which typed error the failpoint produces and therefore how a
/// supervisor reacts (retry vs bisect-and-quarantine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKind {
    /// Fires [`Error::Injected`] (retryable). The default.
    #[default]
    Transient,
    /// Fires [`Error::Poison`] (permanent: recurs on every retry of
    /// the same input).
    Permanent,
}

/// A deterministic fault to inject into maintenance rounds. `Copy`, so
/// it rides on [`IvmOptions`](crate::IvmOptions) like the other knobs.
/// Disabled by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Armed failpoint; `None` disables injection entirely.
    pub site: Option<FaultSite>,
    /// The failpoint index k (see [`FaultSite`] for each site's unit).
    pub at: u64,
    /// Sweep-identification seed, echoed in the injected error message
    /// so a failing differential run names the exact scenario. Also
    /// salts the [`FaultSite::Diff`] poison predicate.
    pub seed: u64,
    /// Transient vs permanent classification (which error fires).
    pub kind: FaultKind,
    /// For transient faults: the number of attempts after which the
    /// fault *heals* — [`FaultPlan::for_attempt`] returns a disabled
    /// plan once `attempt >= heal_after`. `0` (the default) means the
    /// fault never heals. Models transient conditions that clear with
    /// time (the supervisor's backoff ladder maps attempts to virtual
    /// time).
    pub heal_after: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// No injection (the default) — zero per-tuple cost.
    pub fn disabled() -> Self {
        FaultPlan {
            site: None,
            at: 0,
            seed: 0,
            kind: FaultKind::Transient,
            heal_after: 0,
        }
    }

    /// Fire on the `k`-th operator entry.
    pub fn at_operator(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Operator),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire on the `k`-th APPLY call.
    pub fn at_apply(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Apply),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire once the round has spent `k` accesses (at the next serial
    /// checkpoint).
    pub fn at_access(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Access),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire at round start when the pending batch contains a poison
    /// key (roughly one key in `modulus`, selected by seeded stable
    /// hash — see [`FaultSite::Diff`]). `modulus` is clamped to ≥ 1.
    pub fn at_diff(modulus: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Diff),
            at: modulus.max(1),
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire on the `k`-th event enqueue (ingest path).
    pub fn at_enqueue(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Enqueue),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire on the `k`-th micro-batch cut decision (ingest path).
    pub fn at_batch_cut(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::BatchCut),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire on the `k`-th wire-event decode (ingest path).
    pub fn at_decode(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Decode),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire on the `k`-th WAL record append (durability path).
    pub fn at_wal_append(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::WalAppend),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire on the `k`-th WAL fsync (durability path).
    pub fn at_wal_fsync(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::WalFsync),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    /// Fire on the `k`-th checkpoint attempt (durability path).
    pub fn at_checkpoint(k: u64, seed: u64) -> Self {
        FaultPlan {
            site: Some(FaultSite::Checkpoint),
            at: k,
            ..FaultPlan::disabled().with_seed(seed)
        }
    }

    fn with_seed(self, seed: u64) -> Self {
        FaultPlan { seed, ..self }
    }

    /// This plan, reclassified permanent (fires [`Error::Poison`]).
    pub fn permanent(self) -> Self {
        FaultPlan {
            kind: FaultKind::Permanent,
            ..self
        }
    }

    /// This plan, healing after `attempts` attempts (transient faults
    /// only — see [`FaultPlan::heal_after`]).
    pub fn healing_after(self, attempts: u64) -> Self {
        FaultPlan {
            heal_after: attempts,
            ..self
        }
    }

    /// The plan as seen by the 0-based `attempt`-th retry of the same
    /// round: a transient plan with `heal_after > 0` is disabled once
    /// `attempt >= heal_after`; everything else is unchanged.
    pub fn for_attempt(self, attempt: u64) -> Self {
        if self.kind == FaultKind::Transient && self.heal_after > 0 && attempt >= self.heal_after {
            return FaultPlan::disabled();
        }
        self
    }

    /// True iff some failpoint is armed.
    pub fn enabled(&self) -> bool {
        self.site.is_some()
    }

    /// The [`FaultSite::Diff`] poison predicate: true iff `key` is
    /// poison under this plan's modulus and seed. Deterministic and
    /// thread-stable (FNV-1a over the canonical key encoding). Public
    /// so supervisors and tests can predict the exact poison set.
    pub fn is_poison_key(&self, key: &idivm_types::Key) -> bool {
        self.site == Some(FaultSite::Diff)
            && (stable_hash_key(key) ^ self.seed).is_multiple_of(self.at.max(1))
    }
}

/// Opt-in per-round access-count budget, enforced on the same serial
/// checkpoints as [`FaultSite::Access`]. `Copy`, disabled by default.
/// A round whose cumulative access count (tuple accesses + index
/// lookups since round start) *exceeds* `max_accesses` aborts with the
/// retryable [`Error::Budget`] and rolls back through the atomic-round
/// undo path — bounding the worst-case work any single round can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundBudget {
    /// Maximum accesses one round may spend; `None` disables the
    /// budget entirely (zero checkpoint cost).
    pub max_accesses: Option<u64>,
    /// Total **virtual-tick deadline** for one supervised run: the sum
    /// of backoff delays the retry ladder may accumulate before the
    /// supervisor abandons incremental maintenance and escalates to
    /// the recompute path with a typed [`Error::Budget`] cause.
    /// Enforced by `MaintenanceSupervisor`, not at engine checkpoints
    /// — it bounds the *ladder*, not one round, so a pathological
    /// retry/backoff schedule cannot stall a firehose tick. `None`
    /// (the default) disables the deadline.
    pub max_ticks: Option<u64>,
}

impl RoundBudget {
    /// No budget (the default).
    pub fn unlimited() -> Self {
        RoundBudget {
            max_accesses: None,
            max_ticks: None,
        }
    }

    /// Cap one round at `max` accesses.
    pub fn capped(max: u64) -> Self {
        RoundBudget {
            max_accesses: Some(max),
            max_ticks: None,
        }
    }

    /// This budget, with a total virtual-tick deadline on the
    /// supervised retry ladder (see [`RoundBudget::max_ticks`]).
    pub fn with_max_ticks(self, ticks: u64) -> Self {
        RoundBudget {
            max_ticks: Some(ticks),
            ..self
        }
    }

    /// True iff an **access** cap is set (the checkpoint-enforced
    /// budget — engines use this to gate checkpoint bookkeeping). The
    /// virtual-tick deadline is supervisor-level and costs engines
    /// nothing, so it does not count here.
    pub fn enabled(&self) -> bool {
        self.max_accesses.is_some()
    }
}

/// Per-round firing state: the plan plus serial counters. Engines
/// create one at round start and call the hooks from the serial walk.
/// (Relaxed atomics, not `Cell`: every hook site still sits on the
/// single-threaded spine of the round — operator entries, APPLY
/// boundaries, and the serial dirty-group rescan loop — but the state
/// must be `Sync` so rules can reach the mid-rescan failpoint through
/// a shared `RuleCtx`.)
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    budget: RoundBudget,
    operators: AtomicU64,
    applies: AtomicU64,
    enqueues: AtomicU64,
    batch_cuts: AtomicU64,
    decodes: AtomicU64,
    wal_appends: AtomicU64,
    wal_fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    fired: AtomicBool,
    budget_fired: AtomicBool,
}

impl FaultState {
    /// Fresh counters for one round under `plan`, no budget.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState::with_budget(plan, RoundBudget::unlimited())
    }

    /// Fresh counters for one round under `plan` and `budget`.
    pub fn with_budget(plan: FaultPlan, budget: RoundBudget) -> Self {
        FaultState {
            plan,
            budget,
            operators: AtomicU64::new(0),
            applies: AtomicU64::new(0),
            enqueues: AtomicU64::new(0),
            batch_cuts: AtomicU64::new(0),
            decodes: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            budget_fired: AtomicBool::new(false),
        }
    }

    /// True iff some failpoint is armed (engines may skip checkpoint
    /// bookkeeping entirely when not). A budget alone also counts:
    /// its checkpoints ride the same spine.
    pub fn enabled(&self) -> bool {
        self.plan.enabled() || self.budget.enabled()
    }

    /// True iff the hooks need cumulative access counts — lets engines
    /// skip the stats snapshot at checkpoints otherwise. True for an
    /// armed [`FaultSite::Access`] plan and for any armed budget.
    pub fn wants_access(&self) -> bool {
        self.plan.site == Some(FaultSite::Access) || self.budget.enabled()
    }

    fn fire(&self, what: &str) -> Error {
        self.fired.store(true, Ordering::Relaxed);
        let site = self.plan.site.map_or("?", FaultSite::label);
        let msg = format!(
            "fault[site={site}, at={}, seed={}] fired at {what}",
            self.plan.at, self.plan.seed
        );
        match self.plan.kind {
            FaultKind::Transient => Error::Injected(msg),
            FaultKind::Permanent => Error::Poison(msg),
        }
    }

    /// Hook: round start, with the folded diff batch the round is
    /// about to propagate. Fires the content-dependent
    /// [`FaultSite::Diff`] failpoint when the batch contains a poison
    /// key (tables and keys scanned in sorted order so the named key
    /// is deterministic).
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when a poison key is
    /// present.
    pub fn on_batch(&self, net: &HashMap<String, TableChanges>) -> Result<()> {
        if self.plan.site != Some(FaultSite::Diff) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let mut tables: Vec<&String> = net.keys().collect();
        tables.sort();
        for t in tables {
            let mut keys: Vec<_> = net[t].keys().collect();
            keys.sort();
            for k in keys {
                if self.plan.is_poison_key(k) {
                    return Err(self.fire(&format!("diff batch (poison key {k:?} in `{t}`)")));
                }
            }
        }
        Ok(())
    }

    /// Hook: entry to an operator on the serial walk.
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// operator entry.
    pub fn on_operator(&self, label: &str) -> Result<()> {
        if self.plan.site != Some(FaultSite::Operator) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.operators.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("operator entry {n} (`{label}`)")));
        }
        Ok(())
    }

    /// Hook: an APPLY call (cache or view), before any diff lands.
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// APPLY call.
    pub fn on_apply(&self, target: &str) -> Result<()> {
        if self.plan.site != Some(FaultSite::Apply) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.applies.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("apply call {n} (target `{target}`)")));
        }
        Ok(())
    }

    /// Hook: serial checkpoint carrying the round's cumulative access
    /// count. Callers gate the (mildly costly) snapshot on
    /// [`FaultState::wants_access`]. Checks the armed access fault
    /// first, then the budget.
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] at the first checkpoint
    /// where `cumulative` reaches the armed threshold;
    /// [`Error::Budget`] at the first checkpoint where `cumulative`
    /// exceeds the budget.
    pub fn on_access(&self, cumulative: u64) -> Result<()> {
        if self.plan.site == Some(FaultSite::Access)
            && !self.fired.load(Ordering::Relaxed)
            && cumulative >= self.plan.at
        {
            return Err(self.fire(&format!("access checkpoint (cumulative {cumulative})")));
        }
        if let Some(max) = self.budget.max_accesses {
            if cumulative > max && !self.budget_fired.load(Ordering::Relaxed) {
                self.budget_fired.store(true, Ordering::Relaxed);
                return Err(Error::Budget(format!(
                    "round spent {cumulative} accesses of a {max}-access budget"
                )));
            }
        }
        Ok(())
    }

    /// Hook: an event enqueue into the ingest queue, **before** the
    /// event is buffered (the producer still owns it on `Err`).
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// enqueue.
    pub fn on_enqueue(&self) -> Result<()> {
        if self.plan.site != Some(FaultSite::Enqueue) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.enqueues.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("enqueue {n}")));
        }
        Ok(())
    }

    /// Hook: a micro-batch cut decision, before any admitted event
    /// touches the database (the batch stays buffered on `Err`).
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// cut.
    pub fn on_batch_cut(&self, pending: usize) -> Result<()> {
        if self.plan.site != Some(FaultSite::BatchCut) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.batch_cuts.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("batch cut {n} ({pending} events pending)")));
        }
        Ok(())
    }

    /// Hook: a wire-event decode, before validation (the raw event
    /// stays pending on `Err` — this is the decoder failing, not the
    /// event being malformed).
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// decode.
    pub fn on_decode(&self) -> Result<()> {
        if self.plan.site != Some(FaultSite::Decode) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.decodes.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("decode {n}")));
        }
        Ok(())
    }

    /// Hook: a WAL record append, before any byte of the record lands.
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// append.
    pub fn on_wal_append(&self, lsn: u64) -> Result<()> {
        if self.plan.site != Some(FaultSite::WalAppend) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.wal_appends.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("wal append {n} (lsn {lsn})")));
        }
        Ok(())
    }

    /// Hook: a WAL fsync, before the flush reaches the device.
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// fsync.
    pub fn on_wal_fsync(&self) -> Result<()> {
        if self.plan.site != Some(FaultSite::WalFsync) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("wal fsync {n}")));
        }
        Ok(())
    }

    /// Hook: a checkpoint attempt, before the atomic rename publishes
    /// the snapshot.
    ///
    /// # Errors
    /// [`Error::Injected`] / [`Error::Poison`] when this is the armed
    /// checkpoint.
    pub fn on_checkpoint(&self, last_lsn: u64) -> Result<()> {
        if self.plan.site != Some(FaultSite::Checkpoint) || self.fired.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = self.checkpoints.fetch_add(1, Ordering::Relaxed);
        if n == self.plan.at {
            return Err(self.fire(&format!("checkpoint {n} (last lsn {last_lsn})")));
        }
        Ok(())
    }

    /// Number of operator entries seen so far (sweep sizing).
    pub fn operators_seen(&self) -> u64 {
        self.operators.load(Ordering::Relaxed)
    }

    /// Number of APPLY calls seen so far (sweep sizing).
    pub fn applies_seen(&self) -> u64 {
        self.applies.load(Ordering::Relaxed)
    }

    /// The armed plan's seed. The durability layer folds it into the
    /// torn-prefix length when a kill is simulated mid-write, so a
    /// seeded sweep explores different tear points deterministically.
    pub fn seed(&self) -> u64 {
        self.plan.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_reldb::NetChange;
    use idivm_types::{Key, Row, Value};

    #[test]
    fn disabled_plan_never_fires() {
        let s = FaultState::new(FaultPlan::disabled());
        assert!(!s.enabled());
        assert!(!s.wants_access());
        for i in 0..100 {
            s.on_operator("x").unwrap();
            s.on_apply("v").unwrap();
            s.on_access(i).unwrap();
        }
        s.on_batch(&HashMap::new()).unwrap();
    }

    #[test]
    fn operator_site_fires_exactly_at_k() {
        let s = FaultState::new(FaultPlan::at_operator(2, 42));
        s.on_operator("a").unwrap();
        s.on_apply("v").unwrap(); // other sites untouched
        s.on_operator("b").unwrap();
        let err = s.on_operator("c").unwrap_err();
        match err {
            Error::Injected(m) => {
                assert!(m.contains("seed=42"), "{m}");
                assert!(m.contains("operator entry 2"), "{m}");
            }
            other => panic!("expected Injected, got {other:?}"),
        }
        // Fired once; later hooks are inert.
        s.on_operator("d").unwrap();
    }

    #[test]
    fn apply_site_counts_applies_only() {
        let s = FaultState::new(FaultPlan::at_apply(0, 7));
        s.on_operator("a").unwrap();
        assert!(matches!(s.on_apply("V"), Err(Error::Injected(_))));
    }

    #[test]
    fn access_site_fires_at_first_checkpoint_reaching_k() {
        let s = FaultState::new(FaultPlan::at_access(10, 1));
        assert!(s.wants_access());
        s.on_access(3).unwrap();
        s.on_access(9).unwrap();
        assert!(matches!(s.on_access(14), Err(Error::Injected(_))));
        s.on_access(20).unwrap(); // single-shot
    }

    #[test]
    fn permanent_kind_fires_poison() {
        let s = FaultState::new(FaultPlan::at_operator(0, 9).permanent());
        assert!(matches!(s.on_operator("a"), Err(Error::Poison(_))));
    }

    #[test]
    fn healing_plan_disables_after_attempts() {
        let p = FaultPlan::at_operator(0, 9).healing_after(2);
        assert!(p.for_attempt(0).enabled());
        assert!(p.for_attempt(1).enabled());
        assert!(!p.for_attempt(2).enabled());
        // Permanent plans never heal.
        let p = FaultPlan::at_operator(0, 9).permanent().healing_after(2);
        assert!(p.for_attempt(5).enabled());
        // heal_after = 0 means never heals.
        let p = FaultPlan::at_operator(0, 9);
        assert!(p.for_attempt(u64::MAX).enabled());
    }

    fn batch_of(keys: &[i64]) -> HashMap<String, TableChanges> {
        let mut tc = TableChanges::new();
        for &k in keys {
            tc.insert(
                Key(vec![Value::Int(k)]),
                NetChange::Inserted {
                    post: Row::new(vec![Value::Int(k)]),
                },
            );
        }
        let mut net = HashMap::new();
        net.insert("parts".to_string(), tc);
        net
    }

    #[test]
    fn diff_site_fires_only_on_poison_keys() {
        let plan = FaultPlan::at_diff(3, 2015);
        // Find one poison and one healthy key under this plan.
        let poison: Vec<i64> = (0..100)
            .filter(|&k| plan.is_poison_key(&Key(vec![Value::Int(k)])))
            .collect();
        let healthy: Vec<i64> = (0..100)
            .filter(|&k| !plan.is_poison_key(&Key(vec![Value::Int(k)])))
            .collect();
        assert!(!poison.is_empty() && !healthy.is_empty());

        let s = FaultState::new(plan);
        s.on_batch(&batch_of(&healthy)).unwrap();
        let err = FaultState::new(plan).on_batch(&batch_of(&poison)).unwrap_err();
        assert!(matches!(err, Error::Injected(_)), "{err}");
        let err = FaultState::new(plan.permanent())
            .on_batch(&batch_of(&poison))
            .unwrap_err();
        assert!(matches!(err, Error::Poison(_)), "{err}");
        // Mixed batches fire too (any poison key taints the round).
        let mut mixed: Vec<i64> = healthy[..2].to_vec();
        mixed.push(poison[0]);
        assert!(FaultState::new(plan).on_batch(&batch_of(&mixed)).is_err());
    }

    #[test]
    fn ingest_sites_fire_on_their_own_counters() {
        let s = FaultState::new(FaultPlan::at_enqueue(1, 8));
        s.on_decode().unwrap();
        s.on_batch_cut(3).unwrap(); // other ingest sites untouched
        s.on_enqueue().unwrap();
        let err = s.on_enqueue().unwrap_err();
        assert!(matches!(err, Error::Injected(_)), "{err}");
        assert!(err.to_string().contains("site=enqueue"), "{err}");
        s.on_enqueue().unwrap(); // single-shot

        let s = FaultState::new(FaultPlan::at_batch_cut(0, 8));
        let err = s.on_batch_cut(5).unwrap_err();
        assert!(err.to_string().contains("batch cut 0 (5 events pending)"), "{err}");

        let s = FaultState::new(FaultPlan::at_decode(0, 8).permanent());
        assert!(matches!(s.on_decode(), Err(Error::Poison(_))));
    }

    #[test]
    fn durability_sites_fire_on_their_own_counters() {
        let s = FaultState::new(FaultPlan::at_wal_append(1, 77));
        s.on_wal_fsync().unwrap();
        s.on_checkpoint(0).unwrap(); // other durability sites untouched
        s.on_wal_append(5).unwrap();
        let err = s.on_wal_append(6).unwrap_err();
        assert!(err.to_string().contains("site=wal_append"), "{err}");
        assert!(err.to_string().contains("lsn 6"), "{err}");
        s.on_wal_append(7).unwrap(); // single-shot

        let s = FaultState::new(FaultPlan::at_wal_fsync(0, 77));
        assert!(matches!(s.on_wal_fsync(), Err(Error::Injected(_))));

        let s = FaultState::new(FaultPlan::at_checkpoint(0, 77).permanent());
        let err = s.on_checkpoint(9).unwrap_err();
        assert!(matches!(err, Error::Poison(_)), "{err}");
        assert!(err.to_string().contains("last lsn 9"), "{err}");
        assert_eq!(FaultSite::WalAppend.label(), "wal_append");
        assert_eq!(FaultSite::WalFsync.label(), "wal_fsync");
        assert_eq!(FaultSite::Checkpoint.label(), "checkpoint");
    }

    #[test]
    fn max_ticks_is_supervisor_level_not_checkpoint_level() {
        let b = RoundBudget::unlimited().with_max_ticks(100);
        assert_eq!(b.max_ticks, Some(100));
        // No access cap: engines skip checkpoint bookkeeping entirely.
        assert!(!b.enabled());
        let s = FaultState::with_budget(FaultPlan::disabled(), b);
        assert!(!s.enabled());
        assert!(!s.wants_access());
        s.on_access(u64::MAX).unwrap();
        // Composes with an access cap.
        let b = RoundBudget::capped(10).with_max_ticks(100);
        assert!(b.enabled());
        assert_eq!((b.max_accesses, b.max_ticks), (Some(10), Some(100)));
    }

    #[test]
    fn budget_fires_when_exceeded_and_is_retryable() {
        let s = FaultState::with_budget(FaultPlan::disabled(), RoundBudget::capped(10));
        assert!(s.enabled());
        assert!(s.wants_access());
        s.on_access(3).unwrap();
        s.on_access(10).unwrap(); // exactly at budget: fine
        let err = s.on_access(11).unwrap_err();
        assert!(matches!(err, Error::Budget(_)), "{err}");
        assert!(err.retryable());
        s.on_access(99).unwrap(); // single-shot
    }

    #[test]
    fn budget_composes_with_access_fault() {
        // Fault threshold first, then the budget on a later checkpoint.
        let s = FaultState::with_budget(FaultPlan::at_access(5, 1), RoundBudget::capped(8));
        assert!(matches!(s.on_access(6), Err(Error::Injected(_))));
        assert!(matches!(s.on_access(9), Err(Error::Budget(_))));
    }
}
