//! `RelAccess`: counted access paths to arbitrary subviews.
//!
//! Propagation rules reference the data under an operator through the
//! `Input_{l,r}` and `Output` keywords, in pre- or post-state (paper
//! Section 4). Physically that data is
//!
//! * a base table (when the child is a scan),
//! * an intermediate **cache** (when idIVM materialized the subview), or
//! * a *virtual* subview that must be computed on the fly.
//!
//! [`lookup`] is the workhorse: an equality probe on a subview, pushed
//! down through the operators as a **diff-driven index-nested-loop** —
//! probe one side, then chase join keys with index lookups — which is
//! exactly the plan shape the paper's cost model assumes (Appendix A:
//! "for each tuple t of D it executes the subplan σ_c′(E)"). Every base
//! or cache touch goes through the counted paths of `idivm-reldb`, so
//! the paper's access accounting falls out automatically.

use crate::diff::State;
use idivm_algebra::Plan;
use idivm_exec::executor::{
    hash_aggregate, hash_join, hash_left_outer_join, project_row, semi_or_anti,
};
use idivm_reldb::{Database, PreState, TableChanges};
use idivm_types::{Error, Key, Result, Row, Value};
use std::collections::HashMap;

/// Identifies a plan node by the child indices from the root (root =
/// `[]`, left child of root = `[0]`, …).
pub type PathId = Vec<usize>;

/// Everything the access layer needs to resolve a subview.
pub struct AccessCtx<'a> {
    /// The database (base tables in post-state, plus caches and views).
    pub db: &'a Database,
    /// Folded net changes of this maintenance round (pre-state overlay
    /// source for base tables).
    pub base_changes: &'a HashMap<String, TableChanges>,
    /// Materialized subviews: plan path → cache table name. Caches are
    /// assumed already updated (post-state) when consulted.
    pub caches: &'a HashMap<PathId, String>,
    /// Net changes applied to each cache this round (pre-state overlay
    /// source for caches).
    pub cache_changes: &'a HashMap<String, TableChanges>,
}

impl AccessCtx<'_> {
    fn cache_of(&self, path: &[usize]) -> Option<&str> {
        self.caches.get(path).map(String::as_str)
    }
}

/// Full (counted) scan of the subview rooted at `plan` in `state`.
///
/// # Errors
/// Unknown tables or malformed plans.
pub fn scan(ctx: &AccessCtx<'_>, plan: &Plan, path: &PathId, state: State) -> Result<Vec<Row>> {
    if let Some(cache) = ctx.cache_of(path) {
        let table = ctx.db.table(cache)?;
        return Ok(match state {
            State::Post => table.scan(),
            State::Pre => PreState::new(table, ctx.cache_changes.get(cache)).scan(),
        });
    }
    match plan {
        Plan::Scan { table, .. } => {
            let t = ctx.db.table(table)?;
            Ok(match state {
                State::Post => t.scan(),
                State::Pre => PreState::new(t, ctx.base_changes.get(table)).scan(),
            })
        }
        Plan::Select { input, pred } => {
            let rows = scan(ctx, input, &child(path, 0), state)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                if pred.eval_pred(&r)? {
                    out.push(r);
                }
            }
            Ok(out)
        }
        Plan::Project { input, cols } => {
            let rows = scan(ctx, input, &child(path, 0), state)?;
            rows.iter().map(|r| project_row(r, cols)).collect()
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let l = scan(ctx, left, &child(path, 0), state)?;
            let r = scan(ctx, right, &child(path, 1), state)?;
            hash_join(&l, &r, on, residual.as_ref())
        }
        Plan::LeftOuterJoin {
            left,
            right,
            on,
            residual,
        } => {
            let l = scan(ctx, left, &child(path, 0), state)?;
            let r = scan(ctx, right, &child(path, 1), state)?;
            hash_left_outer_join(&l, &r, right.arity(), on, residual.as_ref())
        }
        Plan::SemiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let l = scan(ctx, left, &child(path, 0), state)?;
            let r = scan(ctx, right, &child(path, 1), state)?;
            semi_or_anti(l, &r, on, residual.as_ref(), true)
        }
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let l = scan(ctx, left, &child(path, 0), state)?;
            let r = scan(ctx, right, &child(path, 1), state)?;
            semi_or_anti(l, &r, on, residual.as_ref(), false)
        }
        Plan::UnionAll { left, right } => {
            let mut out = Vec::new();
            for (branch, side, idx) in [(0i64, left, 0usize), (1, right, 1)] {
                for mut row in scan(ctx, side, &child(path, idx), state)? {
                    row.0.push(Value::Int(branch));
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::GroupBy { input, keys, aggs } => {
            let rows = scan(ctx, input, &child(path, 0), state)?;
            hash_aggregate(&rows, keys, aggs)
        }
    }
}

/// Equality probe: rows of the subview whose `cols` equal `probe`.
/// Pushed down to index lookups wherever the operator structure allows;
/// falls back to counted scans otherwise.
///
/// # Errors
/// Unknown tables or malformed plans.
pub fn lookup(
    ctx: &AccessCtx<'_>,
    plan: &Plan,
    path: &PathId,
    state: State,
    cols: &[usize],
    probe: &Key,
) -> Result<Vec<Row>> {
    debug_assert_eq!(cols.len(), probe.arity());
    if cols.is_empty() {
        return scan(ctx, plan, path, state);
    }
    if let Some(cache) = ctx.cache_of(path) {
        let table = ctx.db.table(cache)?;
        return Ok(match state {
            State::Post => table.lookup(cols, probe),
            State::Pre => {
                PreState::new(table, ctx.cache_changes.get(cache)).lookup(cols, probe)
            }
        });
    }
    match plan {
        Plan::Scan { table, .. } => {
            let t = ctx.db.table(table)?;
            Ok(match state {
                State::Post => t.lookup(cols, probe),
                State::Pre => {
                    PreState::new(t, ctx.base_changes.get(table)).lookup(cols, probe)
                }
            })
        }
        Plan::Select { input, pred } => {
            let rows = lookup(ctx, input, &child(path, 0), state, cols, probe)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                if pred.eval_pred(&r)? {
                    out.push(r);
                }
            }
            Ok(out)
        }
        Plan::Project { input, cols: pcols } => {
            // Map probe columns through direct copies.
            let mut mapped = Vec::with_capacity(cols.len());
            for &c in cols {
                match &pcols[c].1 {
                    idivm_algebra::Expr::Col(i) => mapped.push(*i),
                    _ => {
                        // Probe on a computed column: evaluate and filter.
                        let rows = scan(ctx, plan, path, state)?;
                        return Ok(filter_by(rows, cols, probe));
                    }
                }
            }
            let rows = lookup(ctx, input, &child(path, 0), state, &mapped, probe)?;
            rows.iter().map(|r| project_row(r, pcols)).collect()
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => probe_join(ctx, path, state, cols, probe, left, right, on, residual.as_ref()),
        Plan::LeftOuterJoin {
            left,
            right,
            on,
            residual,
        } => {
            let la = left.arity();
            let right_vals = probe_values(cols, probe, |c| c >= la);
            if right_vals.iter().any(|v| !v.is_null()) {
                // A non-NULL constraint on a right column excludes
                // NULL-padded rows, so the result coincides with the
                // inner join's.
                return probe_join(
                    ctx,
                    path,
                    state,
                    cols,
                    probe,
                    left,
                    right,
                    on,
                    residual.as_ref(),
                );
            }
            // Drive from the left: build each matching left row's full
            // outer output (joined or padded), then filter by the whole
            // probe — a NULL right probe matches padded rows and
            // genuinely-NULL matched columns alike.
            let lp = &child(path, 0);
            let rp = &child(path, 1);
            let left_part: Vec<usize> = cols.iter().copied().filter(|&c| c < la).collect();
            let lprobe = sub_probe(cols, probe, |c| c < la);
            let lrows = lookup(ctx, left, lp, state, &left_part, &lprobe)?;
            let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
            let pad = Row(vec![Value::Null; right.arity()]);
            let mut out = Vec::new();
            for l in lrows {
                let vals: Vec<Value> = on.iter().map(|&(lc, _)| l[lc].clone()).collect();
                let mut matched = false;
                if !vals.iter().any(Value::is_null) {
                    for r in lookup(ctx, right, rp, state, &rcols, &Key(vals))? {
                        let joined = l.concat(&r);
                        if idivm_algebra::opt_pred(residual.as_ref(), &joined)? {
                            out.push(joined);
                            matched = true;
                        }
                    }
                }
                if !matched {
                    out.push(l.concat(&pad));
                }
            }
            Ok(filter_by(out, cols, probe))
        }
        Plan::SemiJoin {
            left,
            right,
            on,
            residual,
        } => probe_semi(ctx, plan, path, state, cols, probe, left, right, on, residual, true),
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => probe_semi(ctx, plan, path, state, cols, probe, left, right, on, residual, false),
        Plan::UnionAll { left, right } => {
            let branch_pos = plan.arity() - 1;
            let inner_cols: Vec<usize> = cols
                .iter()
                .copied()
                .filter(|&c| c != branch_pos)
                .collect();
            let inner_probe = sub_probe(cols, probe, |c| c != branch_pos);
            let branch_filter = cols
                .iter()
                .position(|&c| c == branch_pos)
                .map(|i| probe.0[i].clone());
            let mut out = Vec::new();
            for (branch, side, idx) in [(0i64, left, 0usize), (1, right, 1)] {
                if let Some(b) = &branch_filter {
                    if b != &Value::Int(branch) {
                        continue;
                    }
                }
                for mut row in
                    lookup(ctx, side, &child(path, idx), state, &inner_cols, &inner_probe)?
                {
                    row.0.push(Value::Int(branch));
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::GroupBy { input, keys, aggs } => {
            if cols.iter().all(|&c| c < keys.len()) {
                // Probe on (a subset of) the group key: fetch the
                // matching groups' member rows and aggregate.
                let in_cols: Vec<usize> = cols.iter().map(|&c| keys[c]).collect();
                let members =
                    lookup(ctx, input, &child(path, 0), state, &in_cols, probe)?;
                hash_aggregate(&members, keys, aggs)
            } else {
                // Probe touches an aggregate output: no push-down.
                let rows = scan(ctx, plan, path, state)?;
                Ok(filter_by(rows, cols, probe))
            }
        }
    }
}

/// Point-probe whether a subview contains any row matching `cols = probe`
/// (used by antisemijoin rules). Same cost as [`lookup`].
///
/// # Errors
/// Unknown tables or malformed plans.
pub fn exists(
    ctx: &AccessCtx<'_>,
    plan: &Plan,
    path: &PathId,
    state: State,
    cols: &[usize],
    probe: &Key,
) -> Result<bool> {
    Ok(!lookup(ctx, plan, path, state, cols, probe)?.is_empty())
}

/// Inner-join equality probe, pushed down as a diff-driven
/// index-nested-loop from whichever side carries probe columns.
#[allow(clippy::too_many_arguments)]
fn probe_join(
    ctx: &AccessCtx<'_>,
    path: &PathId,
    state: State,
    cols: &[usize],
    probe: &Key,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&idivm_algebra::Expr>,
) -> Result<Vec<Row>> {
    let la = left.arity();
    let left_part: Vec<usize> = cols.iter().copied().filter(|&c| c < la).collect();
    let right_part: Vec<usize> = cols.iter().copied().filter(|&c| c >= la).collect();
    let lp = &child(path, 0);
    let rp = &child(path, 1);
    if !left_part.is_empty() || right_part.is_empty() {
        // Drive from the left side.
        let lprobe = sub_probe(cols, probe, |c| c < la);
        let lrows = lookup(ctx, left, lp, state, &left_part, &lprobe)?;
        // For each left row, chase the join keys into the right,
        // constraining also by the right part of the probe.
        // Columns may repeat (a probe column that is also a join
        // key); dedupe so index matching is not defeated, and
        // reject contradictory constraints.
        let mut rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
        for &c in &right_part {
            rcols.push(c - la);
        }
        let right_vals = probe_values(cols, probe, |c| c >= la);
        let mut out = Vec::new();
        for l in lrows {
            let mut vals: Vec<Value> = on.iter().map(|&(lc, _)| l[lc].clone()).collect();
            vals.extend(right_vals.iter().cloned());
            if vals.iter().any(Value::is_null) {
                continue;
            }
            let Some((dcols, dvals)) = dedupe_probe(&rcols, vals) else {
                continue; // contradictory duplicate constraints
            };
            let rrows = lookup(ctx, right, rp, state, &dcols, &Key(dvals))?;
            for r in rrows {
                let joined = l.concat(&r);
                if idivm_algebra::opt_pred(residual, &joined)? {
                    out.push(joined);
                }
            }
        }
        Ok(out)
    } else {
        // Probe columns are all on the right: drive from there.
        let rprobe_cols: Vec<usize> = right_part.iter().map(|&c| c - la).collect();
        let rprobe = sub_probe(cols, probe, |c| c >= la);
        let rrows = lookup(ctx, right, rp, state, &rprobe_cols, &rprobe)?;
        let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
        let mut out = Vec::new();
        for r in rrows {
            let vals: Vec<Value> = on.iter().map(|&(_, rc)| r[rc].clone()).collect();
            if vals.iter().any(Value::is_null) {
                continue;
            }
            let lrows = lookup(ctx, left, lp, state, &lcols, &Key(vals))?;
            for l in lrows {
                let joined = l.concat(&r);
                if idivm_algebra::opt_pred(residual, &joined)? {
                    out.push(joined);
                }
            }
        }
        Ok(out)
    }
}

#[allow(clippy::too_many_arguments)]
fn probe_semi(
    ctx: &AccessCtx<'_>,
    _plan: &Plan,
    path: &PathId,
    state: State,
    cols: &[usize],
    probe: &Key,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: &Option<idivm_algebra::Expr>,
    keep_matched: bool,
) -> Result<Vec<Row>> {
    // Output schema = left schema, so probe columns address the left.
    let lrows = lookup(ctx, left, &child(path, 0), state, cols, probe)?;
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let rp = &child(path, 1);
    let mut out = Vec::new();
    for l in lrows {
        let vals: Vec<Value> = on.iter().map(|&(lc, _)| l[lc].clone()).collect();
        let matched = if vals.iter().any(Value::is_null) {
            false
        } else {
            let rrows = lookup(ctx, right, rp, state, &rcols, &Key(vals))?;
            let mut hit = false;
            for r in &rrows {
                if idivm_algebra::opt_pred(residual.as_ref(), &l.concat(r))? {
                    hit = true;
                    break;
                }
            }
            hit
        };
        if matched == keep_matched {
            out.push(l);
        }
    }
    Ok(out)
}

fn child(path: &[usize], idx: usize) -> PathId {
    let mut p = path.to_vec();
    p.push(idx);
    p
}

fn filter_by(rows: Vec<Row>, cols: &[usize], probe: &Key) -> Vec<Row> {
    rows.into_iter()
        .filter(|r| &r.key(cols) == probe)
        .collect()
}

fn sub_probe(cols: &[usize], probe: &Key, keep: impl Fn(usize) -> bool) -> Key {
    Key(probe_values(cols, probe, keep))
}

/// Remove duplicate probe columns and sort the probe by column position
/// (index and primary-key matching are order-sensitive) so a repeated or
/// permuted column set cannot defeat index matching. Returns `None` when
/// a duplicated column carries contradictory values — the probe can
/// match nothing.
fn dedupe_probe(cols: &[usize], vals: Vec<Value>) -> Option<(Vec<usize>, Vec<Value>)> {
    let mut pairs: Vec<(usize, Value)> = Vec::with_capacity(cols.len());
    for (&c, v) in cols.iter().zip(vals) {
        match pairs.iter().position(|(o, _)| *o == c) {
            Some(i) => {
                if pairs[i].1 != v {
                    return None;
                }
            }
            None => pairs.push((c, v)),
        }
    }
    pairs.sort_by_key(|(c, _)| *c);
    Some(pairs.into_iter().unzip())
}

fn probe_values(cols: &[usize], probe: &Key, keep: impl Fn(usize) -> bool) -> Vec<Value> {
    cols.iter()
        .zip(probe.0.iter())
        .filter(|(c, _)| keep(**c))
        .map(|(_, v)| v.clone())
        .collect()
}

/// Resolve the plan node at `path` (for callers that hold only the root).
///
/// # Errors
/// [`Error::Plan`] if the path is invalid.
pub fn node_at<'p>(root: &'p Plan, path: &[usize]) -> Result<&'p Plan> {
    let mut cur = root;
    for &i in path {
        cur = *cur
            .children()
            .get(i)
            .ok_or_else(|| Error::Plan(format!("invalid plan path {path:?}")))?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_algebra::{AggFunc, PlanBuilder};
    use idivm_exec::DbCatalog;
    use idivm_types::{row, ColumnType, Schema};

    fn setup() -> Database {
        let mut db = Database::new();
        db.set_logging(false); // bulk load is not part of a round
        db.create_table(
            "parts",
            Schema::from_pairs(
                &[("pid", ColumnType::Str), ("price", ColumnType::Int)],
                &["pid"],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            "devices_parts",
            Schema::from_pairs(
                &[("did", ColumnType::Str), ("pid", ColumnType::Str)],
                &["did", "pid"],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("parts", row!["P1", 10]).unwrap();
        db.insert("parts", row!["P2", 20]).unwrap();
        db.insert("devices_parts", row!["D1", "P1"]).unwrap();
        db.insert("devices_parts", row!["D2", "P1"]).unwrap();
        db.insert("devices_parts", row!["D1", "P2"]).unwrap();
        db.table_mut("devices_parts")
            .unwrap()
            .create_index(&["pid"])
            .unwrap();
        db
    }

    fn empty_ctx<'a>(
        db: &'a Database,
        base: &'a HashMap<String, TableChanges>,
        caches: &'a HashMap<PathId, String>,
        cch: &'a HashMap<String, TableChanges>,
    ) -> AccessCtx<'a> {
        AccessCtx {
            db,
            base_changes: base,
            caches,
            cache_changes: cch,
        }
    }

    #[test]
    fn join_lookup_is_index_driven() {
        let db = setup();
        let cat = DbCatalog(&db);
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .build()
            .unwrap();
        let (base, caches, cch) = (HashMap::new(), HashMap::new(), HashMap::new());
        let ctx = empty_ctx(&db, &base, &caches, &cch);
        db.stats().reset();
        // Probe by parts.pid = P1 (column 0 of the join output).
        let rows = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Post,
            &[0],
            &Key(vec![Value::str("P1")]),
        )
        .unwrap();
        assert_eq!(rows.len(), 2); // joins with D1 and D2
        let snap = db.stats().snapshot();
        // 1 pk probe into parts (1 lookup + 1 tuple) then 1 index probe
        // into devices_parts (1 lookup + 2 tuples).
        assert_eq!(snap.index_lookups, 2);
        assert_eq!(snap.tuple_accesses, 3);
    }

    #[test]
    fn group_by_lookup_recomputes_single_group() {
        let db = setup();
        let cat = DbCatalog(&db);
        let plan = PlanBuilder::scan(&cat, "devices_parts")
            .unwrap()
            .group_by(&["devices_parts.did"], &[(AggFunc::Count, "*", "n")])
            .unwrap()
            .build()
            .unwrap();
        let (base, caches, cch) = (HashMap::new(), HashMap::new(), HashMap::new());
        let ctx = empty_ctx(&db, &base, &caches, &cch);
        // did is a prefix of devices_parts' composite key, so there is
        // no index for [did] alone — lookup degrades to a scan, still
        // correct.
        let rows = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Post,
            &[0],
            &Key(vec![Value::str("D1")]),
        )
        .unwrap();
        assert_eq!(rows, vec![row!["D1", 2]]);
    }

    #[test]
    fn pre_state_lookup_through_select() {
        let mut db = setup();
        db.set_logging(true);
        // Update P1's price 10 → 99 with logging on.
        db.update_named(
            "parts",
            &Key(vec![Value::str("P1")]),
            &[("price", Value::Int(99))],
        )
        .unwrap();
        let base = db.fold_log();
        let cat = DbCatalog(&db);
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .select(
                idivm_algebra::Expr::col(1).lt(idivm_algebra::Expr::lit(50)),
            )
            .build()
            .unwrap();
        let (caches, cch) = (HashMap::new(), HashMap::new());
        let ctx = empty_ctx(&db, &base, &caches, &cch);
        // Post-state: P1 has price 99 ⇒ filtered out.
        let post = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Post,
            &[0],
            &Key(vec![Value::str("P1")]),
        )
        .unwrap();
        assert!(post.is_empty());
        // Pre-state: price was 10 ⇒ present.
        let pre = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Pre,
            &[0],
            &Key(vec![Value::str("P1")]),
        )
        .unwrap();
        assert_eq!(pre, vec![row!["P1", 10]]);
    }

    #[test]
    fn cache_shortcuts_subview() {
        let mut db = setup();
        // Materialize the join as a "cache" table.
        db.create_table(
            "cache0",
            Schema::from_pairs(
                &[
                    ("pid", ColumnType::Str),
                    ("price", ColumnType::Int),
                    ("did", ColumnType::Str),
                    ("pid2", ColumnType::Str),
                ],
                &["pid", "did"],
            )
            .unwrap(),
        )
        .unwrap();
        for r in [
            row!["P1", 10, "D1", "P1"],
            row!["P1", 10, "D2", "P1"],
            row!["P2", 20, "D1", "P2"],
        ] {
            db.table_mut("cache0").unwrap().load(r).unwrap();
        }
        let cat = DbCatalog(&db);
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .build()
            .unwrap();
        let base = HashMap::new();
        let mut caches = HashMap::new();
        caches.insert(vec![], "cache0".to_string());
        let cch = HashMap::new();
        let ctx = empty_ctx(&db, &base, &caches, &cch);
        db.stats().reset();
        let rows = scan(&ctx, &plan, &vec![], State::Post).unwrap();
        assert_eq!(rows.len(), 3);
        // Served from the cache: 3 tuple accesses, no base-table reads.
        assert_eq!(db.stats().snapshot().tuple_accesses, 3);
    }

    #[test]
    fn antijoin_lookup_probes_right() {
        let mut db = setup();
        db.insert("parts", row!["P3", 30]).unwrap(); // unused part
        let cat = DbCatalog(&db);
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .anti_join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .build()
            .unwrap();
        let (base, caches, cch) = (HashMap::new(), HashMap::new(), HashMap::new());
        let ctx = empty_ctx(&db, &base, &caches, &cch);
        let rows = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Post,
            &[0],
            &Key(vec![Value::str("P3")]),
        )
        .unwrap();
        assert_eq!(rows, vec![row!["P3", 30]]);
        let used = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Post,
            &[0],
            &Key(vec![Value::str("P1")]),
        )
        .unwrap();
        assert!(used.is_empty());
    }

    #[test]
    fn union_lookup_routes_by_branch() {
        let db = setup();
        let cat = DbCatalog(&db);
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .union_all(PlanBuilder::scan(&cat, "parts").unwrap())
            .build()
            .unwrap();
        let (base, caches, cch) = (HashMap::new(), HashMap::new(), HashMap::new());
        let ctx = empty_ctx(&db, &base, &caches, &cch);
        // Probe pid = P1 in branch 1 only.
        let rows = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Post,
            &[0, 2],
            &Key(vec![Value::str("P1"), Value::Int(1)]),
        )
        .unwrap();
        assert_eq!(rows, vec![row!["P1", 10, 1]]);
        // Probe pid = P1 in both branches.
        let rows = lookup(
            &ctx,
            &plan,
            &vec![],
            State::Post,
            &[0],
            &Key(vec![Value::str("P1")]),
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
    }
}
