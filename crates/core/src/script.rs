//! Human-readable rendering of the generated ∆-script — the engine's
//! equivalent of paper Figure 7.
//!
//! The engine interprets the composed rule DAG directly rather than
//! emitting SQL text; this module renders the same structure as a
//! script: one block per base-table i-diff schema, the instantiated
//! rule per operator on the path to the root, and the APPLY statements
//! at every cache boundary and at the view.

use crate::engine::IdIvm;
use crate::schema_gen::TableDiffSchemas;
use idivm_algebra::Plan;
use std::fmt::Write as _;

/// Render the ∆-script of a configured engine.
pub fn explain_script(engine: &IdIvm) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- ∆-script for view `{}`", engine.view_name());
    let _ = writeln!(
        out,
        "-- minimization: {}, input caches: {}",
        on_off(engine.options().minimize),
        on_off(engine.options().use_input_caches),
    );
    if !engine.caches().is_empty() {
        let _ = writeln!(out, "-- intermediate caches:");
        for c in engine.caches() {
            let _ = writeln!(out, "--   {} materializes subplan @{:?}", c.name, c.path);
        }
    }
    let mut tables: Vec<&String> = engine.schemas().tables.keys().collect();
    tables.sort();
    for table in tables {
        let schemas = &engine.schemas().tables[table];
        render_table_block(&mut out, engine, table, schemas);
    }
    let _ = writeln!(out, "APPLY ∆_V  -- UPDATE/INSERT/DELETE on `{}`", engine.view_name());
    out
}

fn render_table_block(
    out: &mut String,
    engine: &IdIvm,
    table: &str,
    schemas: &TableDiffSchemas,
) {
    let _ = writeln!(out, "\n-- base table `{table}`");
    let _ = writeln!(out, "∆+_{table}(Ī, Ā_post)   -- single insert schema");
    let _ = writeln!(out, "∆-_{table}(Ī, Ā_pre)    -- single delete schema");
    for (i, g) in schemas.updates.iter().enumerate() {
        let label = if g.non_conditional {
            "non-conditional NC"
        } else {
            "conditional C_op"
        };
        let _ = writeln!(
            out,
            "∆u_{table}#{i}(Ī, Ā_pre, Ā′_post) with Ā′ = {:?}  -- {label}",
            g.post_attrs
        );
    }
    let _ = writeln!(out, "-- propagation path:");
    render_path(out, engine.plan(), table, 0);
}

fn render_path(out: &mut String, node: &Plan, table: &str, depth: usize) {
    // Print operators bottom-up along every path from a scan of `table`
    // to the root: recurse first, print after.
    let reaches = node.scans().iter().any(|(_, t)| *t == table);
    if !reaches {
        return;
    }
    for c in node.children() {
        render_path(out, c, table, depth + 1);
    }
    let desc = match node {
        Plan::Scan { alias, .. } => format!("SCAN {alias}: emit base i-diffs"),
        Plan::Select { pred, .. } => format!(
            "σ {pred}: filter ∆⁺ by φ(post); ∆−/∆u pass (pre-filtered when minimized); \
             condition-affected updates split into ∆⁺/∆−/∆u"
        ),
        Plan::Project { cols, .. } => format!(
            "π [{} cols]: remap IDs, recompute touched expressions",
            cols.len()
        ),
        Plan::Join { on, .. } => format!(
            "⋈ [{} keys]: ∆⁺ probes the other side; ∆−/∆u on non-join attrs pass through",
            on.len()
        ),
        Plan::LeftOuterJoin { on, .. } => format!(
            "⟕ [{} keys]: inner-join deltas plus padding repair — a first right \
             match retracts the padded row, a last right removal re-pads",
            on.len()
        ),
        Plan::SemiJoin { .. } => "⋉: membership re-checked via probes".to_string(),
        Plan::AntiJoin { .. } => "▷: negated membership re-checked via probes".to_string(),
        Plan::UnionAll { .. } => "∪: append branch attribute to IDs".to_string(),
        Plan::GroupBy { keys, aggs, .. } => format!(
            "γ [{} keys, {} aggs]: blocking delta rules (SUM/COUNT) or group \
             recomputation; convert via Output join",
            keys.len(),
            aggs.len()
        ),
    };
    let _ = writeln!(out, "  {}{desc}", "  ".repeat(depth));
}

fn on_off(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}
