//! ID-based diffs (i-diffs) — paper Section 2.
//!
//! An i-diff for a relation `V(Ī, Ā)` is a relation
//! `∆ᵗ_V(Ī′, Ā′_pre, Ā″_post)` where `Ī′ ⊆ Ī` identifies the tuples to
//! modify, `Ā′_pre` carries pre-state values (used to *reduce*
//! overestimation and avoid base accesses) and `Ā″_post` carries the new
//! values. Insert diffs have no pre set and carry every attribute;
//! delete diffs have no post set.
//!
//! A [`DiffSchema`] describes one i-diff shape *relative to a target
//! relation's output columns* (positions into that relation). A
//! [`DiffInstance`] holds its rows, laid out `[ids…, pre…, post…]`.

use idivm_types::{Key, Row, Value};
use std::collections::BTreeSet;

/// Diff type `t ∈ {+, −, u}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiffKind {
    Insert,
    Delete,
    Update,
}

impl DiffKind {
    /// Symbol used in displays: `+`, `-`, `u`.
    pub fn symbol(self) -> char {
        match self {
            DiffKind::Insert => '+',
            DiffKind::Delete => '-',
            DiffKind::Update => 'u',
        }
    }
}

/// The schema of an i-diff over some target relation.
///
/// All column references are positions into the target's output schema.
/// Rows of a matching [`DiffInstance`] are laid out as
/// `[id values…, pre values…, post values…]` following `id_cols`,
/// `pre_cols`, `post_cols` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffSchema {
    pub kind: DiffKind,
    /// `Ī′`: the ID subset identifying target tuples.
    pub id_cols: Vec<usize>,
    /// `Ā′`: target columns carried in pre-state form.
    pub pre_cols: Vec<usize>,
    /// `Ā″`: target columns carried in post-state form (update: the
    /// columns being set; insert: every non-ID column).
    pub post_cols: Vec<usize>,
}

impl DiffSchema {
    /// Insert-diff schema: all IDs + post-state for all other columns.
    pub fn insert(ids: &[usize], arity: usize) -> Self {
        DiffSchema {
            kind: DiffKind::Insert,
            id_cols: ids.to_vec(),
            pre_cols: Vec::new(),
            post_cols: (0..arity).filter(|c| !ids.contains(c)).collect(),
        }
    }

    /// Delete-diff schema addressing tuples by `ids` and carrying
    /// pre-state values for `pre`.
    pub fn delete(ids: &[usize], pre: &[usize]) -> Self {
        DiffSchema {
            kind: DiffKind::Delete,
            id_cols: ids.to_vec(),
            pre_cols: pre.to_vec(),
            post_cols: Vec::new(),
        }
    }

    /// Update-diff schema addressing tuples by `ids`, setting `post`,
    /// carrying pre-state for `pre`.
    pub fn update(ids: &[usize], pre: &[usize], post: &[usize]) -> Self {
        DiffSchema {
            kind: DiffKind::Update,
            id_cols: ids.to_vec(),
            pre_cols: pre.to_vec(),
            post_cols: post.to_vec(),
        }
    }

    /// Width of a diff row.
    pub fn width(&self) -> usize {
        self.id_cols.len() + self.pre_cols.len() + self.post_cols.len()
    }

    /// Position (within diff rows) of the `k`-th ID column.
    pub fn id_slot(&self, k: usize) -> usize {
        k
    }

    /// Position of the pre-state value for target column `c`, if carried.
    pub fn pre_slot(&self, c: usize) -> Option<usize> {
        self.pre_cols
            .iter()
            .position(|&p| p == c)
            .map(|i| self.id_cols.len() + i)
    }

    /// Position of the post-state value for target column `c`, if
    /// carried.
    pub fn post_slot(&self, c: usize) -> Option<usize> {
        self.post_cols
            .iter()
            .position(|&p| p == c)
            .map(|i| self.id_cols.len() + self.pre_cols.len() + i)
    }

    /// Target columns whose **pre-state** value is derivable from a diff
    /// row: the IDs (immutable) plus `pre_cols`; for insert diffs
    /// nothing has a pre-state.
    pub fn pre_available(&self) -> BTreeSet<usize> {
        if self.kind == DiffKind::Insert {
            return BTreeSet::new();
        }
        self.id_cols
            .iter()
            .chain(self.pre_cols.iter())
            .copied()
            .collect()
    }

    /// Target columns whose **post-state** value is derivable: the IDs,
    /// `post_cols`, and (for updates) the carried pre columns that are
    /// *not* being updated — those are unchanged, so pre = post. Delete
    /// diffs have no post-state.
    pub fn post_available(&self) -> BTreeSet<usize> {
        if self.kind == DiffKind::Delete {
            return BTreeSet::new();
        }
        let mut s: BTreeSet<usize> = self
            .id_cols
            .iter()
            .chain(self.post_cols.iter())
            .copied()
            .collect();
        if self.kind == DiffKind::Update {
            for &c in &self.pre_cols {
                if !self.post_cols.contains(&c) {
                    s.insert(c);
                }
            }
        }
        s
    }

    /// Pre-state value of target column `c` in `row`, if derivable.
    pub fn pre_value(&self, row: &Row, c: usize) -> Option<Value> {
        if self.kind == DiffKind::Insert {
            return None;
        }
        if let Some(k) = self.id_cols.iter().position(|&i| i == c) {
            return Some(row[self.id_slot(k)].clone());
        }
        self.pre_slot(c).map(|s| row[s].clone())
    }

    /// Post-state value of target column `c` in `row`, if derivable.
    pub fn post_value(&self, row: &Row, c: usize) -> Option<Value> {
        if self.kind == DiffKind::Delete {
            return None;
        }
        if let Some(k) = self.id_cols.iter().position(|&i| i == c) {
            return Some(row[self.id_slot(k)].clone());
        }
        if let Some(s) = self.post_slot(c) {
            return Some(row[s].clone());
        }
        if self.kind == DiffKind::Update {
            // Carried pre value of a non-updated column is also its post
            // value.
            if let Some(s) = self.pre_slot(c) {
                return Some(row[s].clone());
            }
        }
        None
    }

    /// The ID key of a diff row.
    pub fn id_key(&self, row: &Row) -> Key {
        Key(row.0[..self.id_cols.len()].to_vec())
    }

    /// Assemble a full target row in the given state, if every column in
    /// `0..arity` is derivable.
    pub fn full_row(&self, row: &Row, arity: usize, state: State) -> Option<Row> {
        let mut out = Vec::with_capacity(arity);
        for c in 0..arity {
            let v = match state {
                State::Pre => self.pre_value(row, c),
                State::Post => self.post_value(row, c),
            };
            out.push(v?);
        }
        Some(Row(out))
    }

    /// Assemble a *scratch* target row with derivable values filled in
    /// and `Value::Null` elsewhere, for evaluating expressions whose
    /// columns are known to be covered (check with
    /// [`DiffSchema::pre_available`] / [`DiffSchema::post_available`]
    /// first).
    pub fn scratch_row(&self, row: &Row, arity: usize, state: State) -> Row {
        let mut out = vec![Value::Null; arity];
        for (c, slot) in (0..arity).filter_map(|c| {
            let v = match state {
                State::Pre => self.pre_value(row, c),
                State::Post => self.post_value(row, c),
            };
            v.map(|v| (c, v))
        }) {
            out[c] = slot;
        }
        Row(out)
    }
}

/// Which state of the target relation a value/row refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    Pre,
    Post,
}

/// An i-diff instance: a schema plus its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffInstance {
    pub schema: DiffSchema,
    pub rows: Vec<Row>,
}

impl DiffInstance {
    /// Empty instance of `schema`.
    pub fn empty(schema: DiffSchema) -> Self {
        DiffInstance {
            schema,
            rows: Vec::new(),
        }
    }

    /// Instance with rows (caller guarantees the layout matches).
    pub fn new(schema: DiffSchema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.arity() == schema.width()));
        DiffInstance { schema, rows }
    }

    /// Number of diff tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no diff tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Build an insert-diff instance from full target rows.
    pub fn insert_from_rows(ids: &[usize], arity: usize, rows: &[Row]) -> Self {
        let schema = DiffSchema::insert(ids, arity);
        let diff_rows = rows
            .iter()
            .map(|r| {
                let mut v: Vec<Value> =
                    schema.id_cols.iter().map(|&c| r[c].clone()).collect();
                v.extend(schema.post_cols.iter().map(|&c| r[c].clone()));
                Row(v)
            })
            .collect();
        DiffInstance {
            schema,
            rows: diff_rows,
        }
    }

    /// Build a delete-diff instance (full pre rows) from target rows.
    pub fn delete_from_rows(ids: &[usize], arity: usize, rows: &[Row]) -> Self {
        let pre: Vec<usize> = (0..arity).filter(|c| !ids.contains(c)).collect();
        let schema = DiffSchema::delete(ids, &pre);
        let diff_rows = rows
            .iter()
            .map(|r| {
                let mut v: Vec<Value> =
                    schema.id_cols.iter().map(|&c| r[c].clone()).collect();
                v.extend(schema.pre_cols.iter().map(|&c| r[c].clone()));
                Row(v)
            })
            .collect();
        DiffInstance {
            schema,
            rows: diff_rows,
        }
    }
}

/// Check effectiveness of a diff instance w.r.t. the target's post-state
/// (paper Section 2): inserts must exist in the post-state, deleted IDs
/// must be absent, and every updated-and-surviving tuple must already
/// show the diff's post values. Used by tests and debug assertions.
pub fn is_effective(diff: &DiffInstance, post_rows: &[Row]) -> bool {
    let arity = post_rows
        .first()
        .map(Row::arity)
        .unwrap_or_else(|| diff.schema.width());
    match diff.schema.kind {
        DiffKind::Insert => diff.rows.iter().all(|d| {
            diff.schema
                .full_row(d, arity, State::Post)
                .is_some_and(|r| post_rows.contains(&r))
        }),
        DiffKind::Delete => diff.rows.iter().all(|d| {
            let dk = diff.schema.id_key(d);
            !post_rows.iter().any(|r| r.key(&diff.schema.id_cols) == dk)
        }),
        DiffKind::Update => diff.rows.iter().all(|d| {
            let dk = diff.schema.id_key(d);
            post_rows
                .iter()
                .filter(|r| r.key(&diff.schema.id_cols) == dk)
                .all(|r| {
                    diff.schema.post_cols.iter().all(|&c| {
                        diff.schema.post_value(d, c).is_some_and(|v| v == r[c])
                    })
                })
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_types::row;

    /// The update i-diff of paper Example 2.2:
    /// ∆u_V(pid, price_pre, price_post) = (P1, 10, 11) over
    /// V(did, pid, price) with ID {did, pid}.
    fn example_update() -> DiffInstance {
        let schema = DiffSchema::update(&[1], &[2], &[2]); // Ī′={pid}, pre/post on price
        DiffInstance::new(schema, vec![row!["P1", 10, 11]])
    }

    #[test]
    fn update_diff_slots_and_values() {
        let d = example_update();
        let r = &d.rows[0];
        assert_eq!(d.schema.width(), 3);
        assert_eq!(d.schema.id_key(r), Key(vec![Value::str("P1")]));
        assert_eq!(d.schema.pre_value(r, 2), Some(Value::Int(10)));
        assert_eq!(d.schema.post_value(r, 2), Some(Value::Int(11)));
        assert_eq!(d.schema.post_value(r, 1), Some(Value::str("P1"))); // ID
        assert_eq!(d.schema.post_value(r, 0), None); // did not carried
    }

    #[test]
    fn availability_sets() {
        let d = example_update();
        let pre: Vec<usize> = d.schema.pre_available().into_iter().collect();
        let post: Vec<usize> = d.schema.post_available().into_iter().collect();
        assert_eq!(pre, vec![1, 2]);
        assert_eq!(post, vec![1, 2]);
    }

    #[test]
    fn unchanged_pre_doubles_as_post() {
        // Update sets col 2; col 3 carried pre-only ⇒ post(3) = pre(3).
        let schema = DiffSchema::update(&[0], &[2, 3], &[2]);
        // Layout: [id(0), pre(2), pre(3), post(2)].
        let r = row![7, 10, "x", 11];
        assert_eq!(schema.post_value(&r, 3), Some(Value::str("x")));
        assert_eq!(schema.post_value(&r, 2), Some(Value::Int(11)));
        assert_eq!(schema.pre_value(&r, 2), Some(Value::Int(10)));
    }

    #[test]
    fn insert_diff_from_rows_and_full_row() {
        let rows = vec![row!["D3", "P2", 20]];
        let d = DiffInstance::insert_from_rows(&[0, 1], 3, &rows);
        assert_eq!(d.schema.kind, DiffKind::Insert);
        let full = d.schema.full_row(&d.rows[0], 3, State::Post).unwrap();
        assert_eq!(full, row!["D3", "P2", 20]);
        assert!(d.schema.full_row(&d.rows[0], 3, State::Pre).is_none());
    }

    #[test]
    fn delete_diff_carries_pre() {
        let rows = vec![row!["D1", "P1", 10]];
        let d = DiffInstance::delete_from_rows(&[0, 1], 3, &rows);
        assert_eq!(d.schema.pre_value(&d.rows[0], 2), Some(Value::Int(10)));
        assert!(d.schema.post_value(&d.rows[0], 2).is_none());
        let full_pre = d.schema.full_row(&d.rows[0], 3, State::Pre).unwrap();
        assert_eq!(full_pre, row!["D1", "P1", 10]);
    }

    #[test]
    fn scratch_row_fills_known_slots() {
        let d = example_update();
        let s = d.schema.scratch_row(&d.rows[0], 3, State::Post);
        assert_eq!(s[1], Value::str("P1"));
        assert_eq!(s[2], Value::Int(11));
        assert!(s[0].is_null());
    }

    #[test]
    fn effectiveness_of_example() {
        // Post-state view from Figure 2 after applying the update.
        let post = vec![
            row!["D1", "P1", 11],
            row!["D2", "P1", 11],
            row!["D1", "P2", 20],
        ];
        let d = example_update();
        assert!(is_effective(&d, &post));
        // An update claiming price 99 would be ineffective.
        let bad = DiffInstance::new(
            DiffSchema::update(&[1], &[2], &[2]),
            vec![row!["P1", 10, 99]],
        );
        assert!(!is_effective(&bad, &post));
    }
}
