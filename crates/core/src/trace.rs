//! Structured per-operator observability for maintenance rounds.
//!
//! A [`RoundTrace`] records, for every operator node of the propagated
//! plan, the incoming/outgoing diff cardinalities, the accesses the
//! node's rule spent (in the paper's tuple-accesses + index-lookups
//! unit), and — at Apply boundaries — the *dummy* diff tuples that
//! matched no stored tuple: the paper's overestimation metric
//! (Section 1, Example 4.8).
//!
//! Tracing is **off by default** ([`TraceConfig::disabled`]) and costs
//! nothing when off: the engines consult a single bool and skip all
//! recording. When on, attribution piggybacks on the per-node
//! [`StatsSnapshot`](idivm_reldb::StatsSnapshot) deltas the engine
//! already takes for its phase totals, so no per-tuple atomics are
//! added and the recorded counts **reconcile exactly**: the sum of
//! [`OpTrace::accesses`] over a phase equals the corresponding
//! [`MaintenanceReport`](crate::report::MaintenanceReport) phase total,
//! bit-identical for any `ParallelConfig` thread count (the bottom-up
//! walk is serial; worker threads join inside each rule, and
//! `AccessStats` sums shards exactly — see
//! `idivm_exec::partition::run_sharded`).

use crate::access::PathId;
use idivm_algebra::Plan;
use idivm_reldb::StatsSnapshot;
use std::time::Duration;

/// Whether to record a [`RoundTrace`] during maintenance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record per-operator traces. Off by default.
    pub enabled: bool,
}

impl TraceConfig {
    /// Tracing off (the default) — zero recording cost.
    pub fn disabled() -> Self {
        TraceConfig { enabled: false }
    }

    /// Tracing on.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true }
    }
}

/// Which maintenance phase an [`OpTrace`] entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Rule evaluation at an operator node (reconciles against
    /// `MaintenanceReport::diff_compute`).
    Propagate,
    /// Diff application to an intermediate cache (reconciles against
    /// `MaintenanceReport::cache_update`).
    CacheApply,
    /// Diff application to the view (reconciles against
    /// `MaintenanceReport::view_update`).
    ViewApply,
    /// Recompute repair after a rolled-back round (reconciles against
    /// `MaintenanceReport::recovery`; entries carry `diffs_in = 0` —
    /// a recompute consumes no diffs).
    Recovery,
}

impl TracePhase {
    /// Stable lowercase label used in the JSON emission.
    pub fn label(self) -> &'static str {
        match self {
            TracePhase::Propagate => "propagate",
            TracePhase::CacheApply => "cache_apply",
            TracePhase::ViewApply => "view_apply",
            TracePhase::Recovery => "recovery",
        }
    }
}

/// One operator node's contribution to a maintenance round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Plan-node address (root = empty; child indexes below).
    pub path: PathId,
    /// Operator label (`"join"`, `"select"`, …) or apply-target label.
    pub op: String,
    /// Phase this entry reconciles against.
    pub phase: TracePhase,
    /// Diff tuples entering the node (summed over incoming instances).
    pub diffs_in: u64,
    /// Diff tuples leaving the node (0 for apply entries).
    pub diffs_out: u64,
    /// Diff tuples that matched nothing at an Apply (overestimation);
    /// always 0 for `Propagate` entries.
    pub dummies: u64,
    /// Accesses attributed to this node (exact `since` delta).
    pub accesses: StatsSnapshot,
}

/// Wall-clock timings of the round's phases. The propagate phase
/// includes cache applies (they happen mid-walk at cache boundaries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Folding the modification log into net changes.
    pub fold: Duration,
    /// Populating base-table i-diff instances.
    pub populate: Duration,
    /// Bottom-up rule propagation (including mid-walk cache applies).
    pub propagate: Duration,
    /// Applying the final diffs to the view.
    pub apply: Duration,
}

/// The **ingest pseudo-phase** of a firehose round: what the CDC
/// front-end did to assemble the micro-batch this round maintained.
/// Engines never populate it — the ingest pipeline stamps it onto the
/// round's trace (and the scheduler's `RoundSummary`) so streamed
/// rounds are attributable in the same trace JSON as everything else.
/// All counters are deterministic on the virtual tick clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestTrace {
    /// Events admitted into this batch (validated + applied as DML).
    pub admitted: u64,
    /// Events shed by the overloaded queue since the previous cut
    /// (counted, never silent).
    pub shed: u64,
    /// Events dead-lettered by admission since the previous cut.
    pub dead_lettered: u64,
    /// Why the batcher cut this batch (`"count"`, `"age"`,
    /// `"staleness"`, or `"flush"`).
    pub cut_cause: &'static str,
    /// Queue depth observed at the cut decision.
    pub queue_depth_at_cut: u64,
}

impl IngestTrace {
    /// Render as a JSON object (hand-rolled, like the rest of the
    /// trace layer).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"admitted\": {}, \"shed\": {}, \"dead_lettered\": {}, \
             \"cut_cause\": \"{}\", \"queue_depth_at_cut\": {}}}",
            self.admitted, self.shed, self.dead_lettered, self.cut_cause, self.queue_depth_at_cut
        )
    }
}

/// Full structured trace of one maintenance round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundTrace {
    /// Per-operator entries in walk (bottom-up) order, apply entries
    /// appended where they occur.
    pub operators: Vec<OpTrace>,
    /// Per-phase wall timings.
    pub timings: PhaseTimings,
    /// Ingest pseudo-phase (streamed rounds only — `None` for rounds
    /// fed by a hand-folded `ChangeLog`).
    pub ingest: Option<IngestTrace>,
}

impl RoundTrace {
    /// Sum of the access deltas recorded for one phase. Reconciles
    /// exactly against the matching `MaintenanceReport` phase total.
    pub fn sum_phase(&self, phase: TracePhase) -> StatsSnapshot {
        self.operators
            .iter()
            .filter(|o| o.phase == phase)
            .fold(StatsSnapshot::default(), |acc, o| acc.merge(o.accesses))
    }

    /// Total dummy diff tuples observed at Apply boundaries.
    pub fn dummy_diffs(&self) -> u64 {
        self.operators.iter().map(|o| o.dummies).sum()
    }

    /// Diff tuples that reached an Apply boundary.
    pub fn applied_diffs(&self) -> u64 {
        self.operators
            .iter()
            .filter(|o| o.phase != TracePhase::Propagate)
            .map(|o| o.diffs_in)
            .sum()
    }

    /// Overestimation ratio: dummy diff tuples per diff tuple applied.
    /// `None` when nothing reached an Apply.
    pub fn overestimation_ratio(&self) -> Option<f64> {
        let applied = self.applied_diffs();
        if applied == 0 {
            return None;
        }
        Some(self.dummy_diffs() as f64 / applied as f64)
    }

    /// Render the trace as a JSON object (no external dependencies —
    /// all values are numbers, fixed labels, or integer arrays).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"timings_us\": {{\"fold\": {}, \"populate\": {}, \"propagate\": {}, \"apply\": {}}},\n",
            self.timings.fold.as_micros(),
            self.timings.populate.as_micros(),
            self.timings.propagate.as_micros(),
            self.timings.apply.as_micros()
        ));
        if let Some(ingest) = &self.ingest {
            s.push_str(&format!("  \"ingest\": {},\n", ingest.to_json()));
        }
        s.push_str(&format!("  \"dummy_diffs\": {},\n", self.dummy_diffs()));
        s.push_str(&format!(
            "  \"overestimation_ratio\": {},\n",
            self.overestimation_ratio()
                .map_or_else(|| "null".to_string(), |r| format!("{r:.6}"))
        ));
        s.push_str("  \"operators\": [\n");
        for (i, o) in self.operators.iter().enumerate() {
            let path: Vec<String> = o.path.iter().map(ToString::to_string).collect();
            s.push_str(&format!(
                "    {{\"path\": [{}], \"op\": \"{}\", \"phase\": \"{}\", \
                 \"diffs_in\": {}, \"diffs_out\": {}, \"dummies\": {}, \
                 \"tuple_accesses\": {}, \"index_lookups\": {}}}{}\n",
                path.join(","),
                o.op,
                o.phase.label(),
                o.diffs_in,
                o.diffs_out,
                o.dummies,
                o.accesses.tuple_accesses,
                o.accesses.index_lookups,
                if i + 1 < self.operators.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}");
        s
    }
}

/// Stable label for a plan node, used in trace entries.
pub fn op_label(node: &Plan) -> &'static str {
    match node {
        Plan::Scan { .. } => "scan",
        Plan::Select { .. } => "select",
        Plan::Project { .. } => "project",
        Plan::Join { .. } => "join",
        Plan::LeftOuterJoin { .. } => "left_outer_join",
        Plan::SemiJoin { .. } => "semijoin",
        Plan::AntiJoin { .. } => "antijoin",
        Plan::UnionAll { .. } => "union_all",
        Plan::GroupBy { .. } => "group_by",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(phase: TracePhase, diffs_in: u64, dummies: u64, ta: u64, il: u64) -> OpTrace {
        OpTrace {
            path: vec![0],
            op: "select".into(),
            phase,
            diffs_in,
            diffs_out: diffs_in,
            dummies,
            accesses: StatsSnapshot {
                tuple_accesses: ta,
                index_lookups: il,
            },
        }
    }

    #[test]
    fn phase_sums_and_ratio() {
        let t = RoundTrace {
            operators: vec![
                entry(TracePhase::Propagate, 4, 0, 10, 3),
                entry(TracePhase::Propagate, 2, 0, 5, 1),
                entry(TracePhase::ViewApply, 6, 3, 2, 6),
            ],
            timings: PhaseTimings::default(),
            ingest: None,
        };
        let prop = t.sum_phase(TracePhase::Propagate);
        assert_eq!((prop.tuple_accesses, prop.index_lookups), (15, 4));
        assert_eq!(t.dummy_diffs(), 3);
        assert_eq!(t.applied_diffs(), 6);
        assert_eq!(t.overestimation_ratio(), Some(0.5));
    }

    #[test]
    fn ratio_none_without_applies() {
        let t = RoundTrace {
            operators: vec![entry(TracePhase::Propagate, 4, 0, 1, 1)],
            timings: PhaseTimings::default(),
            ingest: None,
        };
        assert!(t.overestimation_ratio().is_none());
    }

    #[test]
    fn json_is_well_formed() {
        let t = RoundTrace {
            operators: vec![
                entry(TracePhase::Propagate, 4, 0, 10, 3),
                entry(TracePhase::ViewApply, 4, 1, 2, 4),
            ],
            timings: PhaseTimings::default(),
            ingest: None,
        };
        let j = t.to_json();
        assert!(j.contains("\"operators\""));
        assert!(j.contains("\"phase\": \"view_apply\""));
        assert!(j.contains("\"overestimation_ratio\": 0.25"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
