//! Base-table i-diff schema generation and instance population — paper
//! Section 5.
//!
//! For every base table `R(Ī, Ā)` in the view:
//!
//! * one **insert** schema `∆⁺_R(Ī, Ā_post)` (all attributes),
//! * one **delete** schema `∆−_R(Ī, Ā_pre)` (pre-state of all non-key
//!   attributes — "pre-state values can lead only to a more efficient
//!   ∆-script"),
//! * one **update** schema per *conditional attribute set* `C_op` (the
//!   non-key attributes of `R` referenced by operator `op`'s condition)
//!   plus one for the *non-conditional* set `NC` — all carrying full
//!   pre-state: `∆u_R(Ī, Ā_pre, Ā′_post)` with `Ā′ = Ā ∩ C_op`.
//!
//! Grouping updates this way avoids the exponential blow-up of one
//! schema per attribute subset while keeping the cheap non-conditional
//! path separate from condition-affecting updates.
//!
//! At maintenance time, [`populate`] converts the folded modification
//! log (effective net changes) into instances: an update lands in
//! *every* update schema that covers at least one modified attribute.

use crate::diff::{DiffInstance, DiffSchema};
use idivm_algebra::Plan;
use idivm_reldb::{NetChange, TableChanges};
use idivm_types::{Result, Row, Schema, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Update-diff schema for one attribute group of one base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateGroup {
    /// Non-key column positions (in the base table schema) whose updates
    /// this schema covers (`Ā′ = Ā ∩ C_op`, or `Ā ∩ NC`).
    pub post_attrs: Vec<usize>,
    /// True for the non-conditional group `NC` — updates here never
    /// affect selections, joins, or grouping, which is the cheap path of
    /// the paper's analysis (Section 6, case (a)).
    pub non_conditional: bool,
}

/// All i-diff schemas of one base table.
#[derive(Debug, Clone)]
pub struct TableDiffSchemas {
    /// Positions of the primary-key columns.
    pub key: Vec<usize>,
    /// Positions of the non-key columns.
    pub non_key: Vec<usize>,
    /// Update groups (conditional sets first, `NC` last when nonempty).
    pub updates: Vec<UpdateGroup>,
    arity: usize,
}

impl TableDiffSchemas {
    /// The single insert schema `∆⁺_R(Ī, Ā_post)`.
    pub fn insert_schema(&self) -> DiffSchema {
        DiffSchema::insert(&self.key, self.arity)
    }

    /// The single delete schema `∆−_R(Ī, Ā_pre)`.
    pub fn delete_schema(&self) -> DiffSchema {
        DiffSchema::delete(&self.key, &self.non_key)
    }

    /// The update schema of group `g`: `∆u_R(Ī, Ā_pre, Ā′_post)`.
    pub fn update_schema(&self, g: &UpdateGroup) -> DiffSchema {
        DiffSchema::update(&self.key, &self.non_key, &g.post_attrs)
    }
}

/// i-diff schemas for every base table of a view, generated at view
/// definition time.
#[derive(Debug, Clone, Default)]
pub struct BaseDiffSchemas {
    /// Table name → its schemas.
    pub tables: HashMap<String, TableDiffSchemas>,
}

/// Generate the base-table i-diff schemas for a view plan (paper
/// Section 5's schema generator). `catalog` maps table name → schema.
///
/// # Errors
/// Malformed plans.
pub fn generate(plan: &Plan, catalog: &HashMap<String, Schema>) -> Result<BaseDiffSchemas> {
    // 1. Collect conditional attribute sets per operator, expressed as
    //    (table, base column) pairs via provenance.
    let mut cond_sets: Vec<BTreeSet<(String, usize)>> = Vec::new();
    collect_conditions(plan, &mut cond_sets)?;

    // 2. Per table: conditional groups (deduped) + the NC remainder.
    let mut out = BaseDiffSchemas::default();
    for (_, table) in plan.scans() {
        let schema = match catalog.get(table) {
            Some(s) => s,
            None => continue,
        };
        let key = schema.key().to_vec();
        let non_key = schema.non_key();
        let mut groups: Vec<UpdateGroup> = Vec::new();
        let mut conditional_attrs: BTreeSet<usize> = BTreeSet::new();
        let mut seen_sets: BTreeSet<Vec<usize>> = BTreeSet::new();
        for set in &cond_sets {
            let local: Vec<usize> = set
                .iter()
                .filter(|(t, _)| t == table)
                .map(|(_, c)| *c)
                .filter(|c| !key.contains(c)) // keys are immutable
                .collect();
            if local.is_empty() || !seen_sets.insert(local.clone()) {
                continue;
            }
            conditional_attrs.extend(local.iter().copied());
            groups.push(UpdateGroup {
                post_attrs: local,
                non_conditional: false,
            });
        }
        let nc: Vec<usize> = non_key
            .iter()
            .copied()
            .filter(|c| !conditional_attrs.contains(c))
            .collect();
        if !nc.is_empty() {
            groups.push(UpdateGroup {
                post_attrs: nc,
                non_conditional: true,
            });
        }
        out.tables.insert(
            table.to_string(),
            TableDiffSchemas {
                key,
                non_key,
                updates: groups,
                arity: schema.arity(),
            },
        );
    }
    Ok(out)
}

/// Collect the conditional attribute set `C_op` of every operator, as
/// base-table provenance pairs. Selections, join conditions (keys and
/// residuals), (anti)semijoin conditions, and grouping columns all
/// count — an update touching any of them can change *which* tuples the
/// operator emits, not just their values.
fn collect_conditions(
    plan: &Plan,
    out: &mut Vec<BTreeSet<(String, usize)>>,
) -> Result<()> {
    match plan {
        Plan::Scan { .. } => {}
        Plan::Select { input, pred } => {
            out.push(origins_of(input, &pred.columns()));
            collect_conditions(input, out)?;
        }
        Plan::Project { input, .. } => {
            collect_conditions(input, out)?;
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        }
        | Plan::LeftOuterJoin {
            left,
            right,
            on,
            residual,
        }
        | Plan::SemiJoin {
            left,
            right,
            on,
            residual,
        }
        | Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let mut set = BTreeSet::new();
            let la = left.arity();
            for &(l, r) in on {
                set.extend(origins_of(left, &[l].into_iter().collect()));
                set.extend(origins_of(right, &[r].into_iter().collect()));
            }
            if let Some(res) = residual {
                let cols = res.columns();
                let lcols: BTreeSet<usize> = cols.iter().copied().filter(|&c| c < la).collect();
                let rcols: BTreeSet<usize> = cols
                    .iter()
                    .copied()
                    .filter(|&c| c >= la)
                    .map(|c| c - la)
                    .collect();
                set.extend(origins_of(left, &lcols));
                set.extend(origins_of(right, &rcols));
            }
            if !set.is_empty() {
                out.push(set);
            }
            collect_conditions(left, out)?;
            collect_conditions(right, out)?;
        }
        Plan::UnionAll { left, right } => {
            collect_conditions(left, out)?;
            collect_conditions(right, out)?;
        }
        Plan::GroupBy { input, keys, .. } => {
            out.push(origins_of(input, &keys.iter().copied().collect()));
            collect_conditions(input, out)?;
        }
    }
    Ok(())
}

/// Resolve output columns of `node` to their base (table, column)
/// origins (columns without provenance contribute nothing — they are
/// computed and cannot be directly updated).
fn origins_of(node: &Plan, cols: &BTreeSet<usize>) -> BTreeSet<(String, usize)> {
    let out_cols = node.output_cols();
    let scans: HashMap<&str, &str> = node.scans().into_iter().collect();
    cols.iter()
        .filter_map(|&c| {
            out_cols[c].origin.as_ref().and_then(|o| {
                scans
                    .get(o.alias.as_str())
                    .map(|t| (t.to_string(), o.column))
            })
        })
        .collect()
}

/// Populate i-diff instances from the effective net changes of one
/// table (Section 5's instance generator). Updates are added to every
/// update schema covering at least one modified attribute.
pub fn populate(
    schemas: &TableDiffSchemas,
    changes: &TableChanges,
) -> Vec<DiffInstance> {
    let mut inserts: Vec<Row> = Vec::new();
    let mut deletes: Vec<Row> = Vec::new();
    let mut per_group: BTreeMap<usize, Vec<Row>> = BTreeMap::new();
    for change in changes.values() {
        match change {
            NetChange::Inserted { post } => {
                let mut v: Vec<Value> =
                    schemas.key.iter().map(|&c| post[c].clone()).collect();
                v.extend(schemas.non_key.iter().map(|&c| post[c].clone()));
                inserts.push(Row(v));
            }
            NetChange::Deleted { pre } => {
                let mut v: Vec<Value> =
                    schemas.key.iter().map(|&c| pre[c].clone()).collect();
                v.extend(schemas.non_key.iter().map(|&c| pre[c].clone()));
                deletes.push(Row(v));
            }
            NetChange::Updated { pre, post } => {
                let changed: BTreeSet<usize> = (0..pre.arity())
                    .filter(|&c| pre[c] != post[c])
                    .collect();
                for (gi, g) in schemas.updates.iter().enumerate() {
                    if g.post_attrs.iter().any(|c| changed.contains(c)) {
                        let mut v: Vec<Value> =
                            schemas.key.iter().map(|&c| pre[c].clone()).collect();
                        v.extend(schemas.non_key.iter().map(|&c| pre[c].clone()));
                        v.extend(g.post_attrs.iter().map(|&c| post[c].clone()));
                        per_group.entry(gi).or_default().push(Row(v));
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    if !inserts.is_empty() {
        out.push(DiffInstance::new(schemas.insert_schema(), inserts));
    }
    if !deletes.is_empty() {
        out.push(DiffInstance::new(schemas.delete_schema(), deletes));
    }
    for (gi, rows) in per_group {
        out.push(DiffInstance::new(
            schemas.update_schema(&schemas.updates[gi]),
            rows,
        ));
    }
    out
}

/// Convenience: the insert-diff layout note — schemas are relative to
/// the base table's own column order, which matches the scan node's
/// output order, so instances feed scan nodes positionally unchanged.
pub fn layout_matches_scan(_schema: &Schema) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_algebra::PlanBuilder;
    use idivm_types::{row, ColumnType, Key};

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "parts".to_string(),
            Schema::from_pairs(
                &[
                    ("pid", ColumnType::Str),
                    ("price", ColumnType::Int),
                    ("weight", ColumnType::Int),
                ],
                &["pid"],
            )
            .unwrap(),
        );
        m.insert(
            "devices".to_string(),
            Schema::from_pairs(
                &[("did", ColumnType::Str), ("category", ColumnType::Str)],
                &["did"],
            )
            .unwrap(),
        );
        m.insert(
            "devices_parts".to_string(),
            Schema::from_pairs(
                &[("did", ColumnType::Str), ("pid", ColumnType::Str)],
                &["did", "pid"],
            )
            .unwrap(),
        );
        m
    }

    fn running_example_plan(cat: &HashMap<String, Schema>) -> Plan {
        PlanBuilder::scan(cat, "parts")
            .unwrap()
            .join(
                PlanBuilder::scan(cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .join(
                PlanBuilder::scan(cat, "devices").unwrap(),
                &[("devices_parts.did", "devices.did")],
            )
            .unwrap()
            .select_eq("devices.category", "phone")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn conditional_vs_nonconditional_split() {
        let cat = catalog();
        let plan = running_example_plan(&cat);
        let gen = generate(&plan, &cat).unwrap();
        // devices.category is conditional (selection); parts.price and
        // parts.weight are non-conditional.
        let devices = &gen.tables["devices"];
        assert_eq!(devices.updates.len(), 1);
        assert!(!devices.updates[0].non_conditional);
        assert_eq!(devices.updates[0].post_attrs, vec![1]); // category

        let parts = &gen.tables["parts"];
        assert_eq!(parts.updates.len(), 1);
        assert!(parts.updates[0].non_conditional);
        assert_eq!(parts.updates[0].post_attrs, vec![1, 2]); // price, weight

        // devices_parts has only key columns: no update schemas at all.
        let dp = &gen.tables["devices_parts"];
        assert!(dp.updates.is_empty());
    }

    #[test]
    fn group_by_keys_are_conditional() {
        let cat = catalog();
        let plan = PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .group_by(
                &["parts.weight"],
                &[(idivm_algebra::AggFunc::Sum, "parts.price", "total")],
            )
            .unwrap()
            .build()
            .unwrap();
        let gen = generate(&plan, &cat).unwrap();
        let parts = &gen.tables["parts"];
        // weight is conditional (grouping), price non-conditional.
        assert_eq!(parts.updates.len(), 2);
        let cond = parts.updates.iter().find(|g| !g.non_conditional).unwrap();
        assert_eq!(cond.post_attrs, vec![2]);
        let nc = parts.updates.iter().find(|g| g.non_conditional).unwrap();
        assert_eq!(nc.post_attrs, vec![1]);
    }

    #[test]
    fn populate_routes_updates_to_covering_groups() {
        let cat = catalog();
        let plan = running_example_plan(&cat);
        let gen = generate(&plan, &cat).unwrap();
        let parts = &gen.tables["parts"];
        let mut changes = TableChanges::new();
        changes.insert(
            Key(vec![Value::str("P1")]),
            NetChange::Updated {
                pre: row!["P1", 10, 100],
                post: row!["P1", 11, 100],
            },
        );
        let diffs = populate(parts, &changes);
        assert_eq!(diffs.len(), 1);
        let d = &diffs[0];
        assert_eq!(d.schema.kind, crate::diff::DiffKind::Update);
        // Layout: [pid, price_pre, weight_pre, price_post, weight_post].
        assert_eq!(d.rows, vec![row!["P1", 10, 100, 11, 100]]);
    }

    #[test]
    fn populate_emits_inserts_and_deletes() {
        let cat = catalog();
        let plan = running_example_plan(&cat);
        let gen = generate(&plan, &cat).unwrap();
        let parts = &gen.tables["parts"];
        let mut changes = TableChanges::new();
        changes.insert(
            Key(vec![Value::str("P9")]),
            NetChange::Inserted {
                post: row!["P9", 90, 900],
            },
        );
        changes.insert(
            Key(vec![Value::str("P1")]),
            NetChange::Deleted {
                pre: row!["P1", 10, 100],
            },
        );
        let diffs = populate(parts, &changes);
        assert_eq!(diffs.len(), 2);
        let kinds: BTreeSet<char> =
            diffs.iter().map(|d| d.schema.kind.symbol()).collect();
        assert_eq!(kinds, ['+', '-'].into_iter().collect());
    }
}
