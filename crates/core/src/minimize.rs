//! Pass 4 — semantic minimization (paper Figure 8).
//!
//! Figure 8 lists rewrite rules justified by the effectiveness
//! constraints `C1: ∆⁺_R ⊆ R`, `C2: π_Ī∆−_R ∩ π_ĪR = ∅`, and
//! `C3: π_{Ī,Ā″}∆u_R ⋉_Ī R ⊆ π_{Ī,Ā″}R`:
//!
//! | composed query                    | minimized form                |
//! |-----------------------------------|-------------------------------|
//! | `∆⁺ ⋉_Ī σφ R`                     | `σφ(X̄_post) ∆⁺`               |
//! | `∆u ⋉_Ī σφ R` (X̄ ⊆ Ā″)           | `σφ(X̄_post) ∆u`               |
//! | `∆− ⋉_Ī σφ R`                     | `∅`                           |
//! | `∆⁺ ▷_Ī σφ R`                     | `σ¬φ(X̄_post) ∆⁺`              |
//! | `∆− ▷_Ī σφ R`                     | `∆−`                          |
//! | `∆⁺ ⋈_Ī R` / `∆u ⋈_Ī R`           | `∆⁺` / `∆u`                   |
//! | `∆− ⋈_Ī R`                        | `∅`                           |
//!
//! In this implementation the rules of [`crate::rules`] are *functions*,
//! so minimization is realized as a decision inside each rule: when
//! [`RuleCtx::minimize`](crate::rules::RuleCtx) is set and the diff
//! carries the values a probe would fetch, the rule answers from the
//! diff (the right column above); otherwise it executes the composed
//! probing form (the left column). Results are identical — tests assert
//! it — but the general forms pay base accesses, which is exactly the
//! >50 % cost gap the paper attributes to this pass.
//!
//! This module names the rewrites so the ∆-script renderer and the
//! ablation benches can report which ones fired.

/// The Figure-8 rewrite families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rewrite {
    /// `∆⁺ ⋉ σφR → σφ(X̄post)∆⁺`: filter insert diffs locally.
    InsertFilterLocal,
    /// `∆u ⋉ σφR → σφ(X̄post)∆u` (condition covered by the update).
    UpdateFilterLocal,
    /// `∆− ⋉ σφR → ∅` / pre-state filter of delete diffs.
    DeleteFilterLocal,
    /// `∆ ⋈_Ī R → ∆`: pass diffs through joins on their own IDs.
    JoinPassThrough,
    /// `∆⁺ ▷ σφR → σ¬φ(X̄post)∆⁺` and the antisemijoin family.
    AntiJoinLocal,
}

impl Rewrite {
    /// All rewrite families, for enumeration in reports.
    pub const ALL: [Rewrite; 5] = [
        Rewrite::InsertFilterLocal,
        Rewrite::UpdateFilterLocal,
        Rewrite::DeleteFilterLocal,
        Rewrite::JoinPassThrough,
        Rewrite::AntiJoinLocal,
    ];

    /// Human-readable description (used by the ∆-script renderer).
    pub fn describe(self) -> &'static str {
        match self {
            Rewrite::InsertFilterLocal => {
                "∆⁺ ⋉ σφ(X̄)R → σφ(X̄_post)∆⁺ (filter insert diffs without probing)"
            }
            Rewrite::UpdateFilterLocal => {
                "∆u ⋉ σφ(X̄)R → σφ(X̄_post)∆u, X̄ ⊆ Ā″ (filter update diffs locally)"
            }
            Rewrite::DeleteFilterLocal => {
                "∆− ⋉ σφ(X̄)R → ∅ (deleted tuples are gone from R)"
            }
            Rewrite::JoinPassThrough => {
                "∆ ⋈_Ī R → ∆ (diffs keyed by their own IDs skip the join)"
            }
            Rewrite::AntiJoinLocal => {
                "∆⁺ ▷ σφ(X̄)R → σ¬φ(X̄_post)∆⁺ (negation filtered locally)"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rewrites_described() {
        for r in Rewrite::ALL {
            assert!(!r.describe().is_empty());
        }
        assert_eq!(Rewrite::ALL.len(), 5);
    }
}
