//! The self-healing maintenance supervisor.
//!
//! PR 3 made a single maintenance round *atomic*: any mid-round error
//! rolls every view, cache, and index back to its pre-round state and
//! preserves the modification log. This module adds the layer above a
//! round that decides *what to do next*. A [`MaintenanceSupervisor`]
//! wraps any engine implementing [`SupervisedEngine`] (`IdIvm`,
//! `TupleIvm`, `Sdbt`) and drives the pending modification log to
//! convergence with an escalation ladder:
//!
//! 1. **Classify** the typed error: [`Error::retryable`] separates
//!    transient faults (injected transients, budget overruns) from
//!    permanent ones (poison diffs, schema/plan/internal errors).
//! 2. **Retry** transient failures with deterministic exponential
//!    backoff plus seeded jitter ([`BackoffPolicy`]). Time is a
//!    *virtual tick clock* — no wall clock is consulted, so the
//!    schedule is bit-identical across runs and thread counts.
//! 3. **Bisect** on repeated failure: split the folded change batch in
//!    half (canonical `(table, key)` order) and drive each half as its
//!    own atomic round, recursively, isolating the minimal poison diff
//!    set into a [`QuarantineLog`] while committing the healthy
//!    remainder.
//! 4. **Escalate** to full recompute
//!    ([`RecoveryPolicy::RecomputeOnError`]) when nothing could be
//!    committed incrementally.
//! 5. **Degrade**: if even the recompute fails, surface a
//!    [`SupervisorVerdict::Degraded`] verdict (with the modification
//!    log preserved for manual intervention) instead of panicking.
//!
//! Every decision is recorded in a [`SupervisorReport`]: attempts,
//! backoff schedule, the bisection tree, quarantined diffs, per-attempt
//! access spend, and budget aborts — serializable to JSON next to the
//! per-operator round traces.
//!
//! Bisection drives each half as an independently *committed* round, so
//! it is exact when the net changes are key-independent (each diff's
//! propagation does not read another pending diff's base row — true for
//! the single-table update workloads of the chaos suite). Batches with
//! cross-key reads may commit halves against post-state of the other
//! half; the quarantine set is still minimal with respect to the armed
//! failpoint.
//!
//! The supervisor borrows the engine mutably for the duration of a
//! [`MaintenanceSupervisor::run`] and restores the engine's own fault
//! plan, recovery policy, and budget afterwards: supervision is a
//! wrapper, not a reconfiguration. With a default-configured supervisor
//! and no armed faults, the driven round is byte-identical to calling
//! the engine directly (same access counts, same trace).

use crate::config::EngineConfig;
use crate::engine::{IdIvm, RecoveryPolicy};
use crate::faults::{FaultPlan, RoundBudget};
use crate::report::MaintenanceReport;
use idivm_reldb::{Database, NetChange, TableChanges};
use idivm_types::{Error, Key, Result};
use std::collections::HashMap;

/// The engine surface the supervisor drives. Implemented by `IdIvm`
/// (here), `TupleIvm`, and `Sdbt` (in their own crates). The fault,
/// recovery, and budget knobs the supervisor saves and restores come
/// from the [`EngineConfig`] supertrait.
pub trait SupervisedEngine: EngineConfig {
    /// Stable engine label for reports and JSON.
    fn label(&self) -> &'static str;

    /// Run one atomic maintenance round over an externally folded
    /// change set (must NOT consume the modification log — the
    /// supervisor owns it).
    ///
    /// # Errors
    /// Propagation or application failures, injected faults, budget
    /// overruns.
    fn maintain_with_changes(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport>;
}

impl SupervisedEngine for IdIvm {
    fn label(&self) -> &'static str {
        "id-ivm"
    }

    fn maintain_with_changes(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport> {
        IdIvm::maintain_with_changes(self, db, net)
    }
}

/// Deterministic exponential backoff with seeded jitter on a virtual
/// tick clock. `delay(retry) = min(base · multiplier^retry, max) +
/// splitmix64(seed, retry) mod (jitter + 1)`. No wall clock anywhere:
/// the schedule depends only on the policy fields, so it is identical
/// across runs, machines, and `ParallelConfig` thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-retry delay in virtual ticks.
    pub base_ticks: u64,
    /// Exponential growth factor per retry.
    pub multiplier: u64,
    /// Ceiling on the exponential part.
    pub max_ticks: u64,
    /// Maximum extra jitter ticks (0 disables jitter).
    pub jitter_ticks: u64,
    /// Jitter seed (sweeps use the fault seed so one scenario id
    /// determines the whole schedule).
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ticks: 100,
            multiplier: 2,
            max_ticks: 10_000,
            jitter_ticks: 50,
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// The virtual delay before the 0-based `retry`-th retry.
    pub fn delay(&self, retry: u32) -> u64 {
        let exp = self
            .base_ticks
            .saturating_mul(self.multiplier.saturating_pow(retry))
            .min(self.max_ticks);
        let jitter = if self.jitter_ticks == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(retry).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                % (self.jitter_ticks + 1)
        };
        exp + jitter
    }
}

/// SplitMix64 — the standard 64-bit finalizer, used as a tiny seeded
/// PRF for backoff jitter (no external RNG dependency; deterministic).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Retries of a retryable error per (sub-)batch before escalating
    /// to bisection / quarantine.
    pub max_retries: u32,
    /// Backoff schedule for those retries.
    pub backoff: BackoffPolicy,
    /// Split failing batches in half to isolate poison diffs (step 3
    /// of the ladder). When off, a failing batch quarantines whole.
    pub bisect: bool,
    /// Escalate to [`RecoveryPolicy::RecomputeOnError`] when nothing
    /// could be committed incrementally (step 4).
    pub recompute_fallback: bool,
    /// Per-round access budget imposed on every driven round
    /// (unlimited by default). Overruns are retryable faults.
    pub budget: RoundBudget,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 3,
            backoff: BackoffPolicy::default(),
            bisect: true,
            recompute_fallback: true,
            budget: RoundBudget::unlimited(),
        }
    }
}

impl SupervisorConfig {
    /// Default config with the backoff jitter seeded by `seed` (sweeps
    /// pass the fault seed).
    pub fn seeded(seed: u64) -> Self {
        SupervisorConfig {
            backoff: BackoffPolicy {
                seed,
                ..BackoffPolicy::default()
            },
            ..SupervisorConfig::default()
        }
    }
}

/// How a [`MaintenanceSupervisor::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// The modification log was empty; nothing to do.
    Idle,
    /// Every pending change committed incrementally (possibly after
    /// retries and bisection).
    Converged,
    /// The healthy remainder committed; the minimal poison set is in
    /// the [`QuarantineLog`]. The view equals the oracle on the
    /// committed subset.
    ConvergedQuarantined,
    /// Nothing could be committed incrementally; the view (and caches)
    /// were repaired by full recompute, which reflects *all* pending
    /// base-table changes — including quarantined ones (recompute
    /// reads base post-state and never propagates diffs).
    Recomputed,
    /// Even the recompute escalation failed. No exception is thrown:
    /// the verdict is the signal. The modification log is preserved
    /// for manual intervention.
    Degraded,
}

impl SupervisorVerdict {
    /// Stable lowercase label (JSON, error messages).
    pub fn label(self) -> &'static str {
        match self {
            SupervisorVerdict::Idle => "idle",
            SupervisorVerdict::Converged => "converged",
            SupervisorVerdict::ConvergedQuarantined => "converged_quarantined",
            SupervisorVerdict::Recomputed => "recomputed",
            SupervisorVerdict::Degraded => "degraded",
        }
    }

    /// True iff the database ended the run consistent with its base
    /// tables (everything except [`SupervisorVerdict::Degraded`] —
    /// quarantined rounds are consistent on the committed subset).
    pub fn healthy(self) -> bool {
        self != SupervisorVerdict::Degraded
    }
}

/// One net change the supervisor refused to commit, with the error
/// that condemned it.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// Base table of the quarantined change.
    pub table: String,
    /// Primary key of the quarantined change.
    pub key: Key,
    /// The net change itself (pre/post rows), preserved so an operator
    /// can replay or discard it.
    pub change: NetChange,
    /// Display form of the error that condemned it.
    pub error: String,
}

/// The poison diffs isolated by bisection, in canonical `(table, key)`
/// order.
#[derive(Debug, Clone, Default)]
pub struct QuarantineLog {
    /// Quarantined changes, in canonical order.
    pub entries: Vec<QuarantineEntry>,
}

impl QuarantineLog {
    /// Number of quarantined changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The quarantined `(table, key)` pairs, in canonical order.
    pub fn keys(&self) -> Vec<(String, Key)> {
        self.entries
            .iter()
            .map(|e| (e.table.clone(), e.key.clone()))
            .collect()
    }
}

/// What happened to one node of the bisection tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisectOutcome {
    /// The (sub-)batch committed as one atomic round.
    Committed,
    /// The (sub-)batch kept failing and was split in half.
    Split,
    /// The (sub-)batch was condemned whole (size 1, or bisection off).
    Quarantined,
}

impl BisectOutcome {
    /// Stable lowercase label (JSON).
    pub fn label(self) -> &'static str {
        match self {
            BisectOutcome::Committed => "committed",
            BisectOutcome::Split => "split",
            BisectOutcome::Quarantined => "quarantined",
        }
    }
}

/// One node of the bisection tree, recorded in pre-order (a node's
/// children — the two halves — follow it at `depth + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BisectNode {
    /// Recursion depth (0 = the full batch).
    pub depth: u32,
    /// Net changes in this (sub-)batch.
    pub size: usize,
    /// Backoff retries spent on this node before its outcome.
    pub retries: u32,
    /// How the node ended.
    pub outcome: BisectOutcome,
}

/// Everything a [`MaintenanceSupervisor::run`] decided, for audit and
/// JSON export. Deterministic: the same engine, data, fault plan, and
/// config produce an identical report across runs and thread counts.
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// Engine label (see [`SupervisedEngine::label`]).
    pub engine: &'static str,
    /// How the run ended.
    pub verdict: SupervisorVerdict,
    /// Engine rounds attempted (including bisection sub-rounds and the
    /// recompute escalation).
    pub attempts: u64,
    /// Backoff retries across all nodes.
    pub retries: u64,
    /// Virtual delay before each retry, in schedule order.
    pub backoff_ticks: Vec<u64>,
    /// Sum of `backoff_ticks` (total virtual time spent waiting).
    pub virtual_elapsed_ticks: u64,
    /// The bisection tree, pre-order. A clean run is a single
    /// `Committed` node of depth 0.
    pub bisection: Vec<BisectNode>,
    /// The condemned diffs.
    pub quarantine: QuarantineLog,
    /// Net changes committed incrementally.
    pub committed_changes: usize,
    /// Access cost (the paper's unit) of each attempt, in attempt
    /// order — failed attempts included (their work was rolled back
    /// but still spent).
    pub attempt_costs: Vec<u64>,
    /// The budget each driven round ran under.
    pub budget: RoundBudget,
    /// Rounds aborted by [`Error::Budget`].
    pub budget_aborts: u64,
    /// True iff the run hit the total virtual-tick deadline
    /// ([`RoundBudget::max_ticks`]): the retry/backoff ladder was
    /// abandoned and the run escalated straight to the recompute path,
    /// with the typed [`Error::Budget`] cause appended to `errors`.
    pub deadline_exceeded: bool,
    /// Display form of every error observed, in order.
    pub errors: Vec<String>,
    /// The committed report of the last successful round (carries the
    /// round trace when tracing is enabled), if any.
    pub last_round: Option<MaintenanceReport>,
    /// When the driven state was rebuilt by crash recovery before this
    /// run, the durability layer stamps the source here (e.g.
    /// `"checkpoint 3 + 12 wal records"`). `None` for an ordinary
    /// in-memory run.
    pub recovered_from: Option<String>,
}

impl SupervisorReport {
    fn new(engine: &'static str, budget: RoundBudget) -> Self {
        SupervisorReport {
            engine,
            verdict: SupervisorVerdict::Idle,
            attempts: 0,
            retries: 0,
            backoff_ticks: Vec::new(),
            virtual_elapsed_ticks: 0,
            bisection: Vec::new(),
            quarantine: QuarantineLog::default(),
            committed_changes: 0,
            attempt_costs: Vec::new(),
            budget,
            budget_aborts: 0,
            deadline_exceeded: false,
            errors: Vec::new(),
            last_round: None,
            recovered_from: None,
        }
    }

    /// Total access cost across all attempts.
    pub fn total_accesses(&self) -> u64 {
        self.attempt_costs.iter().sum()
    }

    /// Serialize to a JSON object (hand-rolled, like the trace layer —
    /// schema in `EXPERIMENTS.md`).
    pub fn to_json(&self) -> String {
        let bisection: Vec<String> = self
            .bisection
            .iter()
            .map(|n| {
                format!(
                    "{{\"depth\": {}, \"size\": {}, \"retries\": {}, \"outcome\": \"{}\"}}",
                    n.depth,
                    n.size,
                    n.retries,
                    n.outcome.label()
                )
            })
            .collect();
        let quarantine: Vec<String> = self
            .quarantine
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"table\": \"{}\", \"key\": \"{}\", \"error\": \"{}\"}}",
                    json_escape(&e.table),
                    json_escape(&format!("{:?}", e.key)),
                    json_escape(&e.error)
                )
            })
            .collect();
        let errors: Vec<String> = self
            .errors
            .iter()
            .map(|e| format!("\"{}\"", json_escape(e)))
            .collect();
        let ticks: Vec<String> = self.backoff_ticks.iter().map(u64::to_string).collect();
        let costs: Vec<String> = self.attempt_costs.iter().map(u64::to_string).collect();
        format!(
            "{{\"engine\": \"{}\", \"verdict\": \"{}\", \"attempts\": {}, \"retries\": {}, \
             \"backoff_ticks\": [{}], \"virtual_elapsed_ticks\": {}, \
             \"budget_max_accesses\": {}, \"budget_aborts\": {}, \
             \"budget_max_ticks\": {}, \"deadline_exceeded\": {}, \
             \"committed_changes\": {}, \"attempt_costs\": [{}], \
             \"bisection\": [{}], \"quarantine\": [{}], \"errors\": [{}], \
             \"recovered_from\": {}}}",
            self.engine,
            self.verdict.label(),
            self.attempts,
            self.retries,
            ticks.join(", "),
            self.virtual_elapsed_ticks,
            self.budget
                .max_accesses
                .map_or("null".to_string(), |m| m.to_string()),
            self.budget_aborts,
            self.budget
                .max_ticks
                .map_or("null".to_string(), |m| m.to_string()),
            self.deadline_exceeded,
            self.committed_changes,
            costs.join(", "),
            bisection.join(", "),
            quarantine.join(", "),
            errors.join(", "),
            self.recovered_from
                .as_deref()
                .map_or("null".to_string(), |s| format!("\"{}\"", json_escape(s)))
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Drives an engine's pending modification log to convergence with the
/// retry → bisect → quarantine → recompute → degrade escalation ladder
/// (module docs). Borrows the engine for the run and restores its
/// fault plan, recovery policy, and budget afterwards.
pub struct MaintenanceSupervisor<'e, E: SupervisedEngine + ?Sized> {
    engine: &'e mut E,
    config: SupervisorConfig,
}

impl<'e, E: SupervisedEngine + ?Sized> MaintenanceSupervisor<'e, E> {
    /// Wrap `engine` under `config`.
    pub fn new(engine: &'e mut E, config: SupervisorConfig) -> Self {
        MaintenanceSupervisor { engine, config }
    }

    /// Fold the modification log and drive it to convergence. Never
    /// returns `Err` and never panics: failure modes end in a
    /// [`SupervisorVerdict`] (`Degraded` at worst). The log is cleared
    /// on every healthy verdict and preserved on `Degraded`.
    pub fn run(&mut self, db: &mut Database) -> SupervisorReport {
        let net = db.fold_log();
        let report = self.run_with_changes(db, &net);
        if report.verdict != SupervisorVerdict::Idle && report.verdict.healthy() {
            db.clear_log();
        }
        report
    }

    /// Drive an externally folded change set to convergence (the
    /// multi-view scheduler composes each view's pending net itself).
    /// The modification log is untouched — the caller owns it; clear
    /// the corresponding pending changes on any healthy, non-idle
    /// verdict, exactly as [`MaintenanceSupervisor::run`] does with the
    /// database log.
    pub fn run_with_changes(
        &mut self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
    ) -> SupervisorReport {
        let mut report = SupervisorReport::new(self.engine.label(), self.config.budget);
        if net.is_empty() {
            return report;
        }
        // The supervisor owns the ladder: recovery stays `Abort` while
        // it drives (escalation is *its* decision), the budget is its
        // config, and the engine's own knobs come back at the end.
        let saved = (
            self.engine.faults(),
            self.engine.recovery(),
            self.engine.budget(),
        );
        let base_plan = saved.0;
        self.engine.set_recovery(RecoveryPolicy::Abort);
        self.engine.set_budget(self.config.budget);

        // Canonical flat batch: deterministic bisection splits for any
        // HashMap iteration order or thread count.
        let mut flat: Vec<(String, Key, NetChange)> = Vec::new();
        for (table, changes) in net {
            for (key, change) in changes {
                flat.push((table.clone(), key.clone(), change.clone()));
            }
        }
        flat.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));

        let committed = self.drive(db, &mut report, &flat, 0, base_plan);
        report.committed_changes = committed;

        report.verdict = if report.quarantine.is_empty() {
            SupervisorVerdict::Converged
        } else if committed == 0 && self.config.recompute_fallback {
            self.recompute_escalation(db, &mut report, net, base_plan)
        } else {
            SupervisorVerdict::ConvergedQuarantined
        };
        self.engine.set_faults(saved.0);
        self.engine.set_recovery(saved.1);
        self.engine.set_budget(saved.2);
        report
    }

    /// Step 4 of the ladder: nothing committed incrementally — repair
    /// by full recompute, which reads base post-state directly and so
    /// cannot be poisoned by diff-level faults.
    fn recompute_escalation(
        &mut self,
        db: &mut Database,
        report: &mut SupervisorReport,
        net: &HashMap<String, TableChanges>,
        base_plan: FaultPlan,
    ) -> SupervisorVerdict {
        self.engine.set_recovery(RecoveryPolicy::RecomputeOnError);
        // No budget on the last resort: a recompute bounded tighter
        // than the incremental round would degrade spuriously.
        self.engine.set_budget(RoundBudget::unlimited());
        self.engine.set_faults(base_plan.for_attempt(report.attempts));
        report.attempts += 1;
        let before = db.stats().snapshot();
        let res = self.engine.maintain_with_changes(db, net);
        report
            .attempt_costs
            .push(db.stats().snapshot().since(&before).total());
        match res {
            Ok(round) => {
                let verdict = if round.recovered {
                    SupervisorVerdict::Recomputed
                } else {
                    // The fault healed (or never fired on this path):
                    // the round committed incrementally after all.
                    report.committed_changes = net.values().map(TableChanges::len).sum();
                    SupervisorVerdict::Converged
                };
                report.last_round = Some(round);
                verdict
            }
            Err(e) => {
                report.errors.push(e.to_string());
                SupervisorVerdict::Degraded
            }
        }
    }

    /// Steps 1–3 of the ladder for one (sub-)batch: attempt, retry
    /// with backoff while the error is retryable, then split or
    /// quarantine. Returns the number of net changes committed.
    fn drive(
        &mut self,
        db: &mut Database,
        report: &mut SupervisorReport,
        batch: &[(String, Key, NetChange)],
        depth: u32,
        base_plan: FaultPlan,
    ) -> usize {
        let net = to_net(batch);
        let mut retries_here = 0u32;
        loop {
            // Healing faults see the *global* attempt index: virtual
            // time moves forward monotonically across the whole run.
            self.engine.set_faults(base_plan.for_attempt(report.attempts));
            report.attempts += 1;
            let before = db.stats().snapshot();
            let res = self.engine.maintain_with_changes(db, &net);
            report
                .attempt_costs
                .push(db.stats().snapshot().since(&before).total());
            let e = match res {
                Ok(round) => {
                    report.bisection.push(BisectNode {
                        depth,
                        size: batch.len(),
                        retries: retries_here,
                        outcome: BisectOutcome::Committed,
                    });
                    report.last_round = Some(round);
                    return batch.len();
                }
                Err(e) => e,
            };
            if matches!(e, Error::Budget(_)) {
                report.budget_aborts += 1;
            }
            let retryable = e.retryable();
            report.errors.push(e.to_string());
            if retryable && retries_here < self.config.max_retries && !report.deadline_exceeded {
                let delay = self.config.backoff.delay(retries_here);
                if self
                    .config
                    .budget
                    .max_ticks
                    .is_none_or(|max| report.virtual_elapsed_ticks + delay <= max)
                {
                    report.backoff_ticks.push(delay);
                    report.virtual_elapsed_ticks += delay;
                    report.retries += 1;
                    retries_here += 1;
                    continue;
                }
                // Total virtual-tick deadline hit: abandon the
                // retry/backoff ladder everywhere (bisection halves
                // would only re-enter it) so the run falls through to
                // quarantine and, with nothing committed, the
                // recompute escalation — a firehose tick is never
                // stalled by a pathological backoff schedule.
                report.deadline_exceeded = true;
                report.errors.push(
                    Error::Budget(format!(
                        "virtual-tick deadline: next backoff of {delay} ticks would exceed \
                         max_ticks {} (elapsed {})",
                        self.config.budget.max_ticks.unwrap_or(0),
                        report.virtual_elapsed_ticks
                    ))
                    .to_string(),
                );
            }
            if self.config.bisect && batch.len() > 1 && !report.deadline_exceeded {
                report.bisection.push(BisectNode {
                    depth,
                    size: batch.len(),
                    retries: retries_here,
                    outcome: BisectOutcome::Split,
                });
                let mid = batch.len() / 2;
                let left = self.drive(db, report, &batch[..mid], depth + 1, base_plan);
                let right = self.drive(db, report, &batch[mid..], depth + 1, base_plan);
                return left + right;
            }
            report.bisection.push(BisectNode {
                depth,
                size: batch.len(),
                retries: retries_here,
                outcome: BisectOutcome::Quarantined,
            });
            for (table, key, change) in batch {
                report.quarantine.entries.push(QuarantineEntry {
                    table: table.clone(),
                    key: key.clone(),
                    change: change.clone(),
                    error: e.to_string(),
                });
            }
            return 0;
        }
    }
}

/// Rebuild the per-table change map of one (sub-)batch.
fn to_net(batch: &[(String, Key, NetChange)]) -> HashMap<String, TableChanges> {
    let mut net: HashMap<String, TableChanges> = HashMap::new();
    for (table, key, change) in batch {
        net.entry(table.clone())
            .or_default()
            .insert(key.clone(), change.clone());
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKnobs;
    use std::cell::RefCell;

    /// A scripted engine: fails according to a poison-key set and a
    /// transient countdown, so the ladder logic is testable without a
    /// real propagation spine.
    struct Scripted {
        /// Keys whose presence in a batch fails the round permanently.
        poison: Vec<Key>,
        /// Number of leading attempts that fail transiently.
        transient_failures: u64,
        attempts: RefCell<u64>,
        committed: RefCell<Vec<Vec<Key>>>,
        knobs: EngineKnobs,
    }

    impl Scripted {
        fn new(poison: Vec<Key>, transient_failures: u64) -> Self {
            Scripted {
                poison,
                transient_failures,
                attempts: RefCell::new(0),
                committed: RefCell::new(Vec::new()),
                knobs: EngineKnobs::default(),
            }
        }
    }

    impl EngineConfig for Scripted {
        fn knobs(&self) -> &EngineKnobs {
            &self.knobs
        }
        fn knobs_mut(&mut self) -> &mut EngineKnobs {
            &mut self.knobs
        }
    }

    impl SupervisedEngine for Scripted {
        fn label(&self) -> &'static str {
            "scripted"
        }

        fn maintain_with_changes(
            &self,
            _db: &mut Database,
            net: &HashMap<String, TableChanges>,
        ) -> Result<MaintenanceReport> {
            let n = *self.attempts.borrow();
            *self.attempts.borrow_mut() = n + 1;
            if n < self.transient_failures {
                // A recompute repair reads base post-state directly, so
                // it bypasses the diff-path faults this script models.
                if self.knobs.recovery == RecoveryPolicy::RecomputeOnError {
                    return Ok(MaintenanceReport {
                        recovered: true,
                        ..MaintenanceReport::default()
                    });
                }
                return Err(Error::Injected("scripted transient".into()));
            }
            let mut keys: Vec<Key> = net.values().flat_map(|c| c.keys().cloned()).collect();
            keys.sort();
            if keys.iter().any(|k| self.poison.contains(k)) {
                if self.knobs.recovery == RecoveryPolicy::RecomputeOnError {
                    return Ok(MaintenanceReport {
                        recovered: true,
                        ..MaintenanceReport::default()
                    });
                }
                return Err(Error::Poison("scripted poison".into()));
            }
            self.committed.borrow_mut().push(keys);
            Ok(MaintenanceReport::default())
        }
    }

    fn seeded_db(n: usize) -> Database {
        use idivm_types::{Column, ColumnType, Schema, Value};
        let mut db = Database::new();
        let schema = Schema::new(
            vec![
                Column::new("id", ColumnType::Int),
                Column::new("x", ColumnType::Int),
            ],
            &["id"],
        )
        .unwrap();
        db.create_table("t", schema).unwrap();
        for i in 0..n {
            db.insert(
                "t",
                idivm_types::Row::new(vec![Value::Int(i as i64), Value::Int(0)]),
            )
            .unwrap();
        }
        db.clear_log();
        db
    }

    fn touch_all(db: &mut Database, n: usize) {
        use idivm_types::{Value};
        for i in 0..n {
            db.update(
                "t",
                &Key(vec![Value::Int(i as i64)]),
                &[(1, Value::Int(1))],
            )
            .unwrap();
        }
    }

    #[test]
    fn empty_log_is_idle() {
        let mut db = seeded_db(0);
        let mut e = Scripted::new(vec![], 0);
        let r = MaintenanceSupervisor::new(&mut e, SupervisorConfig::default()).run(&mut db);
        assert_eq!(r.verdict, SupervisorVerdict::Idle);
        assert_eq!(r.attempts, 0);
    }

    #[test]
    fn clean_batch_commits_first_try() {
        let mut db = seeded_db(8);
        touch_all(&mut db, 8);
        let mut e = Scripted::new(vec![], 0);
        let r = MaintenanceSupervisor::new(&mut e, SupervisorConfig::default()).run(&mut db);
        assert_eq!(r.verdict, SupervisorVerdict::Converged);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.committed_changes, 8);
        assert!(r.quarantine.is_empty());
        assert_eq!(
            r.bisection,
            vec![BisectNode {
                depth: 0,
                size: 8,
                retries: 0,
                outcome: BisectOutcome::Committed
            }]
        );
        assert!(db.log().is_empty(), "log cleared on convergence");
    }

    #[test]
    fn transient_failures_retried_with_backoff() {
        let mut db = seeded_db(4);
        touch_all(&mut db, 4);
        let mut e = Scripted::new(vec![], 2);
        let cfg = SupervisorConfig::seeded(7);
        let r = MaintenanceSupervisor::new(&mut e, cfg).run(&mut db);
        assert_eq!(r.verdict, SupervisorVerdict::Converged);
        assert_eq!(r.attempts, 3);
        assert_eq!(r.retries, 2);
        assert_eq!(r.backoff_ticks.len(), 2);
        assert_eq!(
            r.backoff_ticks,
            vec![cfg.backoff.delay(0), cfg.backoff.delay(1)]
        );
        assert_eq!(
            r.virtual_elapsed_ticks,
            cfg.backoff.delay(0) + cfg.backoff.delay(1)
        );
        assert!(r.backoff_ticks[1] > r.backoff_ticks[0] / 2, "exponential-ish");
    }

    #[test]
    fn tick_deadline_escalates_to_recompute_with_budget_cause() {
        // A fault that never heals plus a generous retry allowance
        // would normally climb a long backoff ladder; the virtual-tick
        // deadline cuts it short and escalates to recompute.
        let mut db = seeded_db(4);
        touch_all(&mut db, 4);
        let mut e = Scripted::new(vec![], u64::MAX);
        let mut cfg = SupervisorConfig::seeded(7);
        cfg.max_retries = 100;
        cfg.budget = RoundBudget::unlimited().with_max_ticks(cfg.backoff.delay(0) + 1);
        let r = MaintenanceSupervisor::new(&mut e, cfg).run(&mut db);
        assert!(r.deadline_exceeded);
        // One backoff fit under the deadline; the second would not.
        assert_eq!(r.retries, 1);
        assert!(r.virtual_elapsed_ticks <= cfg.budget.max_ticks.unwrap());
        // The typed Error::Budget cause is in the report...
        assert!(
            r.errors.iter().any(|m| m.contains("virtual-tick deadline")),
            "{:?}",
            r.errors
        );
        // ...and the ladder skipped bisection: straight to quarantine,
        // then (nothing committed) the recompute escalation. The
        // scripted engine recomputes successfully under
        // RecomputeOnError, so the run ends Recomputed, not Degraded.
        assert_eq!(r.verdict, SupervisorVerdict::Recomputed);
        assert!(r
            .bisection
            .iter()
            .all(|b| b.outcome != BisectOutcome::Split));
        let j = r.to_json();
        assert!(j.contains("\"deadline_exceeded\": true"), "{j}");
        assert!(j.contains("\"budget_max_ticks\""), "{j}");
    }

    #[test]
    fn deadline_off_by_default_never_interferes() {
        let mut db = seeded_db(4);
        touch_all(&mut db, 4);
        let mut e = Scripted::new(vec![], 2);
        let cfg = SupervisorConfig::seeded(7);
        assert_eq!(cfg.budget.max_ticks, None);
        let r = MaintenanceSupervisor::new(&mut e, cfg).run(&mut db);
        assert_eq!(r.verdict, SupervisorVerdict::Converged);
        assert!(!r.deadline_exceeded);
    }

    #[test]
    fn poison_keys_quarantined_minimally_and_rest_committed() {
        use idivm_types::Value;
        let n = 16;
        let poison: Vec<Key> = [3i64, 11]
            .iter()
            .map(|&k| Key(vec![Value::Int(k)]))
            .collect();
        let mut db = seeded_db(n);
        touch_all(&mut db, n);
        let mut e = Scripted::new(poison.clone(), 0);
        let r = MaintenanceSupervisor::new(&mut e, SupervisorConfig::default()).run(&mut db);
        assert_eq!(r.verdict, SupervisorVerdict::ConvergedQuarantined);
        assert_eq!(r.quarantine.len(), 2);
        let mut got: Vec<Key> = r.quarantine.entries.iter().map(|q| q.key.clone()).collect();
        got.sort();
        assert_eq!(got, poison);
        assert_eq!(r.committed_changes, n - 2);
        // No retries burned: poison is permanent.
        assert_eq!(r.retries, 0);
        // The bisection tree bottoms out at singletons for the poison
        // keys only.
        let quarantined: Vec<&BisectNode> = r
            .bisection
            .iter()
            .filter(|b| b.outcome == BisectOutcome::Quarantined)
            .collect();
        assert!(quarantined.iter().all(|b| b.size == 1));
        assert_eq!(quarantined.len(), 2);
        assert!(db.log().is_empty(), "log cleared on quarantine-commit");
        // Every committed sub-batch was poison-free.
        assert!(e
            .committed
            .borrow()
            .iter()
            .all(|b| b.iter().all(|k| !poison.contains(k))));
    }

    #[test]
    fn all_poison_escalates_to_recompute() {
        use idivm_types::Value;
        let mut db = seeded_db(4);
        touch_all(&mut db, 4);
        let poison: Vec<Key> = (0..4).map(|k| Key(vec![Value::Int(k)])).collect();
        let mut e = Scripted::new(poison, 0);
        let r = MaintenanceSupervisor::new(&mut e, SupervisorConfig::default()).run(&mut db);
        assert_eq!(r.verdict, SupervisorVerdict::Recomputed);
        assert_eq!(r.committed_changes, 0);
        assert_eq!(r.quarantine.len(), 4);
        assert!(db.log().is_empty(), "log cleared after recompute repair");
        // Engine knobs restored.
        assert_eq!(e.knobs.recovery, RecoveryPolicy::Abort);
    }

    #[test]
    fn unrecoverable_engine_degrades_without_panicking() {
        struct Dead {
            knobs: EngineKnobs,
        }
        impl EngineConfig for Dead {
            fn knobs(&self) -> &EngineKnobs {
                &self.knobs
            }
            fn knobs_mut(&mut self) -> &mut EngineKnobs {
                &mut self.knobs
            }
        }
        impl SupervisedEngine for Dead {
            fn label(&self) -> &'static str {
                "dead"
            }
            fn maintain_with_changes(
                &self,
                _db: &mut Database,
                _net: &HashMap<String, TableChanges>,
            ) -> Result<MaintenanceReport> {
                Err(Error::Internal("scripted catastrophe".into()))
            }
        }
        let mut db = seeded_db(4);
        touch_all(&mut db, 4);
        let mut e = Dead {
            knobs: EngineKnobs::default(),
        };
        let r = MaintenanceSupervisor::new(&mut e, SupervisorConfig::default()).run(&mut db);
        assert_eq!(r.verdict, SupervisorVerdict::Degraded);
        assert!(!r.verdict.healthy());
        assert!(!db.log().is_empty(), "log preserved for intervention");
        // Internal errors are permanent: no retry was attempted on the
        // way down, and every change was condemned before escalation.
        assert_eq!(r.retries, 0);
        assert_eq!(r.quarantine.len(), 4);
    }

    #[test]
    fn backoff_is_deterministic_and_seed_sensitive() {
        let a = BackoffPolicy {
            seed: 1,
            ..BackoffPolicy::default()
        };
        let b = BackoffPolicy {
            seed: 2,
            ..BackoffPolicy::default()
        };
        let s1: Vec<u64> = (0..6).map(|i| a.delay(i)).collect();
        let s2: Vec<u64> = (0..6).map(|i| a.delay(i)).collect();
        let s3: Vec<u64> = (0..6).map(|i| b.delay(i)).collect();
        assert_eq!(s1, s2, "same seed, same schedule");
        assert_ne!(s1, s3, "different seed, different jitter");
        // The exponential part dominates and caps at max_ticks.
        let exp_only = BackoffPolicy {
            jitter_ticks: 0,
            ..BackoffPolicy::default()
        };
        assert_eq!(exp_only.delay(0), 100);
        assert_eq!(exp_only.delay(1), 200);
        assert_eq!(exp_only.delay(20), exp_only.max_ticks);
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let mut db = seeded_db(4);
        touch_all(&mut db, 4);
        let mut e = Scripted::new(vec![Key(vec![idivm_types::Value::Int(1)])], 0);
        let r = MaintenanceSupervisor::new(&mut e, SupervisorConfig::default()).run(&mut db);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for field in [
            "\"engine\"",
            "\"verdict\"",
            "\"attempts\"",
            "\"backoff_ticks\"",
            "\"bisection\"",
            "\"quarantine\"",
            "\"budget_max_accesses\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(json.contains("converged_quarantined"));
        // Balanced braces (crude well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
    }
}
