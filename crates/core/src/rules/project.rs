//! Rules for generalized projection π_D̄,f(X̄)→c — paper Table 8.
//!
//! The projection may compute functions; Pass 1 guarantees the input's
//! ID columns survive as direct copies, so diff IDs always map through.
//! Update diffs whose touched columns feed a computed output column have
//! the new function value recomputed — from the diff when its columns
//! are covered, by probing `Input_post` otherwise (the general form of
//! Table 8); `σ_isupd` drops diff tuples whose visible output did not
//! actually change.

use crate::access::{self, PathId};
use crate::diff::{DiffInstance, DiffKind, DiffSchema, State};
use crate::rules::common::{child_path, eval_diff, evaluable};
use crate::rules::RuleCtx;
use idivm_algebra::{Expr, Plan};
use idivm_types::{Error, Result, Row, Value};

/// Propagate one diff through a generalized projection.
///
/// # Errors
/// Access failures, or diff IDs dropped by the projection (a Pass-1
/// violation).
pub fn propagate(
    ctx: &RuleCtx<'_>,
    cols: &[(String, Expr)],
    input: &Plan,
    path: &PathId,
    diff: DiffInstance,
) -> Result<Vec<DiffInstance>> {
    let in_arity = input.arity();
    let out_arity = cols.len();
    // Map each input ID column of the diff to its output position.
    let map_id = |c: usize| -> Result<usize> {
        cols.iter()
            .position(|(_, e)| matches!(e, Expr::Col(i) if *i == c))
            .ok_or_else(|| {
                Error::Plan(format!(
                    "projection drops diff ID column #{c}; ensure_ids must run first"
                ))
            })
    };
    let out_ids: Vec<usize> = diff
        .schema
        .id_cols
        .iter()
        .map(|&c| map_id(c))
        .collect::<Result<_>>()?;

    match diff.schema.kind {
        DiffKind::Insert => {
            // Project the full post rows through every expression.
            let node_ids = idivm_algebra::infer_ids(&Plan::Project {
                input: Box::new(input.clone()),
                cols: cols.to_vec(),
            })?;
            let mut rows = Vec::with_capacity(diff.rows.len());
            for d in &diff.rows {
                let full = diff
                    .schema
                    .full_row(d, in_arity, State::Post)
                    .ok_or_else(|| {
                        Error::Internal("insert diff lacks full coverage".into())
                    })?;
                let vals: Vec<Value> = cols
                    .iter()
                    .map(|(_, e)| e.eval(&full))
                    .collect::<Result<_>>()?;
                rows.push(Row(vals));
            }
            Ok(vec![DiffInstance::insert_from_rows(
                &node_ids, out_arity, &rows,
            )])
        }
        DiffKind::Delete => {
            // Carry pre-state for every output column computable from
            // the diff's pre values (Table 8's blue portion).
            let pre_outs: Vec<usize> = (0..out_arity)
                .filter(|&o| {
                    !out_ids.contains(&o) && evaluable(&diff.schema, &cols[o].1, State::Pre)
                })
                .collect();
            let schema = DiffSchema::delete(&out_ids, &pre_outs);
            let mut rows = Vec::with_capacity(diff.rows.len());
            for d in &diff.rows {
                let mut v: Vec<Value> = diff
                    .schema
                    .id_cols
                    .iter()
                    .map(|&c| {
                        diff.schema.pre_value(d, c).ok_or_else(|| {
                            Error::Internal(format!("delete diff lacks id column {c}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                for &o in &pre_outs {
                    v.push(eval_diff(&diff.schema, d, &cols[o].1, State::Pre, in_arity)?);
                }
                rows.push(Row(v));
            }
            Ok(vec![DiffInstance::new(schema, rows)])
        }
        DiffKind::Update => {
            // Output columns whose expression reads an updated input
            // column must be re-emitted with new values.
            let touched: Vec<usize> = (0..out_arity)
                .filter(|&o| {
                    !out_ids.contains(&o)
                        && cols[o]
                            .1
                            .columns()
                            .iter()
                            .any(|c| diff.schema.post_cols.contains(c))
                })
                .collect();
            if touched.is_empty() {
                // The update is invisible through this projection.
                return Ok(vec![]);
            }
            let pre_outs: Vec<usize> = (0..out_arity)
                .filter(|&o| {
                    !out_ids.contains(&o) && evaluable(&diff.schema, &cols[o].1, State::Pre)
                })
                .collect();
            let all_evaluable = touched
                .iter()
                .all(|&o| evaluable(&diff.schema, &cols[o].1, State::Post));
            let schema = DiffSchema::update(&out_ids, &pre_outs, &touched);
            let mut rows = Vec::with_capacity(diff.rows.len());
            let _ = ctx; // projection needs no minimize distinction
            if all_evaluable {
                for d in &diff.rows {
                    rows.push(build_update_row(
                        &diff.schema,
                        d,
                        cols,
                        &pre_outs,
                        &touched,
                        in_arity,
                    )?);
                }
            } else {
                // General form: probe Input_post (and Input_pre for the
                // carried pre values) by the diff IDs; one output diff
                // row per affected input row, at full input-ID
                // granularity is unnecessary — the probed rows share the
                // diff's Ī′ values, and their computed outputs may vary,
                // so emit per input row keyed by the *projected* input
                // IDs.
                let node_ids = idivm_algebra::infer_ids(&Plan::Project {
                    input: Box::new(input.clone()),
                    cols: cols.to_vec(),
                })?;
                let fine = DiffSchema::update(&node_ids, &[], &touched);
                let ipath = child_path(path, 0);
                let mut fine_rows = Vec::new();
                for d in &diff.rows {
                    let probe = diff.schema.id_key(d);
                    for post in access::lookup(
                        ctx.access,
                        input,
                        &ipath,
                        State::Post,
                        &diff.schema.id_cols,
                        &probe,
                    )? {
                        let projected = Row(
                            cols.iter()
                                .map(|(_, e)| e.eval(&post))
                                .collect::<Result<Vec<_>>>()?,
                        );
                        let mut v: Vec<Value> = fine
                            .id_cols
                            .iter()
                            .map(|&o| projected[o].clone())
                            .collect();
                        v.extend(fine.post_cols.iter().map(|&o| projected[o].clone()));
                        fine_rows.push(Row(v));
                    }
                }
                return Ok(vec![DiffInstance::new(fine, fine_rows)]);
            }
            // σ_isupd: drop rows where every touched output column kept
            // its pre value (when the pre value is known).
            let s2 = schema.clone();
            rows.retain(|r| {
                touched.iter().any(|&o| {
                    match (s2.pre_value(r, o), s2.post_value(r, o)) {
                        (Some(pre), Some(post)) => pre != post,
                        _ => true,
                    }
                })
            });
            Ok(vec![DiffInstance::new(schema, rows)])
        }
    }
}

fn build_update_row(
    in_schema: &DiffSchema,
    d: &Row,
    cols: &[(String, Expr)],
    pre_outs: &[usize],
    touched: &[usize],
    in_arity: usize,
) -> Result<Row> {
    let mut v: Vec<Value> = in_schema
        .id_cols
        .iter()
        .map(|&c| {
            in_schema
                .pre_value(d, c)
                .ok_or_else(|| Error::Internal(format!("update diff lacks id column {c}")))
        })
        .collect::<Result<_>>()?;
    for &o in pre_outs {
        v.push(eval_diff(in_schema, d, &cols[o].1, State::Pre, in_arity)?);
    }
    for &o in touched {
        v.push(eval_diff(in_schema, d, &cols[o].1, State::Post, in_arity)?);
    }
    Ok(Row(v))
}
