//! Rules for grouping/aggregation γ_Ḡ,f(X̄)→c — paper Tables 7, 9 and 11.
//!
//! Two strategies, chosen per maintenance round:
//!
//! * **Incremental (blocking)** — Tables 9 (SUM) and 11 (COUNT): all
//!   incoming diffs are folded into per-input-row *delta* contributions
//!   (`x∆`), grouped by `Ḡ`, then converted to output update i-diffs by
//!   joining with `Output` (the node's materialization):
//!   `∆u_V = π_{Ḡ, c→c_pre, c+c∆→c_post}(Output ⋈ γ_{Ḡ,sum(x∆)}(∆₁∪∆₂∪∆₃))`.
//!   Applicable when every aggregate is SUM/COUNT and no update touches
//!   the group columns (the operator is *blocking*: it needs the whole
//!   diff batch — paper Example 4.4).
//! * **General (non-blocking)** — Table 7: recompute every affected
//!   group from `Input_post` (`γ(∆ ⋉_Ḡ Input_post)`). Works for any
//!   aggregate (MIN/MAX/AVG included) at the price of re-reading the
//!   affected groups.
//!
//! Both strategies extend the paper's rules with **group creation and
//! deletion** (the tables say "do not handle group creation/deletion"):
//! groups absent from `Output` are emitted as insert i-diffs, groups
//! whose member set became empty as delete i-diffs. Without this the
//! rules are only correct for workloads that never create or empty a
//! group — the restriction under which the paper evaluates.

use crate::access::{self, PathId};
use crate::diff::{DiffInstance, DiffKind, DiffSchema, State};
use crate::rules::common::{child_path, delete_rows, insert_rows, untouched, update_row_pairs};
use crate::rules::{IncomingDiff, RuleCtx};
use idivm_algebra::aggregate::{aggregate_rows, ExtremumDelta, ExtremumOutcome};
use idivm_algebra::{AggFunc, AggSpec, Plan};
use idivm_exec::partition::{run_sharded, shard_by, stable_hash_key};
use idivm_types::{Error, Key, Result, Row, Value};
use std::collections::{BTreeSet, HashMap};

/// Propagate a batch of diffs through a group-by.
///
/// # Errors
/// Fails when the node has no materialization to serve `Output`
/// (the engine always provides one), or on access failures.
pub fn propagate(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    input: &Plan,
    keys: &[usize],
    aggs: &[AggSpec],
    path: &PathId,
    incoming: Vec<IncomingDiff>,
) -> Result<Vec<DiffInstance>> {
    if !ctx.access.caches.contains_key(path) {
        return Err(Error::Unsupported(
            "aggregate operators require their output to be materialized \
             (as the view or an intermediate cache) so rules can consult \
             `Output`"
                .into(),
        ));
    }
    let group_cols: BTreeSet<usize> = keys.iter().copied().collect();
    let groups_stable = incoming.iter().all(|inc| {
        inc.diff.schema.kind != DiffKind::Update || untouched(&inc.diff.schema, &group_cols)
    });
    let incremental_ok = aggs
        .iter()
        .all(|a| a.func.is_incremental() && a.func != AggFunc::Avg)
        && groups_stable;
    // The extremum strategy covers MIN/MAX (mixed with SUM/COUNT):
    // inserts and non-extremum removals fold like deltas; only a
    // removal of the stored extremum marks the group dirty and forces
    // one member rescan. AVG stays on the general path (its finish is
    // a division, not a delta), as do group-column updates.
    let extremum_ok = aggs.iter().all(|a| {
        a.func.is_invertible() && a.func != AggFunc::Avg
            || matches!(a.func, AggFunc::Min | AggFunc::Max)
    }) && aggs
        .iter()
        .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max))
        && groups_stable;
    if incremental_ok {
        incremental(ctx, node, input, keys, aggs, path, &incoming)
    } else if extremum_ok {
        extremum(ctx, node, input, keys, aggs, path, &incoming)
    } else {
        general(ctx, node, input, keys, aggs, path, &incoming)
    }
}

// ---------------------------------------------------------------------
// Incremental strategy (Tables 9 and 11)
// ---------------------------------------------------------------------

/// Per-input-row delta contribution, keyed by the input's full ID.
struct Delta {
    group: Key,
    /// Per aggregate: (value delta, count-of-rows delta).
    per_agg: Vec<Value>,
    /// +1 for inserts, −1 for deletes, 0 for updates: used to detect
    /// possibly-emptied groups.
    membership: i64,
}

fn incremental(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    input: &Plan,
    keys: &[usize],
    aggs: &[AggSpec],
    path: &PathId,
    incoming: &[IncomingDiff],
) -> Result<Vec<DiffInstance>> {
    let ipath = child_path(path, 0);
    let input_ids = idivm_algebra::infer_ids(input)?;
    let in_arity = input.arity();
    let mut deltas: Vec<Delta> = Vec::new();
    if let Some(cache) = ctx.access.caches.get(&ipath) {
        // Cached input: the engine has already applied the child diffs
        // to the cache, and the apply recorded the actual per-row net
        // changes — the paper's UPDATE-RETURNING optimization ("∆u_Vspj
        // is obtained without additional accesses over cache
        // modification costs", Appendix A.2). Deriving the deltas from
        // the recorded changes costs zero accesses and is immune to
        // dummy diff tuples (dummies modified nothing).
        if let Some(changes) = ctx.access.cache_changes.get(cache.as_str()) {
            for change in changes.values() {
                match change {
                    idivm_reldb::NetChange::Updated { pre, post } => {
                        if pre.key(keys) == post.key(keys) {
                            deltas.push(Delta {
                                group: post.key(keys),
                                per_agg: aggs
                                    .iter()
                                    .map(|a| delta_update(a, pre, post))
                                    .collect::<Result<_>>()?,
                                membership: 0,
                            });
                        } else {
                            // The row moved between groups: −x at the
                            // old group, +x at the new one.
                            deltas.push(Delta {
                                group: pre.key(keys),
                                per_agg: aggs
                                    .iter()
                                    .map(|a| delta_delete(a, pre))
                                    .collect::<Result<_>>()?,
                                membership: -1,
                            });
                            deltas.push(Delta {
                                group: post.key(keys),
                                per_agg: aggs
                                    .iter()
                                    .map(|a| delta_insert(a, post))
                                    .collect::<Result<_>>()?,
                                membership: 1,
                            });
                        }
                    }
                    idivm_reldb::NetChange::Deleted { pre } => deltas.push(Delta {
                        group: pre.key(keys),
                        per_agg: aggs
                            .iter()
                            .map(|a| delta_delete(a, pre))
                            .collect::<Result<_>>()?,
                        membership: -1,
                    }),
                    idivm_reldb::NetChange::Inserted { post } => deltas.push(Delta {
                        group: post.key(keys),
                        per_agg: aggs
                            .iter()
                            .map(|a| delta_insert(a, post))
                            .collect::<Result<_>>()?,
                        membership: 1,
                    }),
                }
            }
        }
    } else {
        // No cache: materialize the affected input rows by probing the
        // input subview — "without cache both approaches would perform
        // identically" (Section 6.2). Dedupe by input ID within each
        // diff kind (effective diffs agree on final values).
        let mut seen: HashMap<(u8, Key), ()> = HashMap::new();
        for inc in incoming {
            let diff = &inc.diff;
            match diff.schema.kind {
                DiffKind::Update => {
                    // ∆₁ = π_{Ī, x_post − x_pre → x∆}(∆u ⋈ Input_pre)
                    for p in
                        update_row_pairs(ctx.access, input, &ipath, &input_ids, diff)?
                    {
                        let id = p.post.key(&input_ids);
                        if seen.insert((b'u', id), ()).is_some() {
                            continue;
                        }
                        deltas.push(Delta {
                            group: p.post.key(keys),
                            per_agg: aggs
                                .iter()
                                .map(|a| delta_update(a, &p.pre, &p.post))
                                .collect::<Result<_>>()?,
                            membership: 0,
                        });
                    }
                }
                DiffKind::Delete => {
                    // ∆₂ = π_{Ī, 0 − x_pre → x∆}(∆− ⋈ Input_pre)
                    for pre in delete_rows(ctx.access, input, &ipath, diff)? {
                        let id = pre.key(&input_ids);
                        if seen.insert((b'-', id), ()).is_some() {
                            continue;
                        }
                        deltas.push(Delta {
                            group: pre.key(keys),
                            per_agg: aggs
                                .iter()
                                .map(|a| delta_delete(a, &pre))
                                .collect::<Result<_>>()?,
                            membership: -1,
                        });
                    }
                }
                DiffKind::Insert => {
                    // ∆₃ = π_{Ī, x → x∆}(∆⁺ ▷ Input_pre): skip rows that
                    // already existed identically in the pre-state
                    // (repeated assertions of the same insert).
                    for post in insert_rows(diff, in_arity) {
                        let id = post.key(&input_ids);
                        if seen.insert((b'+', id.clone()), ()).is_some() {
                            continue;
                        }
                        let pre_hit = access::lookup(
                            ctx.access,
                            input,
                            &ipath,
                            State::Pre,
                            &input_ids,
                            &id,
                        )?;
                        if pre_hit.contains(&post) {
                            continue;
                        }
                        deltas.push(Delta {
                            group: post.key(keys),
                            per_agg: aggs
                                .iter()
                                .map(|a| delta_insert(a, &post))
                                .collect::<Result<_>>()?,
                            membership: 1,
                        });
                    }
                }
            }
        }
    }
    // γ_{Ḡ,sum(x∆)}: aggregate the deltas per group. Delta folding is
    // cross-row and stays serial; the per-group emission below is the
    // parallelizable part.
    let mut groups: HashMap<Key, GroupDelta> = HashMap::new();
    for d in deltas {
        let g = groups.entry(d.group).or_insert_with(|| GroupDelta {
            per_agg: vec![Value::Int(0); aggs.len()],
            had_delete: false,
        });
        for (slot, v) in g.per_agg.iter_mut().zip(&d.per_agg) {
            *slot = slot.add(v);
        }
        if d.membership < 0 {
            g.had_delete = true;
        }
    }
    let mut entries: Vec<(Key, GroupDelta)> = groups.into_iter().collect();
    // Sort for deterministic emission order: `HashMap` iteration order
    // varies per process, and the sharded runner needs a canonical
    // serial order to be compared against.
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    emit_group_diffs(ctx, node, input, keys, aggs, path, entries)
}

/// Net delta of one group across all contributions.
struct GroupDelta {
    per_agg: Vec<Value>,
    had_delete: bool,
}

fn delta_update(a: &AggSpec, pre: &Row, post: &Row) -> Result<Value> {
    Ok(match a.func {
        AggFunc::Sum => {
            let xp = nz(a.arg.eval(post)?);
            let xq = nz(a.arg.eval(pre)?);
            xp.sub(&xq)
        }
        AggFunc::Count => {
            let p = i64::from(!a.arg.eval(post)?.is_null());
            let q = i64::from(!a.arg.eval(pre)?.is_null());
            Value::Int(p - q)
        }
        _ => Value::Int(0),
    })
}

fn delta_delete(a: &AggSpec, pre: &Row) -> Result<Value> {
    Ok(match a.func {
        AggFunc::Sum => Value::Int(0).sub(&nz(a.arg.eval(pre)?)),
        AggFunc::Count => Value::Int(-i64::from(!a.arg.eval(pre)?.is_null())),
        _ => Value::Int(0),
    })
}

fn delta_insert(a: &AggSpec, post: &Row) -> Result<Value> {
    Ok(match a.func {
        AggFunc::Sum => nz(a.arg.eval(post)?),
        AggFunc::Count => Value::Int(i64::from(!a.arg.eval(post)?.is_null())),
        _ => Value::Int(0),
    })
}

/// SUM treats NULL contributions as 0 in delta space.
fn nz(v: Value) -> Value {
    if v.is_null() {
        Value::Int(0)
    } else {
        v
    }
}

// ---------------------------------------------------------------------
// Extremum strategy (MIN/MAX with dirty-group rescan fallback)
// ---------------------------------------------------------------------

/// Per-group state folded by the extremum strategy: numeric deltas for
/// the SUM/COUNT slots, [`ExtremumDelta`] trackers for the MIN/MAX
/// slots.
struct ExtGroup {
    nums: Vec<Value>,
    exts: Vec<ExtremumDelta>,
    had_delete: bool,
}

/// One input-row event, in fold form.
enum Ev<'a> {
    Ins(&'a Row),
    Del(&'a Row),
    Upd(&'a Row, &'a Row),
}

fn ext_fold(g: &mut ExtGroup, aggs: &[AggSpec], ev: &Ev<'_>) -> Result<()> {
    for (i, a) in aggs.iter().enumerate() {
        if matches!(a.func, AggFunc::Min | AggFunc::Max) {
            match ev {
                Ev::Ins(post) => g.exts[i].insert(a.func, &a.arg.eval(post)?),
                Ev::Del(pre) => g.exts[i].remove(a.func, &a.arg.eval(pre)?),
                Ev::Upd(pre, post) => {
                    g.exts[i].remove(a.func, &a.arg.eval(pre)?);
                    g.exts[i].insert(a.func, &a.arg.eval(post)?);
                }
            }
        } else {
            let d = match ev {
                Ev::Ins(post) => delta_insert(a, post)?,
                Ev::Del(pre) => delta_delete(a, pre)?,
                Ev::Upd(pre, post) => delta_update(a, pre, post)?,
            };
            g.nums[i] = g.nums[i].add(&d);
        }
    }
    if matches!(ev, Ev::Del(_)) {
        g.had_delete = true;
    }
    Ok(())
}

/// MIN/MAX (mixed with SUM/COUNT) without giving up delta maintenance:
/// inserts and removals of non-extremum members resolve from the stored
/// group row alone; only a removal (or worsening update) of the stored
/// extremum marks the group **dirty** and triggers one counted member
/// rescan from `Input_post`. SUM/COUNT slots ride along as deltas and
/// reuse the rescan's members when the group is dirty anyway.
fn extremum(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    input: &Plan,
    keys: &[usize],
    aggs: &[AggSpec],
    path: &PathId,
    incoming: &[IncomingDiff],
) -> Result<Vec<DiffInstance>> {
    let ipath = child_path(path, 0);
    let input_ids = idivm_algebra::infer_ids(input)?;
    let in_arity = input.arity();
    let mut groups: HashMap<Key, ExtGroup> = HashMap::new();
    let n_aggs = aggs.len();
    let fresh = move || ExtGroup {
        nums: vec![Value::Int(0); n_aggs],
        exts: vec![ExtremumDelta::default(); n_aggs],
        had_delete: false,
    };
    if let Some(cache) = ctx.access.caches.get(&ipath) {
        // Cached input: fold the recorded per-row net changes — zero
        // accesses, immune to dummies (see `incremental`).
        if let Some(changes) = ctx.access.cache_changes.get(cache.as_str()) {
            for change in changes.values() {
                match change {
                    idivm_reldb::NetChange::Updated { pre, post } => {
                        if pre.key(keys) == post.key(keys) {
                            let g = groups.entry(post.key(keys)).or_insert_with(fresh);
                            ext_fold(g, aggs, &Ev::Upd(pre, post))?;
                        } else {
                            let g = groups.entry(pre.key(keys)).or_insert_with(fresh);
                            ext_fold(g, aggs, &Ev::Del(pre))?;
                            let g = groups.entry(post.key(keys)).or_insert_with(fresh);
                            ext_fold(g, aggs, &Ev::Ins(post))?;
                        }
                    }
                    idivm_reldb::NetChange::Deleted { pre } => {
                        let g = groups.entry(pre.key(keys)).or_insert_with(fresh);
                        ext_fold(g, aggs, &Ev::Del(pre))?;
                    }
                    idivm_reldb::NetChange::Inserted { post } => {
                        let g = groups.entry(post.key(keys)).or_insert_with(fresh);
                        ext_fold(g, aggs, &Ev::Ins(post))?;
                    }
                }
            }
        }
    } else {
        // No cache: materialize the affected input rows by probing the
        // input subview, deduped by input ID per diff kind (as in
        // `incremental`).
        let mut seen: HashMap<(u8, Key), ()> = HashMap::new();
        for inc in incoming {
            let diff = &inc.diff;
            match diff.schema.kind {
                DiffKind::Update => {
                    for p in update_row_pairs(ctx.access, input, &ipath, &input_ids, diff)? {
                        if seen.insert((b'u', p.post.key(&input_ids)), ()).is_some() {
                            continue;
                        }
                        let g = groups.entry(p.post.key(keys)).or_insert_with(fresh);
                        ext_fold(g, aggs, &Ev::Upd(&p.pre, &p.post))?;
                    }
                }
                DiffKind::Delete => {
                    for pre in delete_rows(ctx.access, input, &ipath, diff)? {
                        if seen.insert((b'-', pre.key(&input_ids)), ()).is_some() {
                            continue;
                        }
                        let g = groups.entry(pre.key(keys)).or_insert_with(fresh);
                        ext_fold(g, aggs, &Ev::Del(&pre))?;
                    }
                }
                DiffKind::Insert => {
                    for post in insert_rows(diff, in_arity) {
                        let id = post.key(&input_ids);
                        if seen.insert((b'+', id.clone()), ()).is_some() {
                            continue;
                        }
                        let pre_hit = access::lookup(
                            ctx.access,
                            input,
                            &ipath,
                            State::Pre,
                            &input_ids,
                            &id,
                        )?;
                        if pre_hit.contains(&post) {
                            continue;
                        }
                        let g = groups.entry(post.key(keys)).or_insert_with(fresh);
                        ext_fold(g, aggs, &Ev::Ins(&post))?;
                    }
                }
            }
        }
    }
    let mut entries: Vec<(Key, ExtGroup)> = groups.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    // Per-group conversion. Deliberately **serial** (unlike the other
    // strategies): each dirty group fires the mid-rescan failpoint and
    // bumps the rescan counter through `RuleCtx::on_rescan`, and those
    // must happen in a canonical order for any thread count.
    let out_arity = keys.len() + aggs.len();
    let out_ids: Vec<usize> = (0..keys.len()).collect();
    let out_key_cols: Vec<usize> = (0..keys.len()).collect();
    let agg_cols: Vec<usize> = (keys.len()..out_arity).collect();
    let mut del_rows = Vec::new();
    let mut upd_rows = Vec::new();
    let mut ins_rows = Vec::new();
    for (gk, g) in entries {
        let out_pre = access::lookup(ctx.access, node, path, State::Post, &out_key_cols, &gk)?;
        match out_pre.first() {
            None => {
                // Group creation: the deltas start from empty, so every
                // slot resolves without the stored row.
                let mut r = gk.into_row();
                for (i, a) in aggs.iter().enumerate() {
                    r.0.push(if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                        g.exts[i].created()
                    } else {
                        g.nums[i].clone()
                    });
                }
                ins_rows.push(r);
            }
            Some(old) => {
                let mut dirty = false;
                let mut vals: Vec<Value> = Vec::with_capacity(aggs.len());
                for (i, a) in aggs.iter().enumerate() {
                    if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                        match g.exts[i].resolve(a.func, &old[keys.len() + i]) {
                            ExtremumOutcome::Clean(v) => vals.push(v),
                            ExtremumOutcome::Rescan => {
                                dirty = true;
                                vals.push(Value::Null); // overwritten below
                            }
                        }
                    } else {
                        vals.push(old[keys.len() + i].add(&g.nums[i]));
                    }
                }
                if dirty || g.had_delete {
                    // One member lookup serves both the emptiness check
                    // and the dirty recompute. The failpoint fires
                    // *before* the lookup: an aborted round must roll
                    // back with the rescan unperformed.
                    if dirty {
                        ctx.on_rescan()?;
                    }
                    let members =
                        access::lookup(ctx.access, input, &ipath, State::Post, keys, &gk)?;
                    if members.is_empty() {
                        del_rows.push(gk.into_row());
                        continue;
                    }
                    if dirty {
                        vals = aggs
                            .iter()
                            .map(|a| aggregate_rows(a, &members))
                            .collect::<Result<_>>()?;
                    }
                }
                // σ_isupd: skip groups whose aggregates did not change.
                let changed = vals
                    .iter()
                    .enumerate()
                    .any(|(i, v)| *v != old[keys.len() + i]);
                if changed {
                    let mut r = gk.into_row();
                    r.0.extend(old.0[keys.len()..].iter().cloned());
                    r.0.extend(vals);
                    upd_rows.push(r);
                }
            }
        }
    }
    let mut out = Vec::new();
    if !del_rows.is_empty() {
        out.push(DiffInstance::new(
            DiffSchema::delete(&out_ids, &[]),
            del_rows,
        ));
    }
    if !upd_rows.is_empty() {
        out.push(DiffInstance::new(
            DiffSchema::update(&out_ids, &agg_cols, &agg_cols),
            upd_rows,
        ));
    }
    if !ins_rows.is_empty() {
        out.push(DiffInstance::insert_from_rows(&out_ids, out_arity, &ins_rows));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// General strategy (Table 7)
// ---------------------------------------------------------------------

fn general(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    input: &Plan,
    keys: &[usize],
    aggs: &[AggSpec],
    path: &PathId,
    incoming: &[IncomingDiff],
) -> Result<Vec<DiffInstance>> {
    let ipath = child_path(path, 0);
    let input_ids = idivm_algebra::infer_ids(input)?;
    let in_arity = input.arity();
    // Collect affected group keys (pre and post images).
    let mut affected: BTreeSet<Key> = BTreeSet::new();
    for inc in incoming {
        let diff = &inc.diff;
        let gk_from_diff = |state: State| -> bool {
            let avail = match state {
                State::Pre => diff.schema.pre_available(),
                State::Post => diff.schema.post_available(),
            };
            keys.iter().all(|k| avail.contains(k))
        };
        match diff.schema.kind {
            DiffKind::Insert => {
                for r in insert_rows(diff, in_arity) {
                    affected.insert(r.key(keys));
                }
            }
            DiffKind::Delete => {
                if gk_from_diff(State::Pre) {
                    for d in &diff.rows {
                        let s = diff.schema.scratch_row(d, in_arity, State::Pre);
                        affected.insert(s.key(keys));
                    }
                } else {
                    for r in delete_rows(ctx.access, input, &ipath, diff)? {
                        affected.insert(r.key(keys));
                    }
                }
            }
            DiffKind::Update => {
                if gk_from_diff(State::Pre) && gk_from_diff(State::Post) {
                    for d in &diff.rows {
                        let pre = diff.schema.scratch_row(d, in_arity, State::Pre);
                        let post = diff.schema.scratch_row(d, in_arity, State::Post);
                        affected.insert(pre.key(keys));
                        affected.insert(post.key(keys));
                    }
                } else {
                    for p in
                        update_row_pairs(ctx.access, input, &ipath, &input_ids, diff)?
                    {
                        affected.insert(p.pre.key(keys));
                        affected.insert(p.post.key(keys));
                    }
                }
            }
        }
    }
    // Recompute each affected group from Input_post (γ(∆ ⋉_Ḡ Input_post)).
    // Groups are independent (one member probe + in-memory aggregation
    // each), so the recompute loop fans out over hash-sharded group
    // keys. `affected` iterates in sorted order, and sharding is by
    // stable hash, so the merged order is canonical for any `P`.
    let in_key_cols: Vec<usize> = keys.to_vec();
    let affected: Vec<Key> = affected.into_iter().collect();
    let shards_n = ctx.parallel.effective_shards(affected.len());
    let shards = shard_by(affected, shards_n, stable_hash_key);
    let mut groups: Vec<(Key, Recomputed)> = Vec::new();
    for shard_out in run_sharded(shards, |_, keys_shard: Vec<Key>| {
        let mut out = Vec::with_capacity(keys_shard.len());
        for gk in keys_shard {
            let members = access::lookup(
                ctx.access,
                input,
                &ipath,
                State::Post,
                &in_key_cols,
                &gk,
            )?;
            out.push((
                gk,
                Recomputed {
                    values: if members.is_empty() {
                        None
                    } else {
                        Some(
                            aggs.iter()
                                .map(|a| aggregate_rows(a, &members))
                                .collect::<Result<_>>()?,
                        )
                    },
                },
            ));
        }
        Ok::<_, idivm_types::Error>(out)
    }) {
        groups.extend(shard_out?);
    }
    emit_recomputed(ctx, node, keys, aggs, path, groups)
}

struct Recomputed {
    /// `None` ⇒ the group has no members any more.
    values: Option<Vec<Value>>,
}

fn emit_recomputed(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    keys: &[usize],
    aggs: &[AggSpec],
    path: &PathId,
    groups: Vec<(Key, Recomputed)>,
) -> Result<Vec<DiffInstance>> {
    let out_arity = keys.len() + aggs.len();
    let out_ids: Vec<usize> = (0..keys.len()).collect();
    let out_key_cols: Vec<usize> = (0..keys.len()).collect();
    let agg_cols: Vec<usize> = (keys.len()..out_arity).collect();
    // Per-group emission (one `Output` probe each) fans out over
    // hash-sharded groups; shard outputs merge in shard order.
    let shards_n = ctx.parallel.effective_shards(groups.len());
    let shards = shard_by(groups, shards_n, |(gk, _)| stable_hash_key(gk));
    let mut upd_rows = Vec::new();
    let mut ins_rows = Vec::new();
    let mut del_rows = Vec::new();
    for shard_out in run_sharded(shards, |_, entries: Vec<(Key, Recomputed)>| {
        let mut del = Vec::new();
        let mut upd = Vec::new();
        let mut ins = Vec::new();
        for (gk, rec) in entries {
            // `Output` is always provided in pre-state (Section 4); the
            // node's materialization has not been touched this round, so
            // its physical content *is* the pre-state.
            let out_pre = access::lookup(
                ctx.access,
                node,
                path,
                State::Post,
                &out_key_cols,
                &gk,
            )?;
            match (rec.values, out_pre.first()) {
                (None, Some(_)) => del.push(gk.into_row()),
                (None, None) => {}
                (Some(vals), None) => {
                    let mut r = gk.into_row();
                    r.0.extend(vals);
                    ins.push(r);
                }
                (Some(vals), Some(old)) => {
                    // σ_isupd: skip groups whose aggregates did not
                    // change.
                    let changed = vals
                        .iter()
                        .enumerate()
                        .any(|(i, v)| *v != old[keys.len() + i]);
                    if changed {
                        let mut r = gk.into_row();
                        // pre values then post values.
                        r.0.extend(old.0[keys.len()..].iter().cloned());
                        r.0.extend(vals);
                        upd.push(r);
                    }
                }
            }
        }
        Ok::<_, idivm_types::Error>((del, upd, ins))
    }) {
        let (del, upd, ins) = shard_out?;
        del_rows.extend(del);
        upd_rows.extend(upd);
        ins_rows.extend(ins);
    }
    let mut out = Vec::new();
    if !del_rows.is_empty() {
        out.push(DiffInstance::new(
            DiffSchema::delete(&out_ids, &[]),
            del_rows,
        ));
    }
    if !upd_rows.is_empty() {
        out.push(DiffInstance::new(
            DiffSchema::update(&out_ids, &agg_cols, &agg_cols),
            upd_rows,
        ));
    }
    if !ins_rows.is_empty() {
        out.push(DiffInstance::insert_from_rows(&out_ids, out_arity, &ins_rows));
    }
    Ok(out)
}

/// Emission for the incremental path: join group deltas with `Output`,
/// detect creation (missing group) and deletion (group with delete
/// contributions whose members vanished). The conversion step of Tables
/// 9/11: `c_post = c_pre + c∆`.
fn emit_group_diffs(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    input: &Plan,
    keys: &[usize],
    aggs: &[AggSpec],
    path: &PathId,
    groups: Vec<(Key, GroupDelta)>,
) -> Result<Vec<DiffInstance>> {
    let ipath = child_path(path, 0);
    let out_arity = keys.len() + aggs.len();
    let out_ids: Vec<usize> = (0..keys.len()).collect();
    let out_key_cols: Vec<usize> = (0..keys.len()).collect();
    let agg_cols: Vec<usize> = (keys.len()..out_arity).collect();
    // Per-group conversion (one or two probes each, no cross-group
    // state) fans out over hash-sharded groups; shard outputs merge in
    // shard order.
    let shards_n = ctx.parallel.effective_shards(groups.len());
    let shards = shard_by(groups, shards_n, |(gk, _)| stable_hash_key(gk));
    let mut upd_rows = Vec::new();
    let mut ins_rows = Vec::new();
    let mut del_rows = Vec::new();
    for shard_out in run_sharded(shards, |_, entries: Vec<(Key, GroupDelta)>| {
        let mut del = Vec::new();
        let mut upd = Vec::new();
        let mut ins = Vec::new();
        for (gk, gd) in entries {
            let deltas_row = &gd.per_agg;
            let out_pre = access::lookup(
                ctx.access,
                node,
                path,
                State::Post,
                &out_key_cols,
                &gk,
            )?;
            match out_pre.first() {
                Some(old) => {
                    if gd.had_delete {
                        // The group may have emptied: probe Input_post.
                        let still = access::lookup(
                            ctx.access,
                            input,
                            &ipath,
                            State::Post,
                            keys,
                            &gk,
                        )?;
                        if still.is_empty() {
                            del.push(gk.into_row());
                            continue;
                        }
                    }
                    if deltas_row.iter().all(is_zero) {
                        continue; // σ_isupd
                    }
                    // c_post = c_pre + c∆ per aggregate.
                    let vals: Vec<Value> = deltas_row
                        .iter()
                        .enumerate()
                        .map(|(i, d)| old[keys.len() + i].add(d))
                        .collect();
                    let mut r = gk.into_row();
                    r.0.extend(old.0[keys.len()..].iter().cloned());
                    r.0.extend(vals);
                    upd.push(r);
                }
                None => {
                    // Group creation: the deltas start from empty.
                    let mut r = gk.into_row();
                    r.0.extend(deltas_row.iter().cloned());
                    ins.push(r);
                }
            }
        }
        Ok::<_, idivm_types::Error>((del, upd, ins))
    }) {
        let (del, upd, ins) = shard_out?;
        del_rows.extend(del);
        upd_rows.extend(upd);
        ins_rows.extend(ins);
    }
    let mut out = Vec::new();
    if !del_rows.is_empty() {
        out.push(DiffInstance::new(
            DiffSchema::delete(&out_ids, &[]),
            del_rows,
        ));
    }
    if !upd_rows.is_empty() {
        out.push(DiffInstance::new(
            DiffSchema::update(&out_ids, &agg_cols, &agg_cols),
            upd_rows,
        ));
    }
    if !ins_rows.is_empty() {
        out.push(DiffInstance::insert_from_rows(&out_ids, out_arity, &ins_rows));
    }
    Ok(out)
}

fn is_zero(v: &Value) -> bool {
    matches!(v, Value::Int(0)) || matches!(v, Value::Float(f) if *f == 0.0)
}
