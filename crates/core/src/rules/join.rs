//! Rules for ⋈_φ(X̄) (and × as the key-less special case) — paper
//! Tables 4 and 10.
//!
//! The headline win of ID-based IVM lives here: a delete or
//! condition-free update diff arriving from one side **passes through
//! without touching the other side** (`∆u ⋈_Ī R → ∆u`, `∆− ⋈_Ī R → ∆−`
//! up to renaming — Figure 8), because the output's ID set contains the
//! diff's IDs and the view index finds the affected tuples directly.
//! Tuple-based IVM must perform the joins to reconstruct full view
//! tuples — the `a` accesses per diff tuple of the paper's cost model.
//!
//! Insert diffs and condition-affected updates do probe the other side
//! (there is no way around reading it), exactly as Table 10 prescribes.

use crate::access::{self, PathId};
use crate::diff::{DiffInstance, DiffKind, State};
use crate::rules::common::{child_path, shift_schema, untouched, update_row_pairs};
use crate::rules::RuleCtx;
use idivm_algebra::{Expr, Plan};
use idivm_types::{Key, Result, Row, Value};
use std::collections::BTreeSet;

/// Propagate one diff (from `side`: 0 = left, 1 = right) through a join.
///
/// # Errors
/// Access failures while probing the opposite input.
#[allow(clippy::too_many_arguments)]
pub fn propagate(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    path: &PathId,
    side: usize,
    diff: DiffInstance,
) -> Result<Vec<DiffInstance>> {
    let la = left.arity();
    let ra = right.arity();
    let out_arity = la + ra;
    // Normalize to "diff side" vs "other side".
    let (this, this_path, other, other_path, offset) = if side == 0 {
        (left, child_path(path, 0), right, child_path(path, 1), 0usize)
    } else {
        (right, child_path(path, 1), left, child_path(path, 0), la)
    };
    // Join-condition columns on the diff's side, in the *input* frame.
    let mut cond_cols: BTreeSet<usize> = if side == 0 {
        on.iter().map(|&(l, _)| l).collect()
    } else {
        on.iter().map(|&(_, r)| r).collect()
    };
    if let Some(res) = residual {
        for c in res.columns() {
            let local = if side == 0 {
                (c < la).then_some(c)
            } else {
                (c >= la).then(|| c - la)
            };
            if let Some(c) = local {
                cond_cols.insert(c);
            }
        }
    }

    match diff.schema.kind {
        DiffKind::Insert => {
            // ∆⁺ ⋈φ Input_post_other: probe the other side per inserted
            // row (Table 10). Output: insert diff with full joined rows.
            let rows = crate::rules::common::insert_rows(&diff, this.arity());
            let joined = join_rows(
                ctx, &rows, side, this, other, &other_path, on, residual, la,
            )?;
            let out_ids = out_ids(left, right, la)?;
            Ok(vec![DiffInstance::insert_from_rows(
                &out_ids, out_arity, &joined,
            )])
        }
        DiffKind::Delete => {
            // ∆− passes through: the diff's IDs are part of the output
            // IDs and identify every joined tuple derived from the
            // deleted input rows (Figure 8's `∆− ⋈_Ī R` family).
            Ok(vec![DiffInstance::new(
                shift_schema(&diff.schema, offset),
                diff.rows,
            )])
        }
        DiffKind::Update => {
            if untouched(&diff.schema, &cond_cols) {
                if ctx.minimize {
                    // `∆u ⋈_Ī R → ∆u` (Figure 8): pass through.
                    return Ok(vec![DiffInstance::new(
                        shift_schema(&diff.schema, offset),
                        diff.rows,
                    )]);
                }
                // General (unminimized) form: ∆u ⋈ Input_post_other —
                // reconstruct the affected joined tuples, paying the
                // probes, and emit updates at full granularity. Same
                // result, more accesses; kept for the Pass-4 ablation.
                let pairs = update_row_pairs(
                    ctx.access,
                    this,
                    &this_path,
                    &idivm_algebra::infer_ids(this)?,
                    &diff,
                )?;
                let posts: Vec<Row> = pairs.iter().map(|p| p.post.clone()).collect();
                let joined = join_rows(
                    ctx, &posts, side, this, other, &other_path, on, residual, la,
                )?;
                let out_idset = out_ids(left, right, la)?;
                let post_cols: Vec<usize> =
                    diff.schema.post_cols.iter().map(|c| c + offset).collect();
                let schema = crate::diff::DiffSchema::update(&out_idset, &[], &post_cols);
                let rows = joined
                    .into_iter()
                    .map(|j| {
                        let mut v: Vec<Value> =
                            schema.id_cols.iter().map(|&c| j[c].clone()).collect();
                        v.extend(schema.post_cols.iter().map(|&c| j[c].clone()));
                        Row(v)
                    })
                    .collect();
                return Ok(vec![DiffInstance::new(schema, rows)]);
            }
            // Join condition affected: old matches may dissolve and new
            // matches appear. Expand to materialized pre/post input rows
            // and compute both sides precisely (Table 10's ∆⁺/∆− cases).
            let pairs = update_row_pairs(
                ctx.access,
                this,
                &this_path,
                &idivm_algebra::infer_ids(this)?,
                &diff,
            )?;
            let pres: Vec<Row> = pairs.iter().map(|p| p.pre.clone()).collect();
            let posts: Vec<Row> = pairs.iter().map(|p| p.post.clone()).collect();
            let old_matches = join_rows(
                ctx, &pres, side, this, other, &other_path, on, residual, la,
            )?;
            let new_matches = join_rows(
                ctx, &posts, side, this, other, &other_path, on, residual, la,
            )?;
            let out_idset = out_ids(left, right, la)?;
            // Deletions: old matches whose output ID has no new match.
            let new_keys: BTreeSet<Key> =
                new_matches.iter().map(|r| r.key(&out_idset)).collect();
            let leaving: Vec<Row> = old_matches
                .into_iter()
                .filter(|r| !new_keys.contains(&r.key(&out_idset)))
                .collect();
            let mut out = Vec::new();
            if !leaving.is_empty() {
                out.push(DiffInstance::delete_from_rows(
                    &out_idset, out_arity, &leaving,
                ));
            }
            if !new_matches.is_empty() {
                // New matches carry final values; surviving matches are
                // re-asserted (exact-duplicate inserts are dummies) and
                // value changes on them are covered because the rows are
                // built from post states. Emit as insert+update pair:
                // the update fixes surviving rows in place, the insert
                // adds genuinely new ones.
                let post_cols: Vec<usize> = (0..out_arity)
                    .filter(|c| !out_idset.contains(c))
                    .collect();
                let schema =
                    crate::diff::DiffSchema::update(&out_idset, &[], &post_cols);
                let rows: Vec<Row> = new_matches
                    .iter()
                    .map(|j| {
                        let mut v: Vec<Value> =
                            schema.id_cols.iter().map(|&c| j[c].clone()).collect();
                        v.extend(schema.post_cols.iter().map(|&c| j[c].clone()));
                        Row(v)
                    })
                    .collect();
                out.push(DiffInstance::new(schema, rows));
                out.push(DiffInstance::insert_from_rows(
                    &out_idset, out_arity, &new_matches,
                ));
            }
            Ok(out)
        }
    }
}

/// Join fully materialized rows of one side against the other side's
/// post-state, probing by the join keys (the diff-driven loop).
#[allow(clippy::too_many_arguments)]
fn join_rows(
    ctx: &RuleCtx<'_>,
    rows: &[Row],
    side: usize,
    _this: &Plan,
    other: &Plan,
    other_path: &PathId,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    _la: usize,
) -> Result<Vec<Row>> {
    let (this_keys, other_keys): (Vec<usize>, Vec<usize>) = if side == 0 {
        (
            on.iter().map(|&(l, _)| l).collect(),
            on.iter().map(|&(_, r)| r).collect(),
        )
    } else {
        (
            on.iter().map(|&(_, r)| r).collect(),
            on.iter().map(|&(l, _)| l).collect(),
        )
    };
    let mut out = Vec::new();
    for row in rows {
        let vals: Vec<Value> = this_keys.iter().map(|&c| row[c].clone()).collect();
        if vals.iter().any(Value::is_null) {
            continue;
        }
        let matches = access::lookup(
            ctx.access,
            other,
            other_path,
            State::Post,
            &other_keys,
            &Key(vals),
        )?;
        for m in matches {
            let joined = if side == 0 {
                row.concat(&m)
            } else {
                m.concat(row)
            };
            if idivm_algebra::opt_pred(residual, &joined)? {
                out.push(joined);
            }
        }
    }
    Ok(out)
}

fn out_ids(left: &Plan, right: &Plan, la: usize) -> Result<Vec<usize>> {
    let mut ids = idivm_algebra::infer_ids(left)?;
    ids.extend(idivm_algebra::infer_ids(right)?.into_iter().map(|i| i + la));
    Ok(ids)
}
