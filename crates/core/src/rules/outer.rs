//! Rules for left outer join ⟕ — the NULL-padding extension of the
//! paper's join rules (Table 10).
//!
//! The output schema is `left ++ right` like the inner join, but every
//! left row appears even without a match, NULL-padded across the right
//! columns (including the right ID positions — NULL right IDs *are* the
//! padding marker, and they make the padded row addressable by the
//! combined output ID). The delta rules therefore repair **padding
//! transitions** on top of the inner-join deltas:
//!
//! * an insert on the right can *retract* a previously padded left row
//!   (first match arrives), and
//! * a delete on the right can *re-pad* a left row (last match leaves),
//!
//! both of which the inner-join rules never produce. Left-side deletes
//! and condition-free updates still pass through: the left IDs are a
//! subset of the output IDs and address joined and padded rows alike.

use crate::access::PathId;
use crate::diff::{DiffInstance, DiffKind, State};
use crate::rules::common::{
    child_path, delete_rows, insert_rows, shift_schema, untouched, update_row_pairs,
};
use crate::rules::semi::matching_left;
use crate::rules::RuleCtx;
use idivm_algebra::{Expr, Plan};
use idivm_types::{Key, Result, Row, Value};
use std::collections::BTreeSet;

/// Propagate one diff (from `side`: 0 = left, 1 = right) through a left
/// outer join.
///
/// # Errors
/// Access failures while probing either input.
#[allow(clippy::too_many_arguments)]
pub fn propagate(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    path: &PathId,
    side: usize,
    diff: DiffInstance,
) -> Result<Vec<DiffInstance>> {
    if side == 0 {
        left_side(ctx, left, right, on, residual, path, diff)
    } else {
        right_side(ctx, left, right, on, residual, path, diff)
    }
}

#[allow(clippy::too_many_arguments)]
fn left_side(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    path: &PathId,
    diff: DiffInstance,
) -> Result<Vec<DiffInstance>> {
    let la = left.arity();
    let ra = right.arity();
    let out_arity = la + ra;
    let lpath = child_path(path, 0);
    let rpath = child_path(path, 1);
    // Left condition columns: join keys + left part of the residual.
    let mut cond: BTreeSet<usize> = on.iter().map(|&(l, _)| l).collect();
    if let Some(res) = residual {
        cond.extend(res.columns().into_iter().filter(|&c| c < la));
    }
    match diff.schema.kind {
        DiffKind::Insert => {
            // Each inserted left row yields its joined rows, or one
            // padded row when nothing matches.
            let rows = insert_rows(&diff, la);
            let mut out_rows = Vec::new();
            for l in &rows {
                out_rows.extend(outer_outputs(
                    ctx,
                    l,
                    right,
                    &rpath,
                    on,
                    residual,
                    State::Post,
                    ra,
                )?);
            }
            let out_idset = out_ids(left, right, la)?;
            Ok(vec![DiffInstance::insert_from_rows(
                &out_idset, out_arity, &out_rows,
            )])
        }
        DiffKind::Delete => {
            // ∆− passes through: the left IDs identify every output row
            // derived from the deleted left rows — joined and padded
            // alike (padded rows carry the same left-ID values).
            Ok(vec![diff])
        }
        DiffKind::Update => {
            if untouched(&diff.schema, &cond) {
                if ctx.minimize {
                    // Condition-free: matching and padding status cannot
                    // change, so the update passes through in place.
                    return Ok(vec![diff]);
                }
                // General form: reconstruct the affected output rows
                // (joined or padded) and emit updates at full
                // granularity — same result, more accesses.
                let pairs = update_row_pairs(
                    ctx.access,
                    left,
                    &lpath,
                    &idivm_algebra::infer_ids(left)?,
                    &diff,
                )?;
                let mut post_out = Vec::new();
                for p in &pairs {
                    post_out.extend(outer_outputs(
                        ctx,
                        &p.post,
                        right,
                        &rpath,
                        on,
                        residual,
                        State::Post,
                        ra,
                    )?);
                }
                let out_idset = out_ids(left, right, la)?;
                let schema = crate::diff::DiffSchema::update(
                    &out_idset,
                    &[],
                    &diff.schema.post_cols,
                );
                let rows = post_out
                    .iter()
                    .map(|j| {
                        let mut v: Vec<Value> =
                            schema.id_cols.iter().map(|&c| j[c].clone()).collect();
                        v.extend(schema.post_cols.iter().map(|&c| j[c].clone()));
                        Row(v)
                    })
                    .collect();
                return Ok(vec![DiffInstance::new(schema, rows)]);
            }
            // Condition affected: old matches may dissolve (the row may
            // become padded) and new matches appear (retracting its
            // padding). Compute both output sets and diff them.
            let pairs = update_row_pairs(
                ctx.access,
                left,
                &lpath,
                &idivm_algebra::infer_ids(left)?,
                &diff,
            )?;
            let mut pre_out = Vec::new();
            let mut post_out = Vec::new();
            for p in &pairs {
                pre_out.extend(outer_outputs(
                    ctx, &p.pre, right, &rpath, on, residual, State::Pre, ra,
                )?);
                post_out.extend(outer_outputs(
                    ctx, &p.post, right, &rpath, on, residual, State::Post, ra,
                )?);
            }
            let out_idset = out_ids(left, right, la)?;
            Ok(emit_transition(pre_out, post_out, &out_idset, out_arity))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn right_side(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    path: &PathId,
    diff: DiffInstance,
) -> Result<Vec<DiffInstance>> {
    let la = left.arity();
    let ra = right.arity();
    let lpath = child_path(path, 0);
    let rpath = child_path(path, 1);
    // Right condition columns (in the right input's frame).
    let mut cond: BTreeSet<usize> = on.iter().map(|&(_, r)| r).collect();
    if let Some(res) = residual {
        cond.extend(
            res.columns()
                .into_iter()
                .filter(|&c| c >= la)
                .map(|c| c - la),
        );
    }
    match diff.schema.kind {
        DiffKind::Insert => {
            // A first match retracts a left row's padding; further
            // matches just add joined rows. Both fall out of
            // recomputing the affected left rows' outer outputs.
            let rows = insert_rows(&diff, ra);
            let affected = matching_left(ctx, left, &lpath, on, residual, &rows, la)?;
            transition_for(ctx, left, right, &rpath, on, residual, affected, la, ra)
        }
        DiffKind::Delete => {
            // Losing the last match re-pads the left row.
            let rows = delete_rows(ctx.access, right, &rpath, &diff)?;
            let affected = matching_left(ctx, left, &lpath, on, residual, &rows, la)?;
            transition_for(ctx, left, right, &rpath, on, residual, affected, la, ra)
        }
        DiffKind::Update => {
            if untouched(&diff.schema, &cond) {
                // Only right values changed: padded rows carry no right
                // values, and the shifted IDs address exactly the
                // joined rows (padded rows' NULL right IDs never equal
                // a real right ID).
                return Ok(vec![DiffInstance::new(
                    shift_schema(&diff.schema, la),
                    diff.rows,
                )]);
            }
            // Matching may change in both directions.
            let pairs = update_row_pairs(
                ctx.access,
                right,
                &rpath,
                &idivm_algebra::infer_ids(right)?,
                &diff,
            )?;
            let pre_rows: Vec<Row> = pairs.iter().map(|p| p.pre.clone()).collect();
            let post_rows: Vec<Row> = pairs.iter().map(|p| p.post.clone()).collect();
            let mut affected =
                matching_left(ctx, left, &lpath, on, residual, &pre_rows, la)?;
            let seen: BTreeSet<Row> = affected.iter().cloned().collect();
            for l in matching_left(ctx, left, &lpath, on, residual, &post_rows, la)? {
                if !seen.contains(&l) {
                    affected.push(l);
                }
            }
            transition_for(ctx, left, right, &rpath, on, residual, affected, la, ra)
        }
    }
}

/// Recompute the pre- and post-state outer outputs of the affected left
/// rows and emit the transition diffs.
#[allow(clippy::too_many_arguments)]
fn transition_for(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    rpath: &PathId,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    affected: Vec<Row>,
    la: usize,
    ra: usize,
) -> Result<Vec<DiffInstance>> {
    let out_idset = out_ids(left, right, la)?;
    let mut pre_out = Vec::new();
    let mut post_out = Vec::new();
    for l in &affected {
        pre_out.extend(outer_outputs(
            ctx, l, right, rpath, on, residual, State::Pre, ra,
        )?);
        post_out.extend(outer_outputs(
            ctx, l, right, rpath, on, residual, State::Post, ra,
        )?);
    }
    Ok(emit_transition(pre_out, post_out, &out_idset, la + ra))
}

/// Diff two output-row sets by output ID: vanished rows become deletes,
/// the post set is re-asserted as update + insert (surviving rows get
/// their values fixed in place; genuinely new rows — including fresh
/// padded rows — are inserted; exact duplicates are dummies).
fn emit_transition(
    pre_out: Vec<Row>,
    post_out: Vec<Row>,
    out_idset: &[usize],
    out_arity: usize,
) -> Vec<DiffInstance> {
    let post_keys: BTreeSet<Key> = post_out.iter().map(|r| r.key(out_idset)).collect();
    let leaving: Vec<Row> = pre_out
        .into_iter()
        .filter(|r| !post_keys.contains(&r.key(out_idset)))
        .collect();
    let mut out = Vec::new();
    if !leaving.is_empty() {
        out.push(DiffInstance::delete_from_rows(
            out_idset, out_arity, &leaving,
        ));
    }
    if !post_out.is_empty() {
        let post_cols: Vec<usize> = (0..out_arity)
            .filter(|c| !out_idset.contains(c))
            .collect();
        let schema = crate::diff::DiffSchema::update(out_idset, &[], &post_cols);
        let rows: Vec<Row> = post_out
            .iter()
            .map(|j| {
                let mut v: Vec<Value> =
                    schema.id_cols.iter().map(|&c| j[c].clone()).collect();
                v.extend(schema.post_cols.iter().map(|&c| j[c].clone()));
                Row(v)
            })
            .collect();
        out.push(DiffInstance::new(schema, rows));
        out.push(DiffInstance::insert_from_rows(
            out_idset, out_arity, &post_out,
        ));
    }
    out
}

/// One left row's outer-join output in `state`: its joined rows, or a
/// single NULL-padded row when no right row matches (NULL left join
/// keys always pad, per SQL).
#[allow(clippy::too_many_arguments)]
fn outer_outputs(
    ctx: &RuleCtx<'_>,
    l: &Row,
    right: &Plan,
    rpath: &PathId,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    state: State,
    ra: usize,
) -> Result<Vec<Row>> {
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let vals: Vec<Value> = on.iter().map(|&(lc, _)| l[lc].clone()).collect();
    let mut out = Vec::new();
    if !vals.iter().any(Value::is_null) {
        for r in crate::access::lookup(ctx.access, right, rpath, state, &rcols, &Key(vals))? {
            let joined = l.concat(&r);
            if idivm_algebra::opt_pred(residual, &joined)? {
                out.push(joined);
            }
        }
    }
    if out.is_empty() {
        out.push(l.concat(&Row(vec![Value::Null; ra])));
    }
    Ok(out)
}

fn out_ids(left: &Plan, right: &Plan, la: usize) -> Result<Vec<usize>> {
    let mut ids = idivm_algebra::infer_ids(left)?;
    ids.extend(idivm_algebra::infer_ids(right)?.into_iter().map(|i| i + la));
    Ok(ids)
}
