//! Rules for bag union ∪ — paper Table 5.
//!
//! Every diff passes through with the branch attribute `b` (0 = left,
//! 1 = right) appended to its ID columns: `∆_V = π_{*, b→side} ∆_Input`.
//! No data access is ever needed — union is the cheapest operator for
//! ID-based IVM.

use crate::diff::{DiffInstance, DiffKind, DiffSchema};
use idivm_algebra::Plan;
use idivm_types::{Result, Row, Value};

/// Propagate one diff through a union-all node of output arity
/// `out_arity` (child arity + 1 for the branch column).
///
/// # Errors
/// Never fails today; `Result` kept for dispatch uniformity.
pub fn propagate(
    _side_plan: &Plan,
    out_arity: usize,
    side: usize,
    diff: DiffInstance,
) -> Result<DiffInstance> {
    let branch_col = out_arity - 1;
    let branch_val = Value::Int(side as i64);
    let n_ids = diff.schema.id_cols.len();
    let mut id_cols = diff.schema.id_cols.clone();
    id_cols.push(branch_col);
    let schema = match diff.schema.kind {
        DiffKind::Insert => DiffSchema {
            kind: DiffKind::Insert,
            id_cols,
            pre_cols: Vec::new(),
            // The branch column moved into the IDs; the remaining post
            // columns are the child's post columns unchanged.
            post_cols: diff.schema.post_cols.clone(),
        },
        DiffKind::Delete => DiffSchema {
            kind: DiffKind::Delete,
            id_cols,
            pre_cols: diff.schema.pre_cols.clone(),
            post_cols: Vec::new(),
        },
        DiffKind::Update => DiffSchema {
            kind: DiffKind::Update,
            id_cols,
            pre_cols: diff.schema.pre_cols.clone(),
            post_cols: diff.schema.post_cols.clone(),
        },
    };
    let rows = diff
        .rows
        .into_iter()
        .map(|r| {
            // Insert the branch value right after the existing IDs.
            let mut v = r.0;
            v.insert(n_ids, branch_val.clone());
            Row(v)
        })
        .collect();
    Ok(DiffInstance::new(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_types::row;

    #[test]
    fn update_gains_branch_id() {
        let d = DiffInstance::new(
            DiffSchema::update(&[0], &[1], &[1]),
            vec![row![7, 10, 11]],
        );
        let plan = Plan::Scan {
            table: "t".into(),
            alias: "t".into(),
            schema: idivm_types::Schema::from_pairs(
                &[
                    ("id", idivm_types::ColumnType::Int),
                    ("x", idivm_types::ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        };
        let out = propagate(&plan, 3, 1, d).unwrap();
        assert_eq!(out.schema.id_cols, vec![0, 2]);
        assert_eq!(out.rows, vec![row![7, 1, 10, 11]]);
    }

    #[test]
    fn insert_keeps_all_columns() {
        let d = DiffInstance::insert_from_rows(&[0], 2, &[row![1, 5]]);
        let plan = Plan::Scan {
            table: "t".into(),
            alias: "t".into(),
            schema: idivm_types::Schema::from_pairs(
                &[
                    ("id", idivm_types::ColumnType::Int),
                    ("x", idivm_types::ColumnType::Int),
                ],
                &["id"],
            )
            .unwrap(),
        };
        let out = propagate(&plan, 3, 0, d).unwrap();
        assert_eq!(out.schema.id_cols, vec![0, 2]);
        assert_eq!(out.rows, vec![row![1, 0, 5]]);
    }
}
