//! Rules for semijoin ⋉ and antisemijoin ▷ — paper Table 13 (the
//! antisemijoin gives `QSPJADU` its negation/difference power; the
//! semijoin is the mirror image).
//!
//! The output schema is the left input's, so left-side delete diffs and
//! condition-free updates pass through untouched. Everything touching
//! the membership condition probes the opposite side — including diffs
//! on the *right* input, which can silently add or remove left tuples
//! from the view (`∆⁺_r` deletes from an antisemijoin view, `∆−_r`
//! inserts into it).

use crate::access::{self, PathId};
use crate::diff::{DiffInstance, DiffKind, State};
use crate::rules::common::{child_path, delete_rows, insert_rows, untouched, update_row_pairs};
use crate::rules::RuleCtx;
use idivm_algebra::{Expr, Plan};
use idivm_types::{Key, Result, Row, Value};
use std::collections::BTreeSet;

/// Semijoin or antisemijoin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Semi,
    Anti,
}

impl Kind {
    /// Does a row with a right-side match belong to the output?
    fn member(self, matched: bool) -> bool {
        match self {
            Kind::Semi => matched,
            Kind::Anti => !matched,
        }
    }
}

/// Propagate one diff through a (anti)semijoin.
///
/// # Errors
/// Access failures while probing either input.
#[allow(clippy::too_many_arguments)]
pub fn propagate(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    path: &PathId,
    side: usize,
    diff: DiffInstance,
    kind: Kind,
) -> Result<Vec<DiffInstance>> {
    if side == 0 {
        propagate_left(ctx, left, right, on, residual, path, diff, kind)
    } else {
        propagate_right(ctx, left, right, on, residual, path, diff, kind)
    }
}

#[allow(clippy::too_many_arguments)]
fn propagate_left(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    path: &PathId,
    diff: DiffInstance,
    kind: Kind,
) -> Result<Vec<DiffInstance>> {
    let la = left.arity();
    let left_ids = idivm_algebra::infer_ids(left)?;
    let rpath = child_path(path, 1);
    let lpath = child_path(path, 0);
    // Left condition columns: join keys + left part of the residual.
    let mut cond: BTreeSet<usize> = on.iter().map(|&(l, _)| l).collect();
    if let Some(res) = residual {
        cond.extend(res.columns().into_iter().filter(|&c| c < la));
    }
    match diff.schema.kind {
        DiffKind::Insert => {
            // Keep inserted rows that are members (∆⁺ ⋉/▷ Input_post_r).
            let rows = insert_rows(&diff, la);
            let mut kept = Vec::new();
            for r in rows {
                if kind.member(matches(ctx, right, &rpath, on, residual, &r, State::Post)?) {
                    kept.push(r);
                }
            }
            Ok(vec![DiffInstance::insert_from_rows(&left_ids, la, &kept)])
        }
        DiffKind::Delete => {
            // Pass through (Table 13: ∆−_V = ∆−_Input_l).
            Ok(vec![diff])
        }
        DiffKind::Update => {
            if untouched(&diff.schema, &cond) {
                // Membership unchanged: the update passes through.
                return Ok(vec![diff]);
            }
            // Membership may flip per affected row: materialize pairs.
            let pairs = update_row_pairs(ctx.access, left, &lpath, &left_ids, &diff)?;
            let mut entering = Vec::new();
            let mut leaving = Vec::new();
            let mut staying = Vec::new();
            for p in pairs {
                let was = kind.member(matches(
                    ctx, right, &rpath, on, residual, &p.pre, State::Pre,
                )?);
                let is = kind.member(matches(
                    ctx, right, &rpath, on, residual, &p.post, State::Post,
                )?);
                match (was, is) {
                    (false, true) => entering.push(p.post),
                    (true, false) => leaving.push(p.pre),
                    (true, true) => staying.push(p.post),
                    (false, false) => {}
                }
            }
            let mut out = Vec::new();
            if !leaving.is_empty() {
                out.push(DiffInstance::delete_from_rows(&left_ids, la, &leaving));
            }
            if !staying.is_empty() {
                let post_cols: Vec<usize> =
                    (0..la).filter(|c| !left_ids.contains(c)).collect();
                let schema = crate::diff::DiffSchema::update(&left_ids, &[], &post_cols);
                let rows = staying
                    .iter()
                    .map(|r| {
                        let mut v: Vec<Value> =
                            schema.id_cols.iter().map(|&c| r[c].clone()).collect();
                        v.extend(schema.post_cols.iter().map(|&c| r[c].clone()));
                        Row(v)
                    })
                    .collect();
                out.push(DiffInstance::new(schema, rows));
            }
            if !entering.is_empty() {
                out.push(DiffInstance::insert_from_rows(&left_ids, la, &entering));
            }
            Ok(out)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn propagate_right(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    path: &PathId,
    diff: DiffInstance,
    kind: Kind,
) -> Result<Vec<DiffInstance>> {
    let la = left.arity();
    let left_ids = idivm_algebra::infer_ids(left)?;
    let lpath = child_path(path, 0);
    let rpath = child_path(path, 1);
    // Right condition columns (in the right input's frame).
    let mut cond: BTreeSet<usize> = on.iter().map(|&(_, r)| r).collect();
    if let Some(res) = residual {
        cond.extend(
            res.columns()
                .into_iter()
                .filter(|&c| c >= la)
                .map(|c| c - la),
        );
    }
    let ra = right.arity();
    match diff.schema.kind {
        DiffKind::Insert => {
            // New right rows grant membership (semi) / revoke it (anti)
            // for matching left rows.
            let rows = insert_rows(&diff, ra);
            let affected = matching_left(ctx, left, &lpath, on, residual, &rows, la)?;
            Ok(membership_flip(
                ctx, right, &rpath, on, residual, affected, &left_ids, la, kind,
            )?)
        }
        DiffKind::Delete => {
            // Removed right rows may revoke membership (semi) / grant it
            // (anti) for left rows that matched them.
            let rows = delete_rows(ctx.access, right, &rpath, &diff)?;
            let affected = matching_left(ctx, left, &lpath, on, residual, &rows, la)?;
            Ok(membership_flip(
                ctx, right, &rpath, on, residual, affected, &left_ids, la, kind,
            )?)
        }
        DiffKind::Update => {
            if untouched(&diff.schema, &cond) {
                // The right side contributes no output columns, so a
                // condition-free right update is invisible.
                return Ok(vec![]);
            }
            // Treat as delete(pre) + insert(post) — Table 13's ∆u_Input_r.
            let pairs =
                update_row_pairs(ctx.access, right, &rpath, &idivm_algebra::infer_ids(right)?, &diff)?;
            let pre_rows: Vec<Row> = pairs.iter().map(|p| p.pre.clone()).collect();
            let post_rows: Vec<Row> = pairs.iter().map(|p| p.post.clone()).collect();
            let mut affected =
                matching_left(ctx, left, &lpath, on, residual, &pre_rows, la)?;
            for r in matching_left(ctx, left, &lpath, on, residual, &post_rows, la)? {
                affected.push(r);
            }
            Ok(membership_flip(
                ctx, right, &rpath, on, residual, affected, &left_ids, la, kind,
            )?)
        }
    }
}

/// Did `row` (a left-side row) find a right-side match?
fn matches(
    ctx: &RuleCtx<'_>,
    right: &Plan,
    rpath: &PathId,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    row: &Row,
    state: State,
) -> Result<bool> {
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    let vals: Vec<Value> = on.iter().map(|&(l, _)| row[l].clone()).collect();
    if vals.iter().any(Value::is_null) {
        return Ok(false);
    }
    let rrows = access::lookup(ctx.access, right, rpath, state, &rcols, &Key(vals))?;
    for r in &rrows {
        if idivm_algebra::opt_pred(residual, &row.concat(r))? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Left rows (post-state) matching any of the given right rows.
pub(crate) fn matching_left(
    ctx: &RuleCtx<'_>,
    left: &Plan,
    lpath: &PathId,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    right_rows: &[Row],
    _la: usize,
) -> Result<Vec<Row>> {
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let mut out = Vec::new();
    let mut seen: BTreeSet<Row> = BTreeSet::new();
    for r in right_rows {
        let vals: Vec<Value> = on.iter().map(|&(_, rc)| r[rc].clone()).collect();
        if vals.iter().any(Value::is_null) {
            continue;
        }
        for l in access::lookup(
            ctx.access,
            left,
            lpath,
            State::Post,
            &lcols,
            &Key(vals),
        )? {
            if idivm_algebra::opt_pred(residual, &l.concat(r))? && seen.insert(l.clone()) {
                out.push(l);
            }
        }
    }
    Ok(out)
}

/// For each affected left row, decide its current membership and emit
/// precise insert/delete diffs. (The left rows are post-state; their
/// pre-membership is irrelevant because inserting an already-present
/// tuple is a dummy and deleting an absent one likewise.)
#[allow(clippy::too_many_arguments)]
fn membership_flip(
    ctx: &RuleCtx<'_>,
    right: &Plan,
    rpath: &PathId,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
    affected: Vec<Row>,
    left_ids: &[usize],
    la: usize,
    kind: Kind,
) -> Result<Vec<DiffInstance>> {
    let mut now_in = Vec::new();
    let mut now_out = Vec::new();
    for l in affected {
        if kind.member(matches(ctx, right, rpath, on, residual, &l, State::Post)?) {
            now_in.push(l);
        } else {
            now_out.push(l);
        }
    }
    let mut out = Vec::new();
    if !now_out.is_empty() {
        out.push(DiffInstance::delete_from_rows(left_ids, la, &now_out));
    }
    if !now_in.is_empty() {
        out.push(DiffInstance::insert_from_rows(left_ids, la, &now_in));
    }
    Ok(out)
}
