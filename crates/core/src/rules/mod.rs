//! i-diff propagation rules — paper Tables 4–13, one module per
//! operator family.
//!
//! Each operator transforms (effective) i-diffs over its input schema
//! into (effective) i-diffs over its output schema (paper Section 4).
//! The rules may consult the data under the operator through the counted
//! access paths of [`crate::access`] (`Input_pre`, `Input_post`,
//! `Output`).
//!
//! Two forms per rule, following the paper's Pass 4 (semantic
//! minimization, Figure 8): a **general** form that probes the input
//! subview, and — where Figure 8 licenses it — a **minimized** form that
//! answers from the diff alone. [`RuleCtx::minimize`] selects between
//! them; results are identical, access counts are not (the paper reports
//! >50 % improvements from minimization).

pub mod agg;
pub mod common;
pub mod join;
pub mod project;
pub mod select;
pub mod semi;
pub mod union;

use crate::access::{AccessCtx, PathId};
use crate::diff::DiffInstance;
use idivm_algebra::Plan;
use idivm_types::{Error, Result};

/// Context handed to every rule invocation.
pub struct RuleCtx<'a> {
    /// Access paths to subviews/caches.
    pub access: &'a AccessCtx<'a>,
    /// Pass-4 semantic minimization on/off.
    pub minimize: bool,
}

/// A diff arriving at an operator, tagged with the child it came from
/// (0 = only/left input, 1 = right input).
#[derive(Debug, Clone)]
pub struct IncomingDiff {
    pub side: usize,
    pub diff: DiffInstance,
}

/// Propagate all diffs arriving at `node` (located at `path` in the
/// root plan) to diffs over the node's output schema.
///
/// Non-blocking operators map each incoming diff independently; the
/// blocking aggregate rules (SUM/COUNT/AVG, Tables 9/11/12) inspect the
/// whole batch (paper's blocking-operator distinction, Example 4.4).
///
/// # Errors
/// Propagates access errors; scans reaching this function are a planner
/// bug ([`Error::Internal`]).
pub fn propagate(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    path: &PathId,
    incoming: Vec<IncomingDiff>,
) -> Result<Vec<DiffInstance>> {
    if incoming.iter().all(|d| d.diff.is_empty()) {
        return Ok(Vec::new());
    }
    match node {
        Plan::Scan { .. } => Err(Error::Internal(
            "scan nodes receive base diffs directly; nothing to propagate".into(),
        )),
        Plan::Select { input, pred } => {
            let mut out = Vec::new();
            for inc in incoming {
                out.extend(select::propagate(ctx, pred, input, path, inc.diff)?);
            }
            Ok(out)
        }
        Plan::Project { input, cols } => {
            let mut out = Vec::new();
            for inc in incoming {
                out.extend(project::propagate(ctx, cols, input, path, inc.diff)?);
            }
            Ok(out)
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let mut out = Vec::new();
            for inc in incoming {
                out.extend(join::propagate(
                    ctx,
                    left,
                    right,
                    on,
                    residual.as_ref(),
                    path,
                    inc.side,
                    inc.diff,
                )?);
            }
            Ok(out)
        }
        Plan::SemiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let mut out = Vec::new();
            for inc in incoming {
                out.extend(semi::propagate(
                    ctx,
                    left,
                    right,
                    on,
                    residual.as_ref(),
                    path,
                    inc.side,
                    inc.diff,
                    semi::Kind::Semi,
                )?);
            }
            Ok(out)
        }
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let mut out = Vec::new();
            for inc in incoming {
                out.extend(semi::propagate(
                    ctx,
                    left,
                    right,
                    on,
                    residual.as_ref(),
                    path,
                    inc.side,
                    inc.diff,
                    semi::Kind::Anti,
                )?);
            }
            Ok(out)
        }
        Plan::UnionAll { left, right } => {
            let mut out = Vec::new();
            let arity = node.arity();
            for inc in incoming {
                let side_plan = if inc.side == 0 { left } else { right };
                out.push(union::propagate(side_plan, arity, inc.side, inc.diff)?);
            }
            Ok(out)
        }
        Plan::GroupBy { input, keys, aggs } => {
            agg::propagate(ctx, node, input, keys, aggs, path, incoming)
        }
    }
}
