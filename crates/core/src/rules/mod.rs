//! i-diff propagation rules — paper Tables 4–13, one module per
//! operator family.
//!
//! Each operator transforms (effective) i-diffs over its input schema
//! into (effective) i-diffs over its output schema (paper Section 4).
//! The rules may consult the data under the operator through the counted
//! access paths of [`crate::access`] (`Input_pre`, `Input_post`,
//! `Output`).
//!
//! Two forms per rule, following the paper's Pass 4 (semantic
//! minimization, Figure 8): a **general** form that probes the input
//! subview, and — where Figure 8 licenses it — a **minimized** form that
//! answers from the diff alone. [`RuleCtx::minimize`] selects between
//! them; results are identical, access counts are not (the paper reports
//! >50 % improvements from minimization).

pub mod agg;
pub mod common;
pub mod join;
pub mod outer;
pub mod project;
pub mod select;
pub mod semi;
pub mod union;

use crate::access::{AccessCtx, PathId};
use crate::diff::DiffInstance;
use crate::faults::FaultState;
use idivm_algebra::Plan;
use idivm_exec::partition::{run_sharded, shard_by, stable_hash_row, ParallelConfig};
use idivm_types::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};

/// Context handed to every rule invocation.
pub struct RuleCtx<'a> {
    /// Access paths to subviews/caches.
    pub access: &'a AccessCtx<'a>,
    /// Pass-4 semantic minimization on/off.
    pub minimize: bool,
    /// Partitioned propagation configuration (serial by default).
    pub parallel: ParallelConfig,
    /// The round's fault hooks, for failpoints *inside* a rule — today
    /// only the mid-rescan failpoint of the dirty-group extremum
    /// strategy. `None` in contexts without fault machinery.
    pub faults: Option<&'a FaultState>,
    /// Dirty-group rescans performed this round (reported as
    /// `MaintenanceReport::rescans`). `None` when nobody is counting.
    pub rescans: Option<&'a AtomicU64>,
}

impl RuleCtx<'_> {
    /// Announce one dirty-group rescan: fires the `rescan` operator
    /// failpoint (so fault sweeps can land mid-rescan and prove the
    /// rollback) and bumps the round's rescan counter. Must be called
    /// *before* the member lookup it prices — the failpoint has to
    /// abort the round with the rescan not yet performed. Rescans run
    /// on the serial spine, so the counter and failpoint order are
    /// thread-stable.
    ///
    /// # Errors
    /// The armed fault, when the sweep lands on this rescan.
    pub fn on_rescan(&self) -> Result<()> {
        if let Some(f) = self.faults {
            f.on_operator("rescan")?;
        }
        if let Some(c) = self.rescans {
            c.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Hash-partition one diff instance by its ID key and run `rule` over
/// each shard on a scoped worker thread, concatenating shard outputs in
/// shard order.
///
/// Sound exactly for the **per-row** rules (select, project, join,
/// semijoin-left): they map every diff row to output rows and probes
/// independently, with no cross-row state, so any row partition
/// executes the same probes and emits the same rows — only grouped into
/// per-shard diff instances. The cross-row rules (semijoin right-side
/// dedup, union tagging, aggregate delta folding) stay serial at this
/// level.
fn fan_out<F>(ctx: &RuleCtx<'_>, diff: DiffInstance, rule: F) -> Result<Vec<DiffInstance>>
where
    F: Fn(DiffInstance) -> Result<Vec<DiffInstance>> + Sync,
{
    let shards_n = ctx.parallel.effective_shards(diff.len());
    if shards_n <= 1 {
        return rule(diff);
    }
    // Diff rows are laid out `[ids…, pre…, post…]`: the ID key occupies
    // the leading slots.
    let id_slots: Vec<usize> = (0..diff.schema.id_cols.len()).collect();
    let schema = diff.schema;
    let shards: Vec<DiffInstance> = shard_by(diff.rows, shards_n, |r| {
        stable_hash_row(r, &id_slots)
    })
    .into_iter()
    .filter(|rows| !rows.is_empty())
    .map(|rows| DiffInstance {
        schema: schema.clone(),
        rows,
    })
    .collect();
    let mut out = Vec::new();
    for shard_out in run_sharded(shards, |_, d| rule(d)) {
        out.extend(shard_out?);
    }
    Ok(out)
}

/// A diff arriving at an operator, tagged with the child it came from
/// (0 = only/left input, 1 = right input).
#[derive(Debug, Clone)]
pub struct IncomingDiff {
    pub side: usize,
    pub diff: DiffInstance,
}

/// Propagate all diffs arriving at `node` (located at `path` in the
/// root plan) to diffs over the node's output schema.
///
/// Non-blocking operators map each incoming diff independently; the
/// blocking aggregate rules (SUM/COUNT/AVG, Tables 9/11/12) inspect the
/// whole batch (paper's blocking-operator distinction, Example 4.4).
///
/// # Errors
/// Propagates access errors; scans reaching this function are a planner
/// bug ([`Error::Internal`]).
pub fn propagate(
    ctx: &RuleCtx<'_>,
    node: &Plan,
    path: &PathId,
    incoming: Vec<IncomingDiff>,
) -> Result<Vec<DiffInstance>> {
    if incoming.iter().all(|d| d.diff.is_empty()) {
        return Ok(Vec::new());
    }
    match node {
        Plan::Scan { .. } => Err(Error::Internal(
            "scan nodes receive base diffs directly; nothing to propagate".into(),
        )),
        Plan::Select { input, pred } => {
            let mut out = Vec::new();
            for inc in incoming {
                out.extend(fan_out(ctx, inc.diff, |d| {
                    select::propagate(ctx, pred, input, path, d)
                })?);
            }
            Ok(out)
        }
        Plan::Project { input, cols } => {
            let mut out = Vec::new();
            for inc in incoming {
                out.extend(fan_out(ctx, inc.diff, |d| {
                    project::propagate(ctx, cols, input, path, d)
                })?);
            }
            Ok(out)
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let mut out = Vec::new();
            for inc in incoming {
                let side = inc.side;
                out.extend(fan_out(ctx, inc.diff, |d| {
                    join::propagate(
                        ctx,
                        left,
                        right,
                        on,
                        residual.as_ref(),
                        path,
                        side,
                        d,
                    )
                })?);
            }
            Ok(out)
        }
        Plan::LeftOuterJoin {
            left,
            right,
            on,
            residual,
        } => {
            let mut out = Vec::new();
            for inc in incoming {
                let side = inc.side;
                let rule = |d| {
                    outer::propagate(
                        ctx,
                        left,
                        right,
                        on,
                        residual.as_ref(),
                        path,
                        side,
                        d,
                    )
                };
                if side == 0 {
                    out.extend(fan_out(ctx, inc.diff, rule)?);
                } else {
                    // Right-side diffs dedupe affected left rows across
                    // the whole diff (`matching_left`): cross-row state,
                    // so this path stays serial.
                    out.extend(rule(inc.diff)?);
                }
            }
            Ok(out)
        }
        Plan::SemiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let mut out = Vec::new();
            for inc in incoming {
                let side = inc.side;
                let rule = |d| {
                    semi::propagate(
                        ctx,
                        left,
                        right,
                        on,
                        residual.as_ref(),
                        path,
                        side,
                        d,
                        semi::Kind::Semi,
                    )
                };
                if side == 0 {
                    out.extend(fan_out(ctx, inc.diff, rule)?);
                } else {
                    // Right-side diffs dedupe affected left rows across
                    // the whole diff (`matching_left`): cross-row state,
                    // so this path stays serial.
                    out.extend(rule(inc.diff)?);
                }
            }
            Ok(out)
        }
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let mut out = Vec::new();
            for inc in incoming {
                let side = inc.side;
                let rule = |d| {
                    semi::propagate(
                        ctx,
                        left,
                        right,
                        on,
                        residual.as_ref(),
                        path,
                        side,
                        d,
                        semi::Kind::Anti,
                    )
                };
                if side == 0 {
                    out.extend(fan_out(ctx, inc.diff, rule)?);
                } else {
                    out.extend(rule(inc.diff)?);
                }
            }
            Ok(out)
        }
        Plan::UnionAll { left, right } => {
            let mut out = Vec::new();
            let arity = node.arity();
            for inc in incoming {
                let side_plan = if inc.side == 0 { left } else { right };
                out.push(union::propagate(side_plan, arity, inc.side, inc.diff)?);
            }
            Ok(out)
        }
        Plan::GroupBy { input, keys, aggs } => {
            agg::propagate(ctx, node, input, keys, aggs, path, incoming)
        }
    }
}
