//! Rules for σ_φ(X̄) — paper Table 6.
//!
//! * Insert diffs are filtered by φ over their post-state values (insert
//!   diffs carry every column, so this is always a diff-only operation —
//!   the `∆⁺ ⋉ σφR → σφ(X̄post)∆⁺` rewrite of Figure 8).
//! * Delete diffs pass through; with minimization and pre-state values
//!   present they are pre-filtered by φ (the blue portion of Table 6),
//!   which trades nothing for reduced overestimation.
//! * Update diffs that do not touch `X̄` pass through (optionally
//!   pre-filtered). Updates that *do* touch `X̄` trigger the insert /
//!   delete / update split: tuples satisfying φ only after the change
//!   enter the view, tuples satisfying it only before leave it.

use crate::access::PathId;
use crate::diff::{DiffInstance, DiffKind, DiffSchema, State};
use crate::rules::common::{child_path, eval_diff, evaluable, untouched, update_row_pairs};
use crate::rules::RuleCtx;
use idivm_algebra::{Expr, Plan};
use idivm_types::{Result, Row};

/// Propagate one diff through a selection.
///
/// # Errors
/// Access failures while probing the input subview.
pub fn propagate(
    ctx: &RuleCtx<'_>,
    pred: &Expr,
    input: &Plan,
    path: &PathId,
    diff: DiffInstance,
) -> Result<Vec<DiffInstance>> {
    let arity = input.arity();
    let cond_cols = pred.columns();
    match diff.schema.kind {
        DiffKind::Insert => {
            // σφ(X̄post)∆⁺ — always evaluable.
            let schema = diff.schema.clone();
            let mut rows: Vec<Row> = Vec::with_capacity(diff.rows.len());
            for r in diff.rows {
                if eval_diff(&schema, &r, pred, State::Post, arity)?
                    == idivm_types::Value::Bool(true)
                {
                    rows.push(r);
                }
            }
            Ok(vec![DiffInstance::new(schema, rows)])
        }
        DiffKind::Delete => {
            if ctx.minimize && evaluable(&diff.schema, pred, State::Pre) {
                let schema = diff.schema.clone();
                let mut rows: Vec<Row> = Vec::with_capacity(diff.rows.len());
                for r in diff.rows {
                    if eval_diff(&schema, &r, pred, State::Pre, arity)?
                        == idivm_types::Value::Bool(true)
                    {
                        rows.push(r);
                    }
                }
                Ok(vec![DiffInstance::new(schema, rows)])
            } else {
                // Pass through unmodified (Example 4.8's overestimating
                // delete: tuples failing φ are not in the view, so the
                // extra delete attempts are harmless dummies).
                Ok(vec![diff])
            }
        }
        DiffKind::Update => {
            if untouched(&diff.schema, &cond_cols) {
                // Condition unaffected: the update maps to updates only.
                if ctx.minimize
                    && evaluable(&diff.schema, pred, State::Pre)
                {
                    let schema = diff.schema.clone();
                    let mut rows: Vec<Row> = Vec::with_capacity(diff.rows.len());
                    for r in diff.rows {
                        if eval_diff(&schema, &r, pred, State::Pre, arity)?
                            == idivm_types::Value::Bool(true)
                        {
                            rows.push(r);
                        }
                    }
                    return Ok(vec![DiffInstance::new(schema, rows)]);
                }
                return Ok(vec![diff]);
            }
            // Condition affected: split into entering (∆⁺), leaving
            // (∆⁻), and staying (∆u) tuples based on φ(pre) / φ(post).
            let pairs = update_row_pairs(
                ctx.access,
                input,
                &child_path(path, 0),
                &input_ids(input)?,
                &diff,
            )?;
            let mut entering = Vec::new();
            let mut leaving = Vec::new();
            let mut staying = Vec::new();
            for p in pairs {
                let pre_ok = pred.eval_pred(&p.pre)?;
                let post_ok = pred.eval_pred(&p.post)?;
                match (pre_ok, post_ok) {
                    (false, true) => entering.push(p.post),
                    (true, false) => leaving.push(p.pre),
                    (true, true) => staying.push(p),
                    (false, false) => {}
                }
            }
            let ids = input_ids(input)?;
            // Entering tuples become view *inserts*, and unlike dummy
            // updates/deletes an insert of a non-member row is not a
            // harmless overestimate: when the diff carried full
            // coverage, `update_row_pairs` never probed the input, so a
            // row the input doesn't produce (e.g. a part with no
            // semijoin partner) would be fabricated into the view.
            // Confirm membership against the input's post-state; base
            // scans are exempt (their diffs describe real rows).
            if !entering.is_empty() && !matches!(input, Plan::Scan { .. }) {
                let mut confirmed = Vec::with_capacity(entering.len());
                for r in entering {
                    let probe = r.key(&ids);
                    let present = crate::access::lookup(
                        ctx.access,
                        input,
                        &child_path(path, 0),
                        State::Post,
                        &ids,
                        &probe,
                    )?;
                    if !present.is_empty() {
                        confirmed.push(r);
                    }
                }
                entering = confirmed;
            }
            let mut out = Vec::new();
            if !entering.is_empty() {
                out.push(DiffInstance::insert_from_rows(&ids, arity, &entering));
            }
            if !leaving.is_empty() {
                out.push(DiffInstance::delete_from_rows(&ids, arity, &leaving));
            }
            if !staying.is_empty() {
                // In-place update of surviving tuples, full-ID
                // granularity, setting the original diff's post columns.
                let schema = DiffSchema::update(
                    &ids,
                    &non(&ids, arity),
                    &diff.schema.post_cols,
                );
                let rows = staying
                    .into_iter()
                    .map(|p| {
                        let mut v: Vec<idivm_types::Value> =
                            schema.id_cols.iter().map(|&c| p.post[c].clone()).collect();
                        v.extend(schema.pre_cols.iter().map(|&c| p.pre[c].clone()));
                        v.extend(schema.post_cols.iter().map(|&c| p.post[c].clone()));
                        Row(v)
                    })
                    .collect();
                out.push(DiffInstance::new(schema, rows));
            }
            Ok(out)
        }
    }
}

fn non(ids: &[usize], arity: usize) -> Vec<usize> {
    (0..arity).filter(|c| !ids.contains(c)).collect()
}

fn input_ids(input: &Plan) -> Result<Vec<usize>> {
    idivm_algebra::infer_ids(input)
}
