//! Shared helpers for the propagation rules.

use crate::access::{self, AccessCtx, PathId};
use crate::diff::{DiffInstance, DiffSchema, State};
use idivm_algebra::{Expr, Plan};
use idivm_types::{Key, Result, Row, Value};
use std::collections::BTreeSet;

/// Path of child `idx` under `path`.
pub fn child_path(path: &[usize], idx: usize) -> PathId {
    let mut p = path.to_vec();
    p.push(idx);
    p
}

/// Can `expr` be evaluated from the diff alone in the given state?
pub fn evaluable(schema: &DiffSchema, expr: &Expr, state: State) -> bool {
    let avail: BTreeSet<usize> = match state {
        State::Pre => schema.pre_available(),
        State::Post => schema.post_available(),
    };
    expr.columns().iter().all(|c| avail.contains(c))
}

/// Evaluate `expr` over a diff row in the given state. Caller must have
/// checked [`evaluable`] first; missing columns evaluate as NULL.
///
/// # Errors
/// Expression evaluation failures ([`idivm_types::Error::Type`]).
pub fn eval_diff(
    schema: &DiffSchema,
    row: &Row,
    expr: &Expr,
    state: State,
    arity: usize,
) -> Result<Value> {
    expr.eval(&schema.scratch_row(row, arity, state))
}

/// Does the update diff leave all of `cols` untouched? (IDs are
/// immutable, so only genuine post columns count.)
pub fn untouched(schema: &DiffSchema, cols: &BTreeSet<usize>) -> bool {
    schema
        .post_cols
        .iter()
        .all(|c| !cols.contains(c) || schema.id_cols.contains(c))
}

/// Materialized pre/post row pair of one affected input tuple.
#[derive(Debug, Clone)]
pub struct RowPair {
    pub pre: Row,
    pub post: Row,
}

/// Expand an update diff into fully materialized pre/post input rows —
/// the paper's "treat input update as combination of insert and delete"
/// device (Table 13). When the diff carries full coverage the rows come
/// straight from it; otherwise the input subview is probed by the
/// diff's IDs (pre and post state), pairing rows on the input's full ID.
///
/// # Errors
/// Access failures while probing the input subview.
pub fn update_row_pairs(
    ctx: &AccessCtx<'_>,
    input: &Plan,
    input_path: &PathId,
    input_ids: &[usize],
    diff: &DiffInstance,
) -> Result<Vec<RowPair>> {
    let arity = input.arity();
    let mut out = Vec::new();
    for d in &diff.rows {
        let full_pre = diff.schema.full_row(d, arity, State::Pre);
        let full_post = diff.schema.full_row(d, arity, State::Post);
        match (full_pre, full_post) {
            (Some(pre), Some(post)) => out.push(RowPair { pre, post }),
            _ => {
                let probe = diff.schema.id_key(d);
                let pre_rows = access::lookup(
                    ctx,
                    input,
                    input_path,
                    State::Pre,
                    &diff.schema.id_cols,
                    &probe,
                )?;
                let post_rows = access::lookup(
                    ctx,
                    input,
                    input_path,
                    State::Post,
                    &diff.schema.id_cols,
                    &probe,
                )?;
                // Pair by the input's full ID key; unmatched rows are
                // inserts/deletes masquerading as updates (cannot happen
                // with effective diffs) and are skipped defensively.
                for post in post_rows {
                    let pk = post.key(input_ids);
                    if let Some(pre) = pre_rows.iter().find(|r| r.key(input_ids) == pk) {
                        // Overlay post columns the diff dictates (the
                        // probed post row already reflects them — the
                        // diff is effective — but the diff's values are
                        // authoritative for dummy rows).
                        out.push(RowPair {
                            pre: pre.clone(),
                            post,
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Materialize the full **post** rows an insert diff stands for. Insert
/// diffs always carry every column, so this never probes.
pub fn insert_rows(diff: &DiffInstance, arity: usize) -> Vec<Row> {
    diff.rows
        .iter()
        .filter_map(|d| diff.schema.full_row(d, arity, State::Post))
        .collect()
}

/// Materialize the full **pre** rows a delete diff stands for, probing
/// the input's pre-state when the diff carries only a column subset.
///
/// # Errors
/// Access failures while probing the input subview.
pub fn delete_rows(
    ctx: &AccessCtx<'_>,
    input: &Plan,
    input_path: &PathId,
    diff: &DiffInstance,
) -> Result<Vec<Row>> {
    let arity = input.arity();
    let mut out = Vec::new();
    for d in &diff.rows {
        if let Some(pre) = diff.schema.full_row(d, arity, State::Pre) {
            out.push(pre);
        } else {
            let probe = diff.schema.id_key(d);
            out.extend(access::lookup(
                ctx,
                input,
                input_path,
                State::Pre,
                &diff.schema.id_cols,
                &probe,
            )?);
        }
    }
    Ok(out)
}

/// Rebase a diff schema by shifting every column reference by `offset`
/// (right input of a join: output positions = input + left arity).
pub fn shift_schema(schema: &DiffSchema, offset: usize) -> DiffSchema {
    DiffSchema {
        kind: schema.kind,
        id_cols: schema.id_cols.iter().map(|c| c + offset).collect(),
        pre_cols: schema.pre_cols.iter().map(|c| c + offset).collect(),
        post_cols: schema.post_cols.iter().map(|c| c + offset).collect(),
    }
}

/// Keep at most one diff row per ID key (defensive dedupe; effective
/// diffs agree on final values, so keeping the first is sound).
pub fn dedupe_by_id(diff: &mut DiffInstance) {
    let mut seen: BTreeSet<Key> = BTreeSet::new();
    let schema = diff.schema.clone();
    diff.rows.retain(|r| seen.insert(schema.id_key(r)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_types::row;

    #[test]
    fn evaluable_checks_availability() {
        // Update diff on V(a*, b, c): ids=[0], pre=[1,2], post=[1].
        let s = DiffSchema::update(&[0], &[1, 2], &[1]);
        let on_b = Expr::col(1).gt(Expr::lit(0));
        let on_c = Expr::col(2).gt(Expr::lit(0));
        assert!(evaluable(&s, &on_b, State::Pre));
        assert!(evaluable(&s, &on_b, State::Post));
        assert!(evaluable(&s, &on_c, State::Pre));
        assert!(evaluable(&s, &on_c, State::Post)); // c unchanged ⇒ pre = post
        let ins = DiffSchema::insert(&[0], 3);
        assert!(!evaluable(&ins, &on_b, State::Pre)); // inserts have no pre
    }

    #[test]
    fn untouched_ignores_condition_free_updates() {
        let s = DiffSchema::update(&[0], &[1, 2], &[1]);
        let cond_on_c: BTreeSet<usize> = [2].into_iter().collect();
        let cond_on_b: BTreeSet<usize> = [1].into_iter().collect();
        assert!(untouched(&s, &cond_on_c));
        assert!(!untouched(&s, &cond_on_b));
    }

    #[test]
    fn shift_schema_offsets_everything() {
        let s = DiffSchema::update(&[0], &[1], &[1]);
        let t = shift_schema(&s, 3);
        assert_eq!(t.id_cols, vec![3]);
        assert_eq!(t.pre_cols, vec![4]);
        assert_eq!(t.post_cols, vec![4]);
    }

    #[test]
    fn dedupe_keeps_first() {
        let mut d = DiffInstance::new(
            DiffSchema::update(&[0], &[], &[1]),
            vec![row![1, 10], row![1, 10], row![2, 20]],
        );
        dedupe_by_id(&mut d);
        assert_eq!(d.rows.len(), 2);
    }

    #[test]
    fn insert_rows_materializes() {
        let d = DiffInstance::insert_from_rows(&[0], 2, &[row![1, 5]]);
        assert_eq!(insert_rows(&d, 2), vec![row![1, 5]]);
    }
}
