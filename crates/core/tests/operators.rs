//! Per-operator end-to-end coverage: each `QSPJADU` operator exercised
//! through the full engine against the recomputation oracle, including
//! the corners the running-example tests don't reach — union branches,
//! semijoin/antisemijoin right-side diffs, generalized projection with
//! functions, MIN/MAX/AVG (general rule) and multi-aggregate views.

use idivm_algebra::{AggFunc, Expr, Plan, PlanBuilder, ScalarFn};
use idivm_core::{IdIvm, IvmOptions};
use idivm_exec::{executor::sorted, recompute_rows, DbCatalog};
use idivm_reldb::Database;
use idivm_types::{row, ColumnType, Key, Schema, Value};

fn db_two_tables() -> Database {
    let mut db = Database::new();
    db.set_logging(false);
    db.create_table(
        "items",
        Schema::from_pairs(
            &[
                ("id", ColumnType::Int),
                ("grp", ColumnType::Int),
                ("val", ColumnType::Int),
            ],
            &["id"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "tags",
        Schema::from_pairs(
            &[("item", ColumnType::Int), ("tag", ColumnType::Str)],
            &["item", "tag"],
        )
        .unwrap(),
    )
    .unwrap();
    for i in 0..20i64 {
        db.insert("items", row![i, i % 4, i * 10]).unwrap();
    }
    for i in 0..20i64 {
        if i % 2 == 0 {
            db.insert("tags", row![i, "even"]).unwrap();
        }
        if i % 3 == 0 {
            db.insert("tags", row![i, "fizz"]).unwrap();
        }
    }
    db.set_logging(true);
    db
}

fn check(db: &Database, ivm: &IdIvm) {
    let expected = sorted(recompute_rows(db, ivm.plan()).unwrap());
    let actual = sorted(db.table(ivm.view_name()).unwrap().rows_uncounted());
    assert_eq!(actual, expected);
}

fn ik(i: i64) -> Key {
    Key(vec![Value::Int(i)])
}

fn mutate_round(db: &mut Database, round: i64) {
    // A little of everything.
    db.update_named("items", &ik(1), &[("val", Value::Int(round * 100))])
        .unwrap();
    db.update_named("items", &ik(2), &[("grp", Value::Int(round % 4))])
        .unwrap();
    let _ = db.insert("items", row![100 + round, round % 4, 7]);
    let _ = db.delete("items", &ik(3 + round));
    let _ = db.insert("tags", row![1, format!("r{round}").as_str()]);
    let _ = db.delete(
        "tags",
        &Key(vec![Value::Int(round * 2), Value::str("even")]),
    );
}

#[test]
fn generalized_projection_with_functions() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let plan = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .project(vec![
            ("id".into(), Expr::col(0)),
            (
                "magnitude".into(),
                Expr::Func {
                    f: ScalarFn::Abs,
                    args: vec![Expr::col(2).sub(Expr::lit(50))],
                },
            ),
            ("bucket".into(), Expr::col(2).div(Expr::lit(30))),
        ])
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    for round in 1..4 {
        mutate_round(&mut db, round);
        ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
    }
}

#[test]
fn semijoin_with_right_side_churn() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let plan = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .semi_join(
            PlanBuilder::scan(&cat, "tags")
                .unwrap()
                .select_eq("tags.tag", "even")
                .unwrap(),
            &[("items.id", "tags.item")],
        )
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    // Right-side inserts grant membership; deletes revoke it.
    db.insert("tags", row![1, "even"]).unwrap();
    db.insert("tags", row![5, "even"]).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    db.delete("tags", &Key(vec![Value::Int(0), Value::str("even")]))
        .unwrap();
    db.delete("tags", &Key(vec![Value::Int(1), Value::str("even")]))
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    // Left updates pass through.
    db.update_named("items", &ik(2), &[("val", Value::Int(999))])
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
}

#[test]
fn antisemijoin_negation_with_both_sides() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    // Items with no tag at all.
    let plan = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .anti_join(
            PlanBuilder::scan(&cat, "tags").unwrap(),
            &[("items.id", "tags.item")],
        )
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    for round in 1..5 {
        mutate_round(&mut db, round);
        ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
    }
    // Deleting the last tag of an item brings it (back) into the view.
    db.delete("tags", &Key(vec![Value::Int(9), Value::str("fizz")]))
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
}

#[test]
fn union_of_filtered_branches() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let low = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .select(Expr::col(2).lt(Expr::lit(60)))
        .build()
        .unwrap();
    let high = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .select(Expr::col(2).ge(Expr::lit(120)))
        .build()
        .unwrap();
    let plan = Plan::UnionAll {
        left: Box::new(low),
        right: Box::new(high),
    };
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    for round in 1..5 {
        mutate_round(&mut db, round);
        ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
    }
    // An update that moves a row from the low branch to the high one
    // (item 9 survives the churn above).
    db.update_named("items", &ik(9), &[("val", Value::Int(500))])
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
}

#[test]
fn min_max_aggregates_use_general_rule() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let plan = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .group_by(
            &["items.grp"],
            &[
                (AggFunc::Min, "items.val", "lo"),
                (AggFunc::Max, "items.val", "hi"),
            ],
        )
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    // Deleting the current max forces a group recomputation.
    db.delete("items", &ik(19)).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    // Updating a value below the min.
    db.update_named("items", &ik(8), &[("val", Value::Int(-5))])
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
}

#[test]
fn avg_aggregate_via_general_rule() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let plan = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .group_by(&["items.grp"], &[(AggFunc::Avg, "items.val", "mean")])
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    for round in 1..4 {
        mutate_round(&mut db, round);
        ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
    }
}

#[test]
fn multi_aggregate_sum_and_count() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let plan = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .join(
            PlanBuilder::scan(&cat, "tags").unwrap(),
            &[("items.id", "tags.item")],
        )
        .unwrap()
        .group_by(
            &["items.grp"],
            &[
                (AggFunc::Sum, "items.val", "total"),
                (AggFunc::Count, "*", "n"),
            ],
        )
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    for round in 1..5 {
        mutate_round(&mut db, round);
        ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
    }
}

#[test]
fn group_moving_update_on_group_column() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let plan = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .group_by(&["items.grp"], &[(AggFunc::Sum, "items.val", "total")])
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    // Move a row between groups (the update touches the group column —
    // the blocking rule is inapplicable, the general rule must run).
    db.update_named("items", &ik(5), &[("grp", Value::Int(0))])
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    // Move every row of a group away: the group must disappear.
    for i in [2i64, 6, 10, 14, 18] {
        db.update_named("items", &ik(i), &[("grp", Value::Int(1))])
            .unwrap();
    }
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    assert!(db
        .table("V")
        .unwrap()
        .get_uncounted(&Key(vec![Value::Int(2)]))
        .is_none());
}

#[test]
fn theta_join_residual_condition() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    let left = PlanBuilder::scan_as(&cat, "items", "a").unwrap();
    let right = PlanBuilder::scan_as(&cat, "items", "b").unwrap();
    // a.grp = b.grp AND a.val < b.val
    let plan = left
        .join_residual(right, &[("a.grp", "b.grp")], Expr::col(2).lt(Expr::col(5)))
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    // Updates on the residual column are condition-affected.
    db.update_named("items", &ik(0), &[("val", Value::Int(1_000))])
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    db.delete("items", &ik(12)).unwrap();
    db.insert("items", row![55, 0, 35]).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
}

#[test]
fn stacked_aggregates_get_output_cache() {
    let mut db = db_two_tables();
    let cat = DbCatalog(&db);
    // Count how many groups share each total: γ over γ.
    let inner = PlanBuilder::scan(&cat, "items")
        .unwrap()
        .group_by(&["items.grp"], &[(AggFunc::Sum, "items.val", "total")])
        .unwrap();
    let plan = inner
        .group_by(&["total"], &[(AggFunc::Count, "*", "n_groups")])
        .unwrap()
        .build()
        .unwrap();
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    // The inner γ's output must have been materialized as a cache.
    assert!(!ivm.caches().is_empty());
    for round in 1..4 {
        db.update_named("items", &ik(round), &[("val", Value::Int(round * 7))])
            .unwrap();
        ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
    }
}
