//! Property-based differential testing: random modification batches
//! against random-ish views, with full recomputation as the oracle.
//!
//! This is the strongest correctness statement in the repository: for
//! *any* interleaving of inserts, deletes, and updates across all three
//! base tables, maintaining the view with idIVM produces exactly the
//! relation a from-scratch recomputation produces.

use idivm_algebra::{AggFunc, Expr, Plan, PlanBuilder};
use idivm_core::{IdIvm, IvmOptions};
use idivm_exec::{executor::sorted, recompute_rows, DbCatalog};
use idivm_reldb::Database;
use idivm_types::{row, ColumnType, Key, Schema, Value};
use proptest::prelude::*;

/// One randomly chosen base-table modification.
#[derive(Debug, Clone)]
enum Mutation {
    InsertPart { pid: u8, price: i64 },
    DeletePart { pid: u8 },
    UpdatePrice { pid: u8, price: i64 },
    InsertDevice { did: u8, phone: bool },
    DeleteDevice { did: u8 },
    FlipCategory { did: u8 },
    InsertLink { did: u8, pid: u8 },
    DeleteLink { did: u8, pid: u8 },
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0u8..12, 1i64..50).prop_map(|(pid, price)| Mutation::InsertPart { pid, price }),
        (0u8..12).prop_map(|pid| Mutation::DeletePart { pid }),
        (0u8..12, 1i64..50).prop_map(|(pid, price)| Mutation::UpdatePrice { pid, price }),
        (0u8..8, any::<bool>()).prop_map(|(did, phone)| Mutation::InsertDevice { did, phone }),
        (0u8..8).prop_map(|did| Mutation::DeleteDevice { did }),
        (0u8..8).prop_map(|did| Mutation::FlipCategory { did }),
        (0u8..8, 0u8..12).prop_map(|(did, pid)| Mutation::InsertLink { did, pid }),
        (0u8..8, 0u8..12).prop_map(|(did, pid)| Mutation::DeleteLink { did, pid }),
    ]
}

fn pid(n: u8) -> String {
    format!("P{n}")
}

fn did(n: u8) -> String {
    format!("D{n}")
}

fn apply_mutation(db: &mut Database, m: &Mutation) {
    match m {
        Mutation::InsertPart { pid: p, price } => {
            let _ = db.insert("parts", row![pid(*p).as_str(), *price]);
        }
        Mutation::DeletePart { pid: p } => {
            let _ = db.delete("parts", &Key(vec![Value::str(pid(*p))]));
        }
        Mutation::UpdatePrice { pid: p, price } => {
            let _ = db.update_named(
                "parts",
                &Key(vec![Value::str(pid(*p))]),
                &[("price", Value::Int(*price))],
            );
        }
        Mutation::InsertDevice { did: d, phone } => {
            let cat = if *phone { "phone" } else { "tablet" };
            let _ = db.insert("devices", row![did(*d).as_str(), cat]);
        }
        Mutation::DeleteDevice { did: d } => {
            let _ = db.delete("devices", &Key(vec![Value::str(did(*d))]));
        }
        Mutation::FlipCategory { did: d } => {
            let key = Key(vec![Value::str(did(*d))]);
            let current = db
                .table("devices")
                .unwrap()
                .get_uncounted(&key)
                .map(|r| r[1].clone());
            if let Some(Value::Str(s)) = current {
                let new = if &*s == "phone" { "tablet" } else { "phone" };
                let _ = db.update_named("devices", &key, &[("category", Value::str(new))]);
            }
        }
        Mutation::InsertLink { did: d, pid: p } => {
            let _ = db.insert("devices_parts", row![did(*d).as_str(), pid(*p).as_str()]);
        }
        Mutation::DeleteLink { did: d, pid: p } => {
            let _ = db.delete(
                "devices_parts",
                &Key(vec![Value::str(did(*d)), Value::str(pid(*p))]),
            );
        }
    }
}

fn setup_db(seed_links: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    db.set_logging(false);
    db.create_table(
        "parts",
        Schema::from_pairs(
            &[("pid", ColumnType::Str), ("price", ColumnType::Int)],
            &["pid"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "devices",
        Schema::from_pairs(
            &[("did", ColumnType::Str), ("category", ColumnType::Str)],
            &["did"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "devices_parts",
        Schema::from_pairs(
            &[("did", ColumnType::Str), ("pid", ColumnType::Str)],
            &["did", "pid"],
        )
        .unwrap(),
    )
    .unwrap();
    for p in 0..6u8 {
        db.insert("parts", row![pid(p).as_str(), (p as i64 + 1) * 10])
            .unwrap();
    }
    for d in 0..4u8 {
        let cat = if d % 2 == 0 { "phone" } else { "tablet" };
        db.insert("devices", row![did(d).as_str(), cat]).unwrap();
    }
    for (d, p) in seed_links {
        let _ = db.insert("devices_parts", row![did(*d).as_str(), pid(*p).as_str()]);
    }
    db.set_logging(true);
    db
}

/// The view shapes exercised.
#[derive(Debug, Clone, Copy)]
enum ViewShape {
    Spj,
    Aggregate,
    AntiJoin,
    Union,
    Projection,
}

fn build_view(db: &Database, shape: ViewShape) -> Plan {
    let cat = DbCatalog(db);
    match shape {
        ViewShape::Spj => PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices").unwrap(),
                &[("devices_parts.did", "devices.did")],
            )
            .unwrap()
            .select_eq("devices.category", "phone")
            .unwrap()
            .build()
            .unwrap(),
        ViewShape::Aggregate => PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .join(
                PlanBuilder::scan(&cat, "devices").unwrap(),
                &[("devices_parts.did", "devices.did")],
            )
            .unwrap()
            .select_eq("devices.category", "phone")
            .unwrap()
            .group_by(
                &["devices_parts.did"],
                &[
                    (AggFunc::Sum, "parts.price", "cost"),
                    (AggFunc::Count, "parts.pid", "n_parts"),
                ],
            )
            .unwrap()
            .build()
            .unwrap(),
        ViewShape::AntiJoin => PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .anti_join(
                PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                &[("parts.pid", "devices_parts.pid")],
            )
            .unwrap()
            .build()
            .unwrap(),
        ViewShape::Union => {
            let cheap = PlanBuilder::scan(&cat, "parts")
                .unwrap()
                .select(Expr::col(1).lt(Expr::lit(25)))
                .build()
                .unwrap();
            let used = PlanBuilder::scan(&cat, "parts")
                .unwrap()
                .semi_join(
                    PlanBuilder::scan(&cat, "devices_parts").unwrap(),
                    &[("parts.pid", "devices_parts.pid")],
                )
                .unwrap()
                .build()
                .unwrap();
            Plan::UnionAll {
                left: Box::new(cheap),
                right: Box::new(used),
            }
        }
        ViewShape::Projection => PlanBuilder::scan(&cat, "parts")
            .unwrap()
            .project(vec![
                ("pid".to_string(), Expr::col(0)),
                (
                    "double_price".to_string(),
                    Expr::col(1).mul(Expr::lit(2)),
                ),
            ])
            .build()
            .unwrap(),
    }
}

fn run_differential(shape: ViewShape, seed_links: Vec<(u8, u8)>, batches: Vec<Vec<Mutation>>) {
    let mut db = setup_db(&seed_links);
    let plan = build_view(&db, shape);
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    for batch in &batches {
        for m in batch {
            apply_mutation(&mut db, m);
        }
        ivm.maintain(&mut db).unwrap();
        let expected = sorted(recompute_rows(&db, ivm.plan()).unwrap());
        let actual = sorted(db.table("V").unwrap().rows_uncounted());
        assert_eq!(actual, expected, "divergence for {shape:?} after {batch:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spj_view_matches_oracle(
        links in proptest::collection::vec((0u8..4, 0u8..6), 0..10),
        batches in proptest::collection::vec(
            proptest::collection::vec(mutation_strategy(), 1..8), 1..4),
    ) {
        run_differential(ViewShape::Spj, links, batches);
    }

    #[test]
    fn aggregate_view_matches_oracle(
        links in proptest::collection::vec((0u8..4, 0u8..6), 0..10),
        batches in proptest::collection::vec(
            proptest::collection::vec(mutation_strategy(), 1..8), 1..4),
    ) {
        run_differential(ViewShape::Aggregate, links, batches);
    }

    #[test]
    fn antijoin_view_matches_oracle(
        links in proptest::collection::vec((0u8..4, 0u8..6), 0..10),
        batches in proptest::collection::vec(
            proptest::collection::vec(mutation_strategy(), 1..8), 1..4),
    ) {
        run_differential(ViewShape::AntiJoin, links, batches);
    }

    #[test]
    fn union_view_matches_oracle(
        links in proptest::collection::vec((0u8..4, 0u8..6), 0..10),
        batches in proptest::collection::vec(
            proptest::collection::vec(mutation_strategy(), 1..8), 1..4),
    ) {
        run_differential(ViewShape::Union, links, batches);
    }

    #[test]
    fn projection_view_matches_oracle(
        links in proptest::collection::vec((0u8..4, 0u8..6), 0..10),
        batches in proptest::collection::vec(
            proptest::collection::vec(mutation_strategy(), 1..8), 1..4),
    ) {
        run_differential(ViewShape::Projection, links, batches);
    }
}
