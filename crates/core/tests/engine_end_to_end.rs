//! End-to-end differential tests of the idIVM engine against full
//! recomputation, on the paper's running example (Figures 1, 2 and 5).

use idivm_algebra::{AggFunc, PlanBuilder};
use idivm_core::{IdIvm, IvmOptions};
use idivm_exec::{executor::sorted, recompute_rows, DbCatalog};
use idivm_reldb::Database;
use idivm_types::{row, ColumnType, Key, Schema, Value};

/// Figure 1/2's database.
fn setup_db() -> Database {
    let mut db = Database::new();
    db.set_logging(false);
    db.create_table(
        "parts",
        Schema::from_pairs(
            &[("pid", ColumnType::Str), ("price", ColumnType::Int)],
            &["pid"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "devices",
        Schema::from_pairs(
            &[("did", ColumnType::Str), ("category", ColumnType::Str)],
            &["did"],
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        "devices_parts",
        Schema::from_pairs(
            &[("did", ColumnType::Str), ("pid", ColumnType::Str)],
            &["did", "pid"],
        )
        .unwrap(),
    )
    .unwrap();
    db.insert("parts", row!["P1", 10]).unwrap();
    db.insert("parts", row!["P2", 20]).unwrap();
    db.insert("devices", row!["D1", "phone"]).unwrap();
    db.insert("devices", row!["D2", "phone"]).unwrap();
    db.insert("devices", row!["D3", "tablet"]).unwrap();
    db.insert("devices_parts", row!["D1", "P1"]).unwrap();
    db.insert("devices_parts", row!["D2", "P1"]).unwrap();
    db.insert("devices_parts", row!["D1", "P2"]).unwrap();
    db.set_logging(true);
    db
}

/// Figure 1b's SPJ view V.
fn spj_plan(db: &Database) -> idivm_algebra::Plan {
    let cat = DbCatalog(db);
    PlanBuilder::scan(&cat, "parts")
        .unwrap()
        .join(
            PlanBuilder::scan(&cat, "devices_parts").unwrap(),
            &[("parts.pid", "devices_parts.pid")],
        )
        .unwrap()
        .join(
            PlanBuilder::scan(&cat, "devices").unwrap(),
            &[("devices_parts.did", "devices.did")],
        )
        .unwrap()
        .select_eq("devices.category", "phone")
        .unwrap()
        .project_names(&["devices_parts.did", "parts.pid", "parts.price"])
        .unwrap()
        .build()
        .unwrap()
}

/// Figure 5b's aggregate view V′.
fn agg_plan(db: &Database) -> idivm_algebra::Plan {
    let cat = DbCatalog(db);
    PlanBuilder::scan(&cat, "parts")
        .unwrap()
        .join(
            PlanBuilder::scan(&cat, "devices_parts").unwrap(),
            &[("parts.pid", "devices_parts.pid")],
        )
        .unwrap()
        .join(
            PlanBuilder::scan(&cat, "devices").unwrap(),
            &[("devices_parts.did", "devices.did")],
        )
        .unwrap()
        .select_eq("devices.category", "phone")
        .unwrap()
        .group_by(
            &["devices_parts.did"],
            &[(AggFunc::Sum, "parts.price", "cost")],
        )
        .unwrap()
        .build()
        .unwrap()
}

fn check(db: &Database, ivm: &IdIvm) {
    let expected = sorted(recompute_rows(db, ivm.plan()).unwrap());
    let actual = sorted(db.table(ivm.view_name()).unwrap().rows_uncounted());
    assert_eq!(actual, expected, "view diverged from recomputation");
}

fn k(s: &str) -> Key {
    Key(vec![Value::str(s)])
}

fn k2(a: &str, b: &str) -> Key {
    Key(vec![Value::str(a), Value::str(b)])
}

#[test]
fn figure2_price_update_on_spj_view() {
    let mut db = setup_db();
    let plan = spj_plan(&db);
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    // The Figure 2 modification: P1's price 10 → 11.
    db.update_named("parts", &k("P1"), &[("price", Value::Int(11))])
        .unwrap();
    let report = ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    // One base diff tuple (compression: the single i-diff tuple updates
    // two view tuples).
    assert_eq!(report.base_diff_tuples, 1);
    assert_eq!(report.view_outcome.updated, 2);
    // Non-conditional update: zero diff-computation accesses (the
    // i-diff passes straight to the view — queries Q∆ of Example 1.2).
    assert_eq!(report.diff_compute.total(), 0);
}

#[test]
fn figure7_aggregate_view_with_cache() {
    let mut db = setup_db();
    let plan = agg_plan(&db);
    let ivm = IdIvm::setup(&mut db, "Vagg", plan, IvmOptions::default()).unwrap();
    assert_eq!(ivm.caches().len(), 1, "input cache below γ expected");
    // Initial content: D1 → 30, D2 → 10.
    db.update_named("parts", &k("P1"), &[("price", Value::Int(11))])
        .unwrap();
    let report = ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    let v = db.table("Vagg").unwrap();
    assert_eq!(v.get_uncounted(&k("D1")).unwrap(), &row!["D1", 31]);
    assert_eq!(v.get_uncounted(&k("D2")).unwrap(), &row!["D2", 11]);
    // The cache holds the SPJ subview and was updated too.
    assert!(report.cache_update.total() > 0);
}

#[test]
fn inserts_into_all_tables() {
    let mut db = setup_db();
    let plan = spj_plan(&db);
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    db.insert("parts", row!["P3", 30]).unwrap();
    db.insert("devices_parts", row!["D3", "P3"]).unwrap(); // tablet: filtered
    db.insert("devices_parts", row!["D1", "P3"]).unwrap(); // phone: joins
    db.insert("devices", row!["D4", "phone"]).unwrap();
    db.insert("devices_parts", row!["D4", "P1"]).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    assert_eq!(db.table("V").unwrap().len(), 5);
}

#[test]
fn deletes_cascade_through_joins() {
    let mut db = setup_db();
    let plan = spj_plan(&db);
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    db.delete("parts", &k("P1")).unwrap();
    db.delete("devices_parts", &k2("D1", "P1")).unwrap();
    db.delete("devices_parts", &k2("D2", "P1")).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    assert_eq!(db.table("V").unwrap().len(), 1); // only (D1, P2)
}

#[test]
fn conditional_update_moves_tuples_in_and_out() {
    let mut db = setup_db();
    let plan = spj_plan(&db);
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    // D3 becomes a phone (enters), D2 becomes a tablet (leaves).
    db.insert("devices_parts", row!["D3", "P2"]).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    db.update_named("devices", &k("D3"), &[("category", Value::str("phone"))])
        .unwrap();
    db.update_named("devices", &k("D2"), &[("category", Value::str("tablet"))])
        .unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    // Compare the user-visible columns (Pass 1 appended extra ID
    // columns to the projection: Vorig = π_Ā V_ID, Section 4).
    let rows = sorted(
        db.table("V")
            .unwrap()
            .rows_uncounted()
            .into_iter()
            .map(|r| r.project(&[0, 1, 2]))
            .collect(),
    );
    assert_eq!(
        rows,
        vec![
            row!["D1", "P1", 10],
            row!["D1", "P2", 20],
            row!["D3", "P2", 20],
        ]
    );
}

#[test]
fn aggregate_group_creation_and_deletion() {
    let mut db = setup_db();
    let plan = agg_plan(&db);
    let ivm = IdIvm::setup(&mut db, "Vagg", plan, IvmOptions::default()).unwrap();
    // New device with parts: a fresh group must appear.
    db.insert("devices", row!["D4", "phone"]).unwrap();
    db.insert("devices_parts", row!["D4", "P2"]).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    assert_eq!(
        db.table("Vagg").unwrap().get_uncounted(&k("D4")).unwrap(),
        &row!["D4", 20]
    );
    // Remove all of D2's parts: its group must disappear.
    db.delete("devices_parts", &k2("D2", "P1")).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    assert!(db.table("Vagg").unwrap().get_uncounted(&k("D2")).is_none());
}

#[test]
fn mixed_batch_in_one_round() {
    let mut db = setup_db();
    let plan = agg_plan(&db);
    let ivm = IdIvm::setup(&mut db, "Vagg", plan, IvmOptions::default()).unwrap();
    // Update + insert + delete in one deferred round.
    db.update_named("parts", &k("P2"), &[("price", Value::Int(25))])
        .unwrap();
    db.insert("parts", row!["P3", 7]).unwrap();
    db.insert("devices_parts", row!["D2", "P3"]).unwrap();
    db.delete("devices_parts", &k2("D1", "P1")).unwrap();
    ivm.maintain(&mut db).unwrap();
    check(&db, &ivm);
    let v = db.table("Vagg").unwrap();
    assert_eq!(v.get_uncounted(&k("D1")).unwrap(), &row!["D1", 25]);
    assert_eq!(v.get_uncounted(&k("D2")).unwrap(), &row!["D2", 17]);
}

#[test]
fn repeated_rounds_converge() {
    let mut db = setup_db();
    let plan = spj_plan(&db);
    let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default()).unwrap();
    for i in 0..5 {
        db.update_named("parts", &k("P1"), &[("price", Value::Int(100 + i))])
            .unwrap();
        ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
    }
    // Empty round is a no-op.
    let report = ivm.maintain(&mut db).unwrap();
    assert_eq!(report.base_diff_tuples, 0);
    assert_eq!(report.total_accesses(), 0);
}

#[test]
fn minimization_off_gives_same_result_more_accesses() {
    let run = |minimize: bool| -> (Vec<idivm_types::Row>, u64) {
        let mut db = setup_db();
        let plan = spj_plan(&db);
        let ivm = IdIvm::setup(
            &mut db,
            "V",
            plan,
            IvmOptions {
                minimize,
                ..Default::default()
            },
        )
        .unwrap();
        db.update_named("parts", &k("P1"), &[("price", Value::Int(11))])
            .unwrap();
        let report = ivm.maintain(&mut db).unwrap();
        check(&db, &ivm);
        (
            sorted(db.table("V").unwrap().rows_uncounted()),
            report.total_accesses(),
        )
    };
    let (rows_min, cost_min) = run(true);
    let (rows_gen, cost_gen) = run(false);
    assert_eq!(rows_min, rows_gen);
    assert!(
        cost_min < cost_gen,
        "minimization should reduce accesses ({cost_min} vs {cost_gen})"
    );
}

#[test]
fn delta_script_rendering_mentions_caches_and_tables() {
    let mut db = setup_db();
    let plan = agg_plan(&db);
    let ivm = IdIvm::setup(&mut db, "Vagg", plan, IvmOptions::default()).unwrap();
    let script = idivm_core::script::explain_script(&ivm);
    assert!(script.contains("∆-script for view `Vagg`"));
    assert!(script.contains("parts"));
    assert!(script.contains("APPLY"));
    assert!(script.contains("cache"));
}
