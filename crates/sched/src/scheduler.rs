//! Per-view refresh policies and round scheduling over a
//! [`ViewCatalog`].
//!
//! A [`MaintenanceScheduler`] owns the catalog and, for each view, a
//! **refresh policy**, a **pending net** (the composed effective
//! changes the view has not seen yet), and a staleness counter. One
//! [`MaintenanceScheduler::tick`] is the unit of time:
//!
//! 1. Fold the database's modification log once and clear it — from
//!    here the scheduler owns the changes.
//! 2. Compose the folded net onto every dependent view's pending net
//!    ([`compose_changes`]): pendings accumulated over several ticks
//!    are exactly what folding the concatenated log would have
//!    produced, so a deferred round is one bigger — not different —
//!    round.
//! 3. Maintain every *due* view (policy decides), all against one
//!    fresh [`SharedDiffCache`]: the first due view to walk a
//!    designated shared prefix publishes its i-diffs, every later due
//!    view with the same pending horizon reuses them at zero counted
//!    accesses.
//! 4. Route any maintenance failure through a per-view
//!    [`MaintenanceSupervisor`] (retry → bisect/quarantine → recompute
//!    → degrade). A failing or degraded view never blocks or corrupts
//!    its siblings: each round is atomic over that view's table and
//!    caches only, and its pending net stays queued for the next tick.
//!
//! **Staleness semantics.** A view's staleness is the number of ticks
//! its pending net has been non-empty. `Eager` refreshes at staleness
//! 1 (every tick it has changes); `Deferred { max_staleness_rounds: k }`
//! lets staleness grow to `k` before refreshing, folding up to `k`
//! ticks of changes into one round; `OnRead` never refreshes on a tick
//! — [`MaintenanceScheduler::read_view`] is the barrier that drains
//! it. Once drained, a view's contents are bit-identical under any
//! policy: composition is exact and maintenance is deterministic.

use crate::catalog::ViewCatalog;
use idivm_core::supervisor::{SupervisorConfig, SupervisorReport, SupervisorVerdict};
use idivm_core::{IvmOptions, MaintenanceReport, SharedDiffCache, SharedPrefixStat};
use idivm_exec::ParallelConfig;
use idivm_reldb::{compose_changes, Database, StatsSnapshot, TableChanges};
use idivm_types::{Error, Result, Row};
use std::collections::{BTreeMap, HashMap};

/// When a view's pending changes are propagated into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// Refresh on every tick that delivers changes (staleness never
    /// exceeds 1).
    Eager,
    /// Let pending changes accumulate for up to `max_staleness_rounds`
    /// ticks, then refresh in one composed round.
    /// `max_staleness_rounds = 1` behaves like [`RefreshPolicy::Eager`];
    /// 0 is rejected at registration.
    Deferred {
        /// Maximum ticks a non-empty pending net may age before the
        /// scheduler refreshes the view.
        max_staleness_rounds: u32,
    },
    /// Never refresh on a tick; pending changes drain only through the
    /// [`MaintenanceScheduler::read_view`] barrier (or an explicit
    /// [`MaintenanceScheduler::drain`]).
    OnRead,
}

impl RefreshPolicy {
    /// Stable lowercase label (JSON, reports).
    pub fn label(self) -> String {
        match self {
            RefreshPolicy::Eager => "eager".to_string(),
            RefreshPolicy::Deferred {
                max_staleness_rounds,
            } => format!("deferred({max_staleness_rounds})"),
            RefreshPolicy::OnRead => "on_read".to_string(),
        }
    }

    fn validate(self) -> Result<()> {
        if let RefreshPolicy::Deferred {
            max_staleness_rounds: 0,
        } = self
        {
            return Err(Error::Config(
                "Deferred requires max_staleness_rounds >= 1 (1 behaves like Eager)".into(),
            ));
        }
        Ok(())
    }
}

/// Cumulative per-view maintenance accounting, attributed by the
/// scheduler on its serial drive loop (snapshot deltas — bit-identical
/// for any `ParallelConfig` thread count).
#[derive(Debug, Clone, Default)]
pub struct ViewStats {
    /// Maintenance rounds run (supervised attempts count as one).
    pub rounds: u64,
    /// Counted accesses attributed to this view's maintenance.
    pub accesses: StatsSnapshot,
    /// View-level diff tuples applied across all rounds.
    pub view_diff_tuples: u64,
    /// Rounds that had to be routed through the supervisor.
    pub supervised_rounds: u64,
    /// Net changes quarantined by supervised rounds, cumulative.
    pub quarantined_changes: u64,
    /// Verdict of the most recent supervised round, if any.
    pub last_verdict: Option<SupervisorVerdict>,
    /// Report of the most recent clean round (carries the round trace
    /// when the engine's trace knob is on).
    pub last_report: Option<MaintenanceReport>,
    /// Report of the most recent supervised round, if any.
    pub last_supervisor: Option<SupervisorReport>,
}

/// What one [`MaintenanceScheduler::tick`] (or drain/read barrier)
/// did.
#[derive(Debug, Clone, Default)]
pub struct RoundSummary {
    /// Scheduler round number (1-based; barriers reuse the current
    /// number without advancing it).
    pub round: u64,
    /// Views maintained this round, in name order, with the accesses
    /// attributed to each.
    pub maintained: Vec<(String, StatsSnapshot)>,
    /// Views left stale this round (non-empty pending, not due), with
    /// their staleness in ticks.
    pub deferred: Vec<(String, u32)>,
    /// Per-prefix sharing outcomes for the round's shared cache:
    /// compute cost, published diff tuples, reuse hits.
    pub prefix_stats: Vec<SharedPrefixStat>,
    /// Reuse hits across all shared prefixes this round.
    pub shared_hits: u64,
    /// Counted accesses the reuses avoided.
    pub shared_saved_accesses: u64,
    /// Views whose round went through the supervisor, with verdicts.
    pub verdicts: Vec<(String, SupervisorVerdict)>,
}

impl RoundSummary {
    /// Total counted accesses across the round's maintained views.
    pub fn total_accesses(&self) -> u64 {
        self.maintained.iter().map(|(_, s)| s.total()).sum()
    }
}

struct ViewState {
    policy: RefreshPolicy,
    pending: HashMap<String, TableChanges>,
    staleness: u32,
    stats: ViewStats,
}

/// Scheduler-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Compute shared operator-tree prefixes once per round and fan the
    /// i-diffs out to every dependent due view (on by default; off
    /// gives the independent-maintenance baseline the benches compare
    /// against).
    pub share_prefixes: bool,
    /// Supervisor configuration for failure routing.
    pub supervisor: SupervisorConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            share_prefixes: true,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Drives a [`ViewCatalog`] under per-view refresh policies. See the
/// module docs for the tick protocol.
pub struct MaintenanceScheduler {
    catalog: ViewCatalog,
    states: BTreeMap<String, ViewState>,
    config: SchedulerConfig,
    round: u64,
}

impl MaintenanceScheduler {
    /// Wrap a database under `config` with no views registered yet.
    pub fn new(db: Database, config: SchedulerConfig) -> Self {
        MaintenanceScheduler {
            catalog: ViewCatalog::new(db),
            states: BTreeMap::new(),
            config,
            round: 0,
        }
    }

    /// Register and materialize a view under a refresh policy.
    ///
    /// # Errors
    /// Invalid policy or any [`ViewCatalog::register`] failure.
    pub fn register(
        &mut self,
        name: &str,
        plan: idivm_algebra::Plan,
        policy: RefreshPolicy,
        options: IvmOptions,
    ) -> Result<()> {
        policy.validate()?;
        self.catalog.register(name, plan, options)?;
        self.states.insert(
            name.to_string(),
            ViewState {
                policy,
                pending: HashMap::new(),
                staleness: 0,
                stats: ViewStats::default(),
            },
        );
        Ok(())
    }

    /// Drop a view, discarding its pending changes.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn unregister(&mut self, name: &str) -> Result<()> {
        self.catalog.unregister(name)?;
        self.states.remove(name);
        Ok(())
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &ViewCatalog {
        &self.catalog
    }

    /// Mutable catalog access (engine knob configuration).
    pub fn catalog_mut(&mut self) -> &mut ViewCatalog {
        &mut self.catalog
    }

    /// Mutable database access — base-table modifications enter here
    /// and accumulate in the modification log until the next tick or
    /// barrier.
    pub fn db_mut(&mut self) -> &mut Database {
        self.catalog.db_mut()
    }

    /// The shared database.
    pub fn db(&self) -> &Database {
        self.catalog.db()
    }

    /// A view's refresh policy.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn policy(&self, name: &str) -> Result<RefreshPolicy> {
        Ok(self.state(name)?.policy)
    }

    /// Change a view's refresh policy (takes effect next tick; pending
    /// changes are preserved).
    ///
    /// # Errors
    /// Unknown view name or invalid policy.
    pub fn set_policy(&mut self, name: &str, policy: RefreshPolicy) -> Result<()> {
        policy.validate()?;
        self.state_mut(name)?.policy = policy;
        Ok(())
    }

    /// Set every registered engine's partitioned-propagation
    /// configuration (results and counted accesses stay bit-identical
    /// for any thread count).
    ///
    /// # Errors
    /// Invalid thread count.
    pub fn set_parallel_all(&mut self, parallel: ParallelConfig) -> Result<()> {
        use idivm_core::EngineConfig;
        let names: Vec<String> = self.states.keys().cloned().collect();
        for name in names {
            self.catalog.view_mut(&name)?.engine_mut().set_parallel(parallel)?;
        }
        Ok(())
    }

    /// A view's cumulative maintenance statistics.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn stats(&self, name: &str) -> Result<&ViewStats> {
        Ok(&self.state(name)?.stats)
    }

    /// Ticks a view's pending net has been non-empty (0 = up to date).
    ///
    /// # Errors
    /// Unknown view name.
    pub fn staleness(&self, name: &str) -> Result<u32> {
        Ok(self.state(name)?.staleness)
    }

    /// The view's composed pending net (empty when up to date).
    ///
    /// # Errors
    /// Unknown view name.
    pub fn pending(&self, name: &str) -> Result<&HashMap<String, TableChanges>> {
        Ok(&self.state(name)?.pending)
    }

    /// Completed scheduler rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    fn state(&self, name: &str) -> Result<&ViewState> {
        self.states
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    fn state_mut(&mut self, name: &str) -> Result<&mut ViewState> {
        self.states
            .get_mut(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    /// Fold the database log once, clear it, and compose the per-view
    /// slices onto every dependent view's pending net. Advances
    /// staleness for every view left with a non-empty pending.
    fn distribute(&mut self) -> Result<()> {
        let net = self.catalog.db().fold_log();
        if !net.is_empty() {
            self.catalog.db_mut().clear_log();
            for name in self.states.keys().cloned().collect::<Vec<_>>() {
                let slice = self.catalog.restrict_net(&name, &net)?;
                if !slice.is_empty() {
                    let state = self.state_mut(&name)?;
                    compose_changes(&mut state.pending, slice);
                }
            }
        }
        Ok(())
    }

    /// One scheduler round: distribute freshly logged changes, then
    /// maintain every due view against one fresh shared-prefix cache.
    /// Never fails on maintenance errors — those are routed through the
    /// per-view supervisor and surface as verdicts in the summary.
    ///
    /// # Errors
    /// Catalog inconsistencies only (unknown view — a bug).
    pub fn tick(&mut self) -> Result<RoundSummary> {
        self.round += 1;
        self.distribute()?;
        // Staleness advances on ticks (barriers reuse it as-is).
        for state in self.states.values_mut() {
            if !state.pending.is_empty() {
                state.staleness += 1;
            }
        }
        let due: Vec<String> = self
            .states
            .iter()
            .filter(|(_, s)| match s.policy {
                RefreshPolicy::Eager => !s.pending.is_empty(),
                RefreshPolicy::Deferred {
                    max_staleness_rounds,
                } => !s.pending.is_empty() && s.staleness >= max_staleness_rounds,
                RefreshPolicy::OnRead => false,
            })
            .map(|(n, _)| n.clone())
            .collect();
        self.maintain_views(&due)
    }

    /// Read barrier: bring `name` fully up to date (distributing any
    /// freshly logged changes first), then return its sorted rows.
    /// This is how `OnRead` views are served; it is equally valid for
    /// any policy.
    ///
    /// # Errors
    /// Unknown view name, or a degraded view (its supervisor could not
    /// converge — pending changes are preserved for the next attempt).
    pub fn read_view(&mut self, name: &str) -> Result<Vec<Row>> {
        self.state(name)?;
        self.distribute()?;
        if !self.state(name)?.pending.is_empty() {
            let summary = self.maintain_views(&[name.to_string()])?;
            if let Some((_, verdict)) = summary
                .verdicts
                .iter()
                .find(|(n, v)| n == name && !v.healthy())
            {
                return Err(Error::Config(format!(
                    "view `{name}` is degraded ({}) — pending changes preserved",
                    verdict.label()
                )));
            }
        }
        self.catalog.rows(name)
    }

    /// Drain barrier: bring *every* view fully up to date (one shared
    /// cache across all of them), regardless of policy.
    ///
    /// # Errors
    /// Catalog inconsistencies only; per-view failures surface as
    /// verdicts in the summary.
    pub fn drain(&mut self) -> Result<RoundSummary> {
        self.distribute()?;
        let due: Vec<String> = self
            .states
            .iter()
            .filter(|(_, s)| !s.pending.is_empty())
            .map(|(n, _)| n.clone())
            .collect();
        self.maintain_views(&due)
    }

    /// Maintain `due` views (name order) against one fresh shared
    /// cache, attributing accesses per view and routing failures
    /// through the per-view supervisor.
    fn maintain_views(&mut self, due: &[String]) -> Result<RoundSummary> {
        let mut summary = RoundSummary {
            round: self.round,
            ..RoundSummary::default()
        };
        let mut cache = SharedDiffCache::new();
        let mut due = due.to_vec();
        due.sort();
        for name in &due {
            let net = self.state(name)?.pending.clone();
            if net.is_empty() {
                continue;
            }
            let before = self.catalog.db().stats().snapshot();
            let result = if self.config.share_prefixes {
                self.catalog.maintain_shared(name, &net, &mut cache)
            } else {
                self.catalog.maintain_independent(name, &net)
            };
            match result {
                Ok(report) => {
                    let spent = self.catalog.db().stats().snapshot().since(&before);
                    let state = self.state_mut(name)?;
                    state.pending.clear();
                    state.staleness = 0;
                    state.stats.rounds += 1;
                    state.stats.accesses = state.stats.accesses.merge(spent);
                    state.stats.view_diff_tuples += report.view_diff_tuples as u64;
                    state.stats.last_report = Some(report);
                    summary.maintained.push((name.clone(), spent));
                }
                Err(_) => {
                    // The failed round has been rolled back; escalate
                    // to the per-view supervisor, which owns retries,
                    // bisection/quarantine, and the recompute ladder.
                    let report =
                        self.catalog
                            .maintain_supervised(name, &net, self.config.supervisor)?;
                    let spent = self.catalog.db().stats().snapshot().since(&before);
                    let verdict = report.verdict;
                    let state = self.state_mut(name)?;
                    if verdict.healthy() && verdict != SupervisorVerdict::Idle {
                        state.pending.clear();
                        state.staleness = 0;
                    }
                    state.stats.rounds += 1;
                    state.stats.supervised_rounds += 1;
                    state.stats.accesses = state.stats.accesses.merge(spent);
                    state.stats.quarantined_changes += report.quarantine.len() as u64;
                    state.stats.last_verdict = Some(verdict);
                    state.stats.last_supervisor = Some(report);
                    summary.maintained.push((name.clone(), spent));
                    summary.verdicts.push((name.clone(), verdict));
                }
            }
        }
        for (name, state) in &self.states {
            if !state.pending.is_empty() && !due.contains(name) {
                summary.deferred.push((name.clone(), state.staleness));
            }
        }
        summary.shared_hits = cache.total_hits();
        summary.shared_saved_accesses = cache.total_saved_accesses();
        summary.prefix_stats = cache.stats();
        Ok(summary)
    }
}
