//! Per-view refresh policies and round scheduling over a
//! [`ViewCatalog`].
//!
//! A [`MaintenanceScheduler`] owns the catalog and, for each view, a
//! **refresh policy**, a **pending net** (the composed effective
//! changes the view has not seen yet), and a staleness counter. One
//! [`MaintenanceScheduler::tick`] is the unit of time:
//!
//! 1. Fold the database's modification log once and clear it — from
//!    here the scheduler owns the changes.
//! 2. Compose the folded net onto every dependent view's pending net
//!    ([`compose_changes`]): pendings accumulated over several ticks
//!    are exactly what folding the concatenated log would have
//!    produced, so a deferred round is one bigger — not different —
//!    round.
//! 3. Maintain every *due* view (policy decides), all against one
//!    fresh [`SharedDiffCache`]: the first due view to walk a
//!    designated shared prefix publishes its i-diffs, every later due
//!    view with the same pending horizon reuses them at zero counted
//!    accesses.
//! 4. Route any maintenance failure through a per-view
//!    [`MaintenanceSupervisor`] (retry → bisect/quarantine → recompute
//!    → degrade). A failing or degraded view never blocks or corrupts
//!    its siblings: each round is atomic over that view's table and
//!    caches only, and its pending net stays queued for the next tick.
//!
//! **Staleness semantics.** A view's staleness is the number of ticks
//! its pending net has been non-empty. `Eager` refreshes at staleness
//! 1 (every tick it has changes); `Deferred { max_staleness_rounds: k }`
//! lets staleness grow to `k` before refreshing, folding up to `k`
//! ticks of changes into one round; `OnRead` never refreshes on a tick
//! — [`MaintenanceScheduler::read_view`] is the barrier that drains
//! it. Once drained, a view's contents are bit-identical under any
//! policy: composition is exact and maintenance is deterministic.

use crate::catalog::ViewCatalog;
use idivm_core::supervisor::{SupervisorConfig, SupervisorReport, SupervisorVerdict};
use idivm_core::{
    IngestTrace, IvmOptions, MaintenanceReport, PromotionCandidate, SharedDiffCache,
    SharedPrefixStat,
};
use idivm_cost::{CrossoverModel, PrefixObservation, PromotionConfig, PromotionDecision};
use idivm_exec::ParallelConfig;
use idivm_reldb::{compose_changes, Database, StatsSnapshot, TableChanges};
use idivm_types::{Error, Result, Row};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// When a view's pending changes are propagated into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// Refresh on every tick that delivers changes (staleness never
    /// exceeds 1).
    Eager,
    /// Let pending changes accumulate for up to `max_staleness_rounds`
    /// ticks, then refresh in one composed round.
    /// `max_staleness_rounds = 1` behaves like [`RefreshPolicy::Eager`];
    /// 0 is rejected at registration.
    Deferred {
        /// Maximum ticks a non-empty pending net may age before the
        /// scheduler refreshes the view.
        max_staleness_rounds: u32,
    },
    /// Never refresh on a tick; pending changes drain only through the
    /// [`MaintenanceScheduler::read_view`] barrier (or an explicit
    /// [`MaintenanceScheduler::drain`]).
    OnRead,
}

impl RefreshPolicy {
    /// Stable lowercase label (JSON, reports).
    pub fn label(self) -> String {
        match self {
            RefreshPolicy::Eager => "eager".to_string(),
            RefreshPolicy::Deferred {
                max_staleness_rounds,
            } => format!("deferred({max_staleness_rounds})"),
            RefreshPolicy::OnRead => "on_read".to_string(),
        }
    }

    fn validate(self) -> Result<()> {
        if let RefreshPolicy::Deferred {
            max_staleness_rounds: 0,
        } = self
        {
            return Err(Error::Config(
                "Deferred requires max_staleness_rounds >= 1 (1 behaves like Eager)".into(),
            ));
        }
        Ok(())
    }
}

/// Cumulative per-view maintenance accounting, attributed by the
/// scheduler on its serial drive loop (snapshot deltas — bit-identical
/// for any `ParallelConfig` thread count).
#[derive(Debug, Clone, Default)]
pub struct ViewStats {
    /// Maintenance rounds run (supervised attempts count as one).
    pub rounds: u64,
    /// Counted accesses attributed to this view's maintenance.
    pub accesses: StatsSnapshot,
    /// View-level diff tuples applied across all rounds.
    pub view_diff_tuples: u64,
    /// Rounds that had to be routed through the supervisor.
    pub supervised_rounds: u64,
    /// Net changes quarantined by supervised rounds, cumulative.
    pub quarantined_changes: u64,
    /// Verdict of the most recent supervised round, if any.
    pub last_verdict: Option<SupervisorVerdict>,
    /// Report of the most recent clean round (carries the round trace
    /// when the engine's trace knob is on).
    pub last_report: Option<MaintenanceReport>,
    /// Report of the most recent supervised round, if any.
    pub last_supervisor: Option<SupervisorReport>,
}

/// A promotion-state transition applied at the end of a tick (or by a
/// forced API call).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromotionEvent {
    /// `"promote"` or `"demote"`.
    pub action: &'static str,
    /// The hidden backing table created (or dropped).
    pub backing: String,
    /// Human-readable prefix label (e.g. `join[mentions,microblog]`).
    pub label: String,
    /// Consumer views rewired by the transition, sorted.
    pub consumers: Vec<String>,
}

/// One maintain-vs-recompute comparison evaluated by the cost model at
/// the end of a tick — the predicted-vs-observed record behind each
/// promotion verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostEntry {
    /// Prefix label.
    pub label: String,
    /// Whether the prefix was promoted (backed) when observed.
    pub promoted: bool,
    /// Consumer views the prefix serves.
    pub consumers: u64,
    /// Observed compute accesses for the prefix this round (`C`).
    pub observed_compute: u64,
    /// Observed diff tuples produced this round (`D`).
    pub observed_diff_tuples: u64,
    /// Predicted per-round cost of maintaining a backing, in
    /// milli-accesses.
    pub predicted_maintain_milli: u128,
    /// Predicted per-round cost of recomputing the prefix in every
    /// consumer, in milli-accesses.
    pub predicted_recompute_milli: u128,
    /// The model's verdict after hysteresis.
    pub decision: PromotionDecision,
}

/// What one [`MaintenanceScheduler::tick`] (or drain/read barrier)
/// did.
#[derive(Debug, Clone, Default)]
pub struct RoundSummary {
    /// Scheduler round number (1-based; barriers reuse the current
    /// number without advancing it).
    pub round: u64,
    /// Views maintained this round, in name order, with the accesses
    /// attributed to each.
    pub maintained: Vec<(String, StatsSnapshot)>,
    /// Promoted intermediates maintained this round (before any
    /// consumer), in backing-name order, with attributed accesses.
    pub intermediates: Vec<(String, StatsSnapshot)>,
    /// Views left stale this round (non-empty pending, not due), with
    /// their staleness in ticks.
    pub deferred: Vec<(String, u32)>,
    /// Per-prefix sharing outcomes for the round's shared cache:
    /// compute cost, published diff tuples, reuse hits.
    pub prefix_stats: Vec<SharedPrefixStat>,
    /// Reuse hits across all shared prefixes this round.
    pub shared_hits: u64,
    /// Counted accesses the reuses avoided.
    pub shared_saved_accesses: u64,
    /// Views whose round went through the supervisor, with verdicts
    /// (includes promoted intermediates, under their backing names).
    pub verdicts: Vec<(String, SupervisorVerdict)>,
    /// Promotion/demotion transitions applied at the end of this tick.
    pub promotions: Vec<PromotionEvent>,
    /// Cost-model comparisons evaluated at the end of this tick, in
    /// label order.
    pub cost: Vec<CostEntry>,
    /// Ingest pseudo-phase for streamed rounds
    /// ([`MaintenanceScheduler::tick_ingest`]); `None` for rounds fed
    /// by direct DML.
    pub ingest: Option<IngestTrace>,
}

impl RoundSummary {
    /// Total counted accesses across the round's maintained views and
    /// intermediates.
    pub fn total_accesses(&self) -> u64 {
        self.maintained
            .iter()
            .chain(self.intermediates.iter())
            .map(|(_, s)| s.total())
            .sum()
    }

    /// Render the summary as a deterministic JSON object (hand-rolled;
    /// labels and names contain no characters requiring escapes).
    pub fn to_json(&self) -> String {
        fn views(items: &[(String, StatsSnapshot)]) -> String {
            let parts: Vec<String> = items
                .iter()
                .map(|(n, s)| format!("{{\"name\":\"{n}\",\"accesses\":{}}}", s.total()))
                .collect();
            format!("[{}]", parts.join(","))
        }
        let deferred: Vec<String> = self
            .deferred
            .iter()
            .map(|(n, st)| format!("{{\"name\":\"{n}\",\"staleness\":{st}}}"))
            .collect();
        let prefixes: Vec<String> = self
            .prefix_stats
            .iter()
            .map(|p| {
                format!(
                    "{{\"label\":\"{}\",\"compute_accesses\":{},\"diff_tuples\":{},\"hits\":{},\"saved_accesses\":{}}}",
                    p.label,
                    p.compute_accesses.total(),
                    p.diff_tuples,
                    p.hits,
                    p.saved_accesses()
                )
            })
            .collect();
        let verdicts: Vec<String> = self
            .verdicts
            .iter()
            .map(|(n, v)| format!("{{\"name\":\"{n}\",\"verdict\":\"{}\"}}", v.label()))
            .collect();
        let promotions: Vec<String> = self
            .promotions
            .iter()
            .map(|e| {
                let consumers: Vec<String> =
                    e.consumers.iter().map(|c| format!("\"{c}\"")).collect();
                format!(
                    "{{\"action\":\"{}\",\"backing\":\"{}\",\"label\":\"{}\",\"consumers\":[{}]}}",
                    e.action,
                    e.backing,
                    e.label,
                    consumers.join(",")
                )
            })
            .collect();
        let cost: Vec<String> = self
            .cost
            .iter()
            .map(|c| {
                format!(
                    "{{\"label\":\"{}\",\"promoted\":{},\"consumers\":{},\"observed_compute\":{},\"observed_diff_tuples\":{},\"predicted_maintain_milli\":{},\"predicted_recompute_milli\":{},\"decision\":\"{}\"}}",
                    c.label,
                    c.promoted,
                    c.consumers,
                    c.observed_compute,
                    c.observed_diff_tuples,
                    c.predicted_maintain_milli,
                    c.predicted_recompute_milli,
                    c.decision.label()
                )
            })
            .collect();
        let ingest = self
            .ingest
            .as_ref()
            .map_or_else(|| "null".to_string(), IngestTrace::to_json);
        format!(
            "{{\"round\":{},\"total_accesses\":{},\"maintained\":{},\"intermediates\":{},\"deferred\":[{}],\"shared\":{{\"hits\":{},\"saved_accesses\":{},\"prefixes\":[{}]}},\"verdicts\":[{}],\"promotions\":[{}],\"cost\":[{}],\"ingest\":{ingest}}}",
            self.round,
            self.total_accesses(),
            views(&self.maintained),
            views(&self.intermediates),
            deferred.join(","),
            self.shared_hits,
            self.shared_saved_accesses,
            prefixes.join(","),
            verdicts.join(","),
            promotions.join(","),
            cost.join(",")
        )
    }
}

struct ViewState {
    policy: RefreshPolicy,
    pending: HashMap<String, TableChanges>,
    staleness: u32,
    stats: ViewStats,
}

/// Scheduler-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Compute shared operator-tree prefixes once per round and fan the
    /// i-diffs out to every dependent due view (on by default; off
    /// gives the independent-maintenance baseline the benches compare
    /// against).
    pub share_prefixes: bool,
    /// Supervisor configuration for failure routing.
    pub supervisor: SupervisorConfig,
    /// Adaptive intermediate materialization: when `Some`, the
    /// scheduler feeds per-prefix observations from each tick into a
    /// [`CrossoverModel`] per prefix structure and promotes/demotes
    /// backings at tick boundaries. Requires `share_prefixes` (the
    /// shared cache's per-prefix stats are the observation source for
    /// unpromoted prefixes). `None` (the default) disables automatic
    /// decisions; already-promoted intermediates are still maintained.
    pub promotion: Option<PromotionConfig>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            share_prefixes: true,
            supervisor: SupervisorConfig::default(),
            promotion: None,
        }
    }
}

/// Drives a [`ViewCatalog`] under per-view refresh policies. See the
/// module docs for the tick protocol.
pub struct MaintenanceScheduler {
    catalog: ViewCatalog,
    states: BTreeMap<String, ViewState>,
    config: SchedulerConfig,
    round: u64,
    /// Pending base-table nets per promoted backing (keyed by backing
    /// table name). Intermediates are effectively eager: drained at the
    /// start of every tick/barrier, before any consumer runs.
    intermediate_pending: BTreeMap<String, HashMap<String, TableChanges>>,
    /// Cumulative maintenance accounting per promoted backing.
    intermediate_stats: BTreeMap<String, ViewStats>,
    /// Hysteresis trackers keyed by prefix *structure* — they survive
    /// promote/demote transitions so re-promotion uses the same state
    /// machine.
    trackers: BTreeMap<String, CrossoverModel>,
    /// Provenance note stamped onto supervised-round reports after a
    /// crash recovery (set by the durability layer; `None` in ordinary
    /// sessions).
    recovery_note: Option<String>,
}

/// What one intermediate-sync pass (start of tick/barrier) did.
#[derive(Default)]
struct IntermediateRound {
    /// Backings maintained, in name order, with attributed accesses.
    maintained: Vec<(String, StatsSnapshot)>,
    /// Supervised backings with their verdicts.
    verdicts: Vec<(String, SupervisorVerdict)>,
    /// Net backing-delta tuples produced per backing (`D` for the cost
    /// model).
    deltas: BTreeMap<String, u64>,
    /// Backings whose supervised round did not converge — their
    /// consumers are deferred this tick.
    failed: BTreeSet<String>,
}

impl MaintenanceScheduler {
    /// Wrap a database under `config` with no views registered yet.
    pub fn new(db: Database, config: SchedulerConfig) -> Self {
        MaintenanceScheduler {
            catalog: ViewCatalog::new(db),
            states: BTreeMap::new(),
            config,
            round: 0,
            intermediate_pending: BTreeMap::new(),
            intermediate_stats: BTreeMap::new(),
            trackers: BTreeMap::new(),
            recovery_note: None,
        }
    }

    /// Register and materialize a view under a refresh policy.
    ///
    /// # Errors
    /// Invalid policy or any [`ViewCatalog::register`] failure.
    pub fn register(
        &mut self,
        name: &str,
        plan: idivm_algebra::Plan,
        policy: RefreshPolicy,
        options: IvmOptions,
    ) -> Result<()> {
        policy.validate()?;
        self.catalog.register(name, plan, options)?;
        self.states.insert(
            name.to_string(),
            ViewState {
                policy,
                pending: HashMap::new(),
                staleness: 0,
                stats: ViewStats::default(),
            },
        );
        Ok(())
    }

    /// Drop a view, discarding its pending changes.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn unregister(&mut self, name: &str) -> Result<()> {
        self.catalog.unregister(name)?;
        self.states.remove(name);
        Ok(())
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &ViewCatalog {
        &self.catalog
    }

    /// Mutable catalog access (engine knob configuration).
    pub fn catalog_mut(&mut self) -> &mut ViewCatalog {
        &mut self.catalog
    }

    /// Mutable database access — base-table modifications enter here
    /// and accumulate in the modification log until the next tick or
    /// barrier.
    pub fn db_mut(&mut self) -> &mut Database {
        self.catalog.db_mut()
    }

    /// The shared database.
    pub fn db(&self) -> &Database {
        self.catalog.db()
    }

    /// A view's refresh policy.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn policy(&self, name: &str) -> Result<RefreshPolicy> {
        Ok(self.state(name)?.policy)
    }

    /// Change a view's refresh policy (takes effect next tick; pending
    /// changes are preserved).
    ///
    /// # Errors
    /// Unknown view name or invalid policy.
    pub fn set_policy(&mut self, name: &str, policy: RefreshPolicy) -> Result<()> {
        policy.validate()?;
        self.state_mut(name)?.policy = policy;
        Ok(())
    }

    /// Set every registered engine's partitioned-propagation
    /// configuration (results and counted accesses stay bit-identical
    /// for any thread count).
    ///
    /// # Errors
    /// Invalid thread count.
    pub fn set_parallel_all(&mut self, parallel: ParallelConfig) -> Result<()> {
        use idivm_core::EngineConfig;
        let names: Vec<String> = self.states.keys().cloned().collect();
        for name in names {
            self.catalog.view_mut(&name)?.engine_mut().set_parallel(parallel)?;
        }
        let backings: Vec<String> = self
            .catalog
            .intermediate_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for backing in backings {
            self.catalog
                .intermediate_mut(&backing)?
                .engine_mut()
                .set_parallel(parallel)?;
        }
        Ok(())
    }

    /// A view's cumulative maintenance statistics.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn stats(&self, name: &str) -> Result<&ViewStats> {
        Ok(&self.state(name)?.stats)
    }

    /// Ticks a view's pending net has been non-empty (0 = up to date).
    ///
    /// # Errors
    /// Unknown view name.
    pub fn staleness(&self, name: &str) -> Result<u32> {
        Ok(self.state(name)?.staleness)
    }

    /// The view's composed pending net (empty when up to date).
    ///
    /// # Errors
    /// Unknown view name.
    pub fn pending(&self, name: &str) -> Result<&HashMap<String, TableChanges>> {
        Ok(&self.state(name)?.pending)
    }

    /// Completed scheduler rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    fn state(&self, name: &str) -> Result<&ViewState> {
        self.states
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    fn state_mut(&mut self, name: &str) -> Result<&mut ViewState> {
        self.states
            .get_mut(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    /// Fold the database log once, clear it, and compose the per-view
    /// slices onto every dependent view's pending net. Advances
    /// staleness for every view left with a non-empty pending.
    fn distribute(&mut self) -> Result<()> {
        let net = self.catalog.db().fold_log();
        if !net.is_empty() {
            self.catalog.db_mut().clear_log();
            for name in self.states.keys().cloned().collect::<Vec<_>>() {
                let slice = self.catalog.restrict_net(&name, &net)?;
                if !slice.is_empty() {
                    let state = self.state_mut(&name)?;
                    compose_changes(&mut state.pending, slice);
                }
            }
            let backings: Vec<String> = self
                .catalog
                .intermediate_names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            for backing in backings {
                let tables = self.catalog.intermediate(&backing)?.tables().to_vec();
                let slice: HashMap<String, TableChanges> = net
                    .iter()
                    .filter(|(t, _)| tables.contains(t))
                    .map(|(t, c)| (t.clone(), c.clone()))
                    .collect();
                if !slice.is_empty() {
                    let pending = self.intermediate_pending.entry(backing).or_default();
                    compose_changes(pending, slice);
                }
            }
        }
        Ok(())
    }

    /// Maintain every promoted intermediate with a non-empty pending
    /// net, in backing-name order, before any consumer view runs this
    /// round. Each backing's net delta is composed (under the backing
    /// table's name) into every consumer's pending net, so consumers
    /// pick it up at O(Δ) through their rewritten `Scan`. Failures are
    /// routed through the supervisor; a backing that does not converge
    /// keeps its pending net and its consumers are deferred this tick.
    fn sync_intermediates(&mut self, cache: &mut SharedDiffCache) -> Result<IntermediateRound> {
        let mut round = IntermediateRound::default();
        let backings: Vec<String> = self
            .catalog
            .intermediate_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for backing in backings {
            let net = match self.intermediate_pending.get(&backing) {
                Some(net) if !net.is_empty() => net.clone(),
                _ => continue,
            };
            let before = self.catalog.db().stats().snapshot();
            let result = if self.config.share_prefixes {
                self.catalog.maintain_intermediate_shared(&backing, &net, cache)
            } else {
                self.catalog.maintain_intermediate(&backing, &net)
            };
            let (delta, verdict) = match result {
                Ok((report, delta)) => {
                    let stats = self.intermediate_stats.entry(backing.clone()).or_default();
                    stats.view_diff_tuples += report.view_diff_tuples as u64;
                    stats.last_report = Some(report);
                    (delta, None)
                }
                Err(_) => {
                    // The failed round has been rolled back; the
                    // supervisor owns retries, quarantine, and the
                    // recompute ladder. Its delta is an exact snapshot
                    // diff of the backing (empty if it degraded —
                    // everything rolled back).
                    let (mut report, delta) = self.catalog.maintain_intermediate_supervised(
                        &backing,
                        &net,
                        self.config.supervisor,
                    )?;
                    report.recovered_from = self.recovery_note.clone();
                    let verdict = report.verdict;
                    let stats = self.intermediate_stats.entry(backing.clone()).or_default();
                    stats.supervised_rounds += 1;
                    stats.quarantined_changes += report.quarantine.len() as u64;
                    stats.last_verdict = Some(verdict);
                    stats.last_supervisor = Some(report);
                    (delta, Some(verdict))
                }
            };
            let spent = self.catalog.db().stats().snapshot().since(&before);
            let stats = self.intermediate_stats.entry(backing.clone()).or_default();
            stats.rounds += 1;
            stats.accesses = stats.accesses.merge(spent);
            let converged = match verdict {
                None => true,
                Some(v) => {
                    round.verdicts.push((backing.clone(), v));
                    v.healthy() && v != SupervisorVerdict::Idle
                }
            };
            if converged {
                if let Some(pending) = self.intermediate_pending.get_mut(&backing) {
                    pending.clear();
                }
            } else {
                round.failed.insert(backing.clone());
            }
            let delta_tuples = delta.len() as u64;
            if !delta.is_empty() {
                let consumers: Vec<String> = self
                    .catalog
                    .intermediate(&backing)?
                    .consumers()
                    .iter()
                    .cloned()
                    .collect();
                for consumer in consumers {
                    if let Some(state) = self.states.get_mut(&consumer) {
                        let mut slice = HashMap::new();
                        slice.insert(backing.clone(), delta.clone());
                        compose_changes(&mut state.pending, slice);
                    }
                }
            }
            round.deltas.insert(backing.clone(), delta_tuples);
            round.maintained.push((backing, spent));
        }
        Ok(round)
    }

    /// One scheduler round: distribute freshly logged changes, then
    /// maintain every due view against one fresh shared-prefix cache.
    /// Never fails on maintenance errors — those are routed through the
    /// per-view supervisor and surface as verdicts in the summary.
    ///
    /// # Errors
    /// Catalog inconsistencies only (unknown view — a bug).
    pub fn tick(&mut self) -> Result<RoundSummary> {
        self.round += 1;
        self.distribute()?;
        // Promoted intermediates drain first (they are upstream of
        // every consumer in the maintenance DAG); their net deltas land
        // in consumer pendings before staleness advances, so an eager
        // consumer sees backing changes the same tick they happen.
        let mut cache = SharedDiffCache::new();
        let inter = self.sync_intermediates(&mut cache)?;
        // Staleness advances on ticks (barriers reuse it as-is).
        for state in self.states.values_mut() {
            if !state.pending.is_empty() {
                state.staleness += 1;
            }
        }
        let skip = self.consumers_of(&inter.failed)?;
        let due: Vec<String> = self
            .states
            .iter()
            .filter(|(n, _)| !skip.contains(*n))
            .filter(|(_, s)| match s.policy {
                RefreshPolicy::Eager => !s.pending.is_empty(),
                RefreshPolicy::Deferred {
                    max_staleness_rounds,
                } => !s.pending.is_empty() && s.staleness >= max_staleness_rounds,
                RefreshPolicy::OnRead => false,
            })
            .map(|(n, _)| n.clone())
            .collect();
        let mut summary = self.maintain_views(&due, &mut cache)?;
        summary.intermediates = inter.maintained.clone();
        let mut verdicts = inter.verdicts.clone();
        verdicts.append(&mut summary.verdicts);
        summary.verdicts = verdicts;
        if self.config.promotion.is_some() {
            self.apply_promotion_decisions(&inter, &mut summary)?;
        }
        Ok(summary)
    }

    /// A [`MaintenanceScheduler::tick`] driven by the streaming ingest
    /// pipeline: identical scheduling, plus the ingest pseudo-phase is
    /// stamped onto the summary and onto the round trace of every view
    /// maintained this round — streamed rounds stay attributable in
    /// the same JSON as hand-folded ones.
    ///
    /// # Errors
    /// Same as [`MaintenanceScheduler::tick`].
    pub fn tick_ingest(&mut self, ingest: IngestTrace) -> Result<RoundSummary> {
        let mut summary = self.tick()?;
        for (name, _) in &summary.maintained {
            if let Some(state) = self.states.get_mut(name) {
                if let Some(trace) = state
                    .stats
                    .last_report
                    .as_mut()
                    .and_then(|r| r.trace.as_mut())
                {
                    trace.ingest = Some(ingest.clone());
                }
            }
        }
        summary.ingest = Some(ingest);
        Ok(summary)
    }

    /// Views consuming any backing in `failed`.
    fn consumers_of(&self, failed: &BTreeSet<String>) -> Result<BTreeSet<String>> {
        let mut out = BTreeSet::new();
        for backing in failed {
            out.extend(self.catalog.intermediate(backing)?.consumers().iter().cloned());
        }
        Ok(out)
    }

    /// Read barrier: bring `name` fully up to date (distributing any
    /// freshly logged changes first), then return its sorted rows.
    /// This is how `OnRead` views are served; it is equally valid for
    /// any policy.
    ///
    /// # Errors
    /// Unknown view name, or a degraded view (its supervisor could not
    /// converge — pending changes are preserved for the next attempt).
    pub fn read_view(&mut self, name: &str) -> Result<Vec<Row>> {
        self.state(name)?;
        self.distribute()?;
        let mut cache = SharedDiffCache::new();
        let inter = self.sync_intermediates(&mut cache)?;
        if self.consumers_of(&inter.failed)?.contains(name) {
            return Err(Error::Config(format!(
                "view `{name}` consumes a degraded intermediate — pending changes preserved"
            )));
        }
        if !self.state(name)?.pending.is_empty() {
            let summary = self.maintain_views(&[name.to_string()], &mut cache)?;
            if let Some((_, verdict)) = summary
                .verdicts
                .iter()
                .find(|(n, v)| n == name && !v.healthy())
            {
                return Err(Error::Config(format!(
                    "view `{name}` is degraded ({}) — pending changes preserved",
                    verdict.label()
                )));
            }
        }
        self.catalog.rows(name)
    }

    /// Drain barrier: bring *every* view fully up to date (one shared
    /// cache across all of them), regardless of policy.
    ///
    /// # Errors
    /// Catalog inconsistencies only; per-view failures surface as
    /// verdicts in the summary.
    pub fn drain(&mut self) -> Result<RoundSummary> {
        self.distribute()?;
        let mut cache = SharedDiffCache::new();
        let inter = self.sync_intermediates(&mut cache)?;
        let skip = self.consumers_of(&inter.failed)?;
        let due: Vec<String> = self
            .states
            .iter()
            .filter(|(n, s)| !s.pending.is_empty() && !skip.contains(*n))
            .map(|(n, _)| n.clone())
            .collect();
        let mut summary = self.maintain_views(&due, &mut cache)?;
        summary.intermediates = inter.maintained.clone();
        let mut verdicts = inter.verdicts;
        verdicts.append(&mut summary.verdicts);
        summary.verdicts = verdicts;
        Ok(summary)
    }

    /// Maintain `due` views (name order) against one fresh shared
    /// cache, attributing accesses per view and routing failures
    /// through the per-view supervisor.
    fn maintain_views(&mut self, due: &[String], cache: &mut SharedDiffCache) -> Result<RoundSummary> {
        let mut summary = RoundSummary {
            round: self.round,
            ..RoundSummary::default()
        };
        let mut due = due.to_vec();
        due.sort();
        for name in &due {
            let net = self.state(name)?.pending.clone();
            if net.is_empty() {
                continue;
            }
            let before = self.catalog.db().stats().snapshot();
            let result = if self.config.share_prefixes {
                self.catalog.maintain_shared(name, &net, cache)
            } else {
                self.catalog.maintain_independent(name, &net)
            };
            match result {
                Ok(report) => {
                    let spent = self.catalog.db().stats().snapshot().since(&before);
                    let state = self.state_mut(name)?;
                    state.pending.clear();
                    state.staleness = 0;
                    state.stats.rounds += 1;
                    state.stats.accesses = state.stats.accesses.merge(spent);
                    state.stats.view_diff_tuples += report.view_diff_tuples as u64;
                    state.stats.last_report = Some(report);
                    summary.maintained.push((name.clone(), spent));
                }
                Err(_) => {
                    // The failed round has been rolled back; escalate
                    // to the per-view supervisor, which owns retries,
                    // bisection/quarantine, and the recompute ladder.
                    let mut report =
                        self.catalog
                            .maintain_supervised(name, &net, self.config.supervisor)?;
                    report.recovered_from = self.recovery_note.clone();
                    let spent = self.catalog.db().stats().snapshot().since(&before);
                    let verdict = report.verdict;
                    let state = self.state_mut(name)?;
                    if verdict.healthy() && verdict != SupervisorVerdict::Idle {
                        state.pending.clear();
                        state.staleness = 0;
                    }
                    state.stats.rounds += 1;
                    state.stats.supervised_rounds += 1;
                    state.stats.accesses = state.stats.accesses.merge(spent);
                    state.stats.quarantined_changes += report.quarantine.len() as u64;
                    state.stats.last_verdict = Some(verdict);
                    state.stats.last_supervisor = Some(report);
                    summary.maintained.push((name.clone(), spent));
                    summary.verdicts.push((name.clone(), verdict));
                }
            }
        }
        for (name, state) in &self.states {
            if !state.pending.is_empty() && !due.contains(name) {
                summary.deferred.push((name.clone(), state.staleness));
            }
        }
        summary.shared_hits = cache.total_hits();
        summary.shared_saved_accesses = cache.total_saved_accesses();
        summary.prefix_stats = cache.stats();
        Ok(summary)
    }

    /// Feed this tick's per-prefix observations into the crossover
    /// trackers and apply any transitions they fire. Deterministic:
    /// candidates and intermediates are visited in sorted order, and
    /// every input (accesses, diff tuples, consumer counts) is itself
    /// deterministic, so the decision sequence is byte-identical across
    /// runs and thread counts.
    fn apply_promotion_decisions(
        &mut self,
        inter: &IntermediateRound,
        summary: &mut RoundSummary,
    ) -> Result<()> {
        let Some(cfg) = self.config.promotion else {
            return Ok(());
        };
        // Unpromoted candidate prefixes are observed through the
        // round's shared cache: one stat per pending horizon may exist
        // for a structure, so compute sums and the diff width is the
        // widest horizon's.
        let candidates = self.catalog.promotion_candidates();
        let mut observed: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for stat in &summary.prefix_stats {
            if candidates.iter().any(|c| c.structure == stat.structure) {
                let entry = observed.entry(stat.structure.clone()).or_insert((0, 0));
                entry.0 += stat.compute_accesses.total();
                entry.1 = entry.1.max(stat.diff_tuples as u64);
            }
        }
        let mut to_promote: Vec<PromotionCandidate> = Vec::new();
        for (structure, (compute, diff_tuples)) in &observed {
            let Some(candidate) = candidates.iter().find(|c| &c.structure == structure) else {
                continue;
            };
            let obs = PrefixObservation {
                compute_accesses: *compute,
                diff_tuples: *diff_tuples,
                consumers: candidate.consumers.len() as u64,
            };
            let tracker = self.trackers.entry(structure.clone()).or_default();
            let decision = tracker.observe(&cfg, false, &obs);
            summary.cost.push(CostEntry {
                label: candidate.label.clone(),
                promoted: false,
                consumers: obs.consumers,
                observed_compute: obs.compute_accesses,
                observed_diff_tuples: obs.diff_tuples,
                predicted_maintain_milli: cfg.maintain_milli(&obs),
                predicted_recompute_milli: cfg.recompute_milli(&obs),
                decision,
            });
            if decision == PromotionDecision::Promote {
                to_promote.push(candidate.clone());
            }
        }
        // Promoted prefixes are observed through their own maintenance
        // round this tick (failed rounds are not observations).
        let mut to_demote: Vec<String> = Vec::new();
        for (backing, spent) in &inter.maintained {
            if inter.failed.contains(backing) {
                continue;
            }
            let iv = self.catalog.intermediate(backing)?;
            let obs = PrefixObservation {
                compute_accesses: spent.total(),
                diff_tuples: inter.deltas.get(backing).copied().unwrap_or(0),
                consumers: iv.consumers().len() as u64,
            };
            let structure = iv.structure().to_string();
            let label = iv.label().to_string();
            let tracker = self.trackers.entry(structure).or_default();
            let decision = tracker.observe(&cfg, true, &obs);
            summary.cost.push(CostEntry {
                label,
                promoted: true,
                consumers: obs.consumers,
                observed_compute: obs.compute_accesses,
                observed_diff_tuples: obs.diff_tuples,
                predicted_maintain_milli: cfg.maintain_milli(&obs),
                predicted_recompute_milli: cfg.recompute_milli(&obs),
                decision,
            });
            if decision == PromotionDecision::Demote {
                to_demote.push(backing.clone());
            }
        }
        // Collapse rule: an intermediate whose consumer set shrank
        // below the floor (views unregistered) no longer pays for
        // itself even if it had no round to observe this tick.
        let idle: Vec<String> = self
            .catalog
            .intermediate_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for backing in idle {
            if to_demote.contains(&backing) || inter.failed.contains(&backing) {
                continue;
            }
            let consumers = self.catalog.intermediate(&backing)?.consumers().len() as u64;
            if consumers < cfg.min_consumers {
                to_demote.push(backing);
            }
        }
        to_demote.sort();
        to_demote.dedup();
        for candidate in to_promote {
            if let Some(event) = self.promote_candidate(&candidate)? {
                summary.promotions.push(event);
            }
        }
        for backing in to_demote {
            if let Some(event) = self.demote_backing(&backing)? {
                summary.promotions.push(event);
            }
        }
        Ok(())
    }

    /// Bring `names` fully up to date ahead of catalog surgery.
    /// Returns `false` (surgery must be skipped) if any of them could
    /// not converge — their pendings are preserved.
    fn drain_views(&mut self, names: &BTreeSet<String>) -> Result<bool> {
        let due: Vec<String> = names
            .iter()
            .filter(|n| {
                self.states
                    .get(n.as_str())
                    .is_some_and(|s| !s.pending.is_empty())
            })
            .cloned()
            .collect();
        if !due.is_empty() {
            let mut cache = SharedDiffCache::new();
            self.maintain_views(&due, &mut cache)?;
        }
        Ok(names.iter().all(|n| {
            self.states
                .get(n.as_str())
                .is_none_or(|s| s.pending.is_empty())
        }))
    }

    /// Promote `candidate` to a materialized intermediate: drain its
    /// consumers (the backing is populated from current base state, so
    /// an undrained consumer would double-apply its pending), create
    /// and populate the hidden backing table, rewire every consumer's
    /// plan to scan it, and start scheduling its maintenance. Returns
    /// `None` if a consumer could not be drained (promotion is retried
    /// on a later tick — the tracker keeps firing).
    fn promote_candidate(&mut self, candidate: &PromotionCandidate) -> Result<Option<PromotionEvent>> {
        let consumers: BTreeSet<String> = candidate.consumers.iter().cloned().collect();
        if !self.drain_views(&consumers)? {
            return Ok(None);
        }
        let backing = self.catalog.promote(candidate)?;
        self.intermediate_pending
            .insert(backing.clone(), HashMap::new());
        self.intermediate_stats.entry(backing.clone()).or_default();
        let consumers: Vec<String> = self
            .catalog
            .intermediate(&backing)?
            .consumers()
            .iter()
            .cloned()
            .collect();
        Ok(Some(PromotionEvent {
            action: "promote",
            backing,
            label: candidate.label.clone(),
            consumers,
        }))
    }

    /// Demote the intermediate behind `backing`: drain its consumers
    /// and require the backing itself to be clean (a pending backing
    /// delta not yet delivered to consumers would be lost by the
    /// rewire), restore the inline subtree in every consumer plan, and
    /// drop the backing. Returns `None` if the preconditions do not
    /// hold this tick.
    fn demote_backing(&mut self, backing: &str) -> Result<Option<PromotionEvent>> {
        let iv = self.catalog.intermediate(backing)?;
        let label = iv.label().to_string();
        let consumers: BTreeSet<String> = iv.consumers().iter().cloned().collect();
        if self
            .intermediate_pending
            .get(backing)
            .is_some_and(|p| !p.is_empty())
        {
            return Ok(None);
        }
        if !self.drain_views(&consumers)? {
            return Ok(None);
        }
        self.catalog.demote(backing)?;
        self.intermediate_pending.remove(backing);
        self.intermediate_stats.remove(backing);
        Ok(Some(PromotionEvent {
            action: "demote",
            backing: backing.to_string(),
            label,
            consumers: consumers.into_iter().collect(),
        }))
    }

    /// Promote a candidate by prefix label right now, outside the
    /// cost-model loop (tests, tooling). Fails if no such candidate
    /// exists or its consumers cannot be drained.
    ///
    /// # Errors
    /// Unknown label, undrainable consumers, or any
    /// [`ViewCatalog::promote`] failure.
    pub fn force_promote(&mut self, label: &str) -> Result<String> {
        // Quiescence: fold any freshly logged changes and deliver
        // pending intermediate deltas before the surgery barrier.
        self.distribute()?;
        self.sync_intermediates(&mut SharedDiffCache::new())?;
        let candidate = self
            .catalog
            .promotion_candidates()
            .into_iter()
            .find(|c| c.label == label)
            .ok_or_else(|| {
                Error::Config(format!("no promotable prefix labelled `{label}`"))
            })?;
        match self.promote_candidate(&candidate)? {
            Some(event) => Ok(event.backing),
            None => Err(Error::Config(format!(
                "cannot promote `{label}`: a consumer view would not converge"
            ))),
        }
    }

    /// Demote a promoted intermediate right now, outside the
    /// cost-model loop (tests, tooling).
    ///
    /// # Errors
    /// Unknown backing, a dirty backing or consumer, or any
    /// [`ViewCatalog::demote`] failure.
    pub fn force_demote(&mut self, backing: &str) -> Result<()> {
        // Deliver any pending backing delta to consumers first.
        self.distribute()?;
        self.sync_intermediates(&mut SharedDiffCache::new())?;
        match self.demote_backing(backing)? {
            Some(_) => Ok(()),
            None => Err(Error::Config(format!(
                "cannot demote `{backing}`: backing or a consumer would not converge"
            ))),
        }
    }

    /// Cumulative maintenance statistics of a promoted intermediate.
    ///
    /// # Errors
    /// Unknown backing name.
    pub fn intermediate_stats(&self, backing: &str) -> Result<&ViewStats> {
        self.intermediate_stats.get(backing).ok_or_else(|| {
            Error::Config(format!("intermediate `{backing}` is not registered"))
        })
    }

    /// Backing-table names of the currently promoted intermediates,
    /// sorted.
    pub fn intermediates(&self) -> Vec<String> {
        self.catalog
            .intermediate_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    // ------------------------------------------------------------------
    // Crash-recovery surface (used by `idivm_durability`)
    // ------------------------------------------------------------------

    /// Recovery-path [`MaintenanceScheduler::register`]: the view's
    /// table and caches already hold its materialized state (restored
    /// from a checkpoint), so the catalog reattaches the engine with
    /// [`ViewCatalog::reattach`] instead of re-materializing. The
    /// view's runtime state (pending net, staleness) starts empty —
    /// restore it with [`MaintenanceScheduler::restore_view_runtime`].
    ///
    /// # Errors
    /// Invalid policy or any [`ViewCatalog::reattach`] failure.
    pub fn reattach(
        &mut self,
        name: &str,
        plan: idivm_algebra::Plan,
        policy: RefreshPolicy,
        options: IvmOptions,
    ) -> Result<()> {
        policy.validate()?;
        self.catalog.reattach(name, plan, options)?;
        self.states.insert(
            name.to_string(),
            ViewState {
                policy,
                pending: HashMap::new(),
                staleness: 0,
                stats: ViewStats::default(),
            },
        );
        Ok(())
    }

    /// Recovery-path re-registration of a promoted intermediate over
    /// its restored backing table. Call before reattaching any of its
    /// consumer views (see [`ViewCatalog::reattach_intermediate`]).
    ///
    /// # Errors
    /// Any [`ViewCatalog::reattach_intermediate`] failure.
    pub fn reattach_intermediate(
        &mut self,
        backing: &str,
        subtree: idivm_algebra::Plan,
        structure: String,
        label: String,
        consumers: BTreeSet<String>,
        options: IvmOptions,
    ) -> Result<()> {
        self.catalog
            .reattach_intermediate(backing, subtree, structure, label, consumers, options)?;
        self.intermediate_pending
            .insert(backing.to_string(), HashMap::new());
        self.intermediate_stats
            .entry(backing.to_string())
            .or_default();
        Ok(())
    }

    /// Restore the scheduler round counter from a checkpoint.
    pub fn restore_round(&mut self, round: u64) {
        self.round = round;
    }

    /// Restore a view's checkpointed runtime state: its composed
    /// pending net and staleness counter.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn restore_view_runtime(
        &mut self,
        name: &str,
        pending: HashMap<String, TableChanges>,
        staleness: u32,
    ) -> Result<()> {
        let state = self.state_mut(name)?;
        state.pending = pending;
        state.staleness = staleness;
        Ok(())
    }

    /// Restore a promoted intermediate's checkpointed pending net.
    ///
    /// # Errors
    /// Unknown backing name.
    pub fn restore_intermediate_pending(
        &mut self,
        backing: &str,
        pending: HashMap<String, TableChanges>,
    ) -> Result<()> {
        self.catalog.intermediate(backing)?;
        self.intermediate_pending.insert(backing.to_string(), pending);
        Ok(())
    }

    /// A promoted intermediate's composed pending net (empty when it is
    /// up to date). Cloned — this is a checkpoint-cadence read.
    ///
    /// # Errors
    /// Unknown backing name.
    pub fn intermediate_pending(&self, backing: &str) -> Result<HashMap<String, TableChanges>> {
        self.catalog.intermediate(backing)?;
        Ok(self
            .intermediate_pending
            .get(backing)
            .cloned()
            .unwrap_or_default())
    }

    /// Streak counters of every crossover tracker, sorted by prefix
    /// structure — the cost-model state a checkpoint must carry so a
    /// recovered scheduler replays the exact promote/demote sequence.
    pub fn tracker_streaks(&self) -> Vec<(String, u32, u32)> {
        self.trackers
            .iter()
            .map(|(s, m)| (s.clone(), m.promote_streak(), m.demote_streak()))
            .collect()
    }

    /// Restore one crossover tracker from checkpointed streak counters.
    pub fn restore_tracker(&mut self, structure: &str, promote_streak: u32, demote_streak: u32) {
        self.trackers.insert(
            structure.to_string(),
            CrossoverModel::with_streaks(promote_streak, demote_streak),
        );
    }

    /// Stamp (or clear) the recovery-provenance note copied onto every
    /// supervised-round report — e.g. `"checkpoint (lsn 12) + 3 wal
    /// records"` after a crash recovery.
    pub fn set_recovery_note(&mut self, note: Option<String>) {
        self.recovery_note = note;
    }

    /// The current recovery-provenance note, if any.
    pub fn recovery_note(&self) -> Option<&str> {
        self.recovery_note.as_deref()
    }
}
