//! The multi-view catalog: many named [`IdIvm`] views registered over
//! one shared [`Database`], with the base-table → view dependency DAG
//! and the cross-view shared-prefix designations kept current on every
//! registration.
//!
//! The catalog is the *structural* layer: it knows which views exist,
//! which base tables each one depends on, and which operator subtrees
//! are shared (so one i-diff computation can serve several views). The
//! *temporal* layer — per-view refresh policies, pending-change
//! accumulation, and failure routing — lives on top of it in
//! [`crate::scheduler::MaintenanceScheduler`].

use idivm_algebra::{ensure_ids, Plan};
use idivm_core::supervisor::{MaintenanceSupervisor, SupervisorConfig, SupervisorReport};
use idivm_core::{
    detect_shared_prefixes, promotion_candidates, substitute_scan, substitute_structures, IdIvm,
    IvmOptions, MaintenanceReport, PromotionCandidate, SharedDiffCache, SharedPrefixes,
};
use idivm_exec::executor::sorted;
use idivm_reldb::{table_delta, Database, TableChanges, TableSignature};
use idivm_types::{Error, Result, Row};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One registered view: its engine, its shared-prefix designations
/// (recomputed whenever the registered set changes), and the base
/// tables it scans.
pub struct CatalogView {
    engine: IdIvm,
    prefixes: SharedPrefixes,
    tables: Vec<String>,
    /// The plan as the user registered it, before any adaptive
    /// intermediate rewrites — the demotion restore target and the
    /// promotion-transparency oracle.
    source: Plan,
}

impl CatalogView {
    /// The maintenance engine.
    pub fn engine(&self) -> &IdIvm {
        &self.engine
    }

    /// Mutable engine access (knob configuration — parallelism, trace,
    /// faults — via `idivm_core::EngineConfig`).
    pub fn engine_mut(&mut self) -> &mut IdIvm {
        &mut self.engine
    }

    /// The view's current shared-prefix designations.
    pub fn prefixes(&self) -> &SharedPrefixes {
        &self.prefixes
    }

    /// Base tables the view scans, sorted and deduplicated. After a
    /// promotion rewrite this includes the backing tables the view now
    /// scans instead of the promoted subtrees.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// The registered (pre-rewrite) plan — what the view *means*,
    /// independent of which prefixes are currently materialized.
    pub fn source_plan(&self) -> &Plan {
        &self.source
    }
}

/// A promoted shared prefix: a hidden backing table materializing one
/// operator subtree, maintained once per round by its own i-diff engine
/// while every consumer view scans the backing instead of recomputing
/// the subtree. Created by [`ViewCatalog::promote`], dropped by
/// [`ViewCatalog::demote`].
pub struct IntermediateView {
    engine: IdIvm,
    /// Shared-prefix designations inside the backing's own subtree —
    /// a deep intermediate can contain a shallower designated prefix
    /// (its own, or one still inlined in unpromoted views), and its
    /// maintenance walk publishes/reuses those diffs through the same
    /// per-round cache as the views.
    prefixes: SharedPrefixes,
    /// The (ID-extended) subtree the backing table replaced — the
    /// demotion restore source.
    subtree: Plan,
    /// Structure-only fingerprint of the subtree
    /// (`idivm_core::structure_key`).
    structure: String,
    /// Human-readable label (`op[tables…]`).
    label: String,
    /// Base tables the subtree scans, sorted and deduplicated.
    tables: Vec<String>,
    /// Views currently rewritten to scan the backing.
    consumers: BTreeSet<String>,
}

impl IntermediateView {
    /// The backing table's maintenance engine.
    pub fn engine(&self) -> &IdIvm {
        &self.engine
    }

    /// Mutable engine access (knobs — trace, faults — for tests and
    /// benches; same surface as [`CatalogView::engine_mut`]).
    pub fn engine_mut(&mut self) -> &mut IdIvm {
        &mut self.engine
    }

    /// The materialized subtree.
    pub fn subtree(&self) -> &Plan {
        &self.subtree
    }

    /// Shared-prefix designations inside the backing's subtree.
    pub fn prefixes(&self) -> &SharedPrefixes {
        &self.prefixes
    }

    /// Structure-only fingerprint of the subtree.
    pub fn structure(&self) -> &str {
        &self.structure
    }

    /// Human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Base tables the subtree scans.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Views currently consuming the backing table.
    pub fn consumers(&self) -> &BTreeSet<String> {
        &self.consumers
    }
}

/// Many named views over one shared database. Registration keeps the
/// dependency DAG and the shared-prefix designations current; views are
/// always iterated in name order, so every catalog operation is
/// deterministic for any `HashMap` iteration order or thread count.
pub struct ViewCatalog {
    db: Database,
    views: BTreeMap<String, CatalogView>,
    /// Promoted intermediates, keyed by backing table name.
    intermediates: BTreeMap<String, IntermediateView>,
    /// Monotone counter for backing-table names — promotion order is
    /// deterministic, so the names are byte-identical across runs.
    next_backing: u64,
}

impl ViewCatalog {
    /// Wrap an existing database (the catalog takes ownership; base
    /// modifications go through [`ViewCatalog::db_mut`]).
    pub fn new(db: Database) -> Self {
        ViewCatalog {
            db,
            views: BTreeMap::new(),
            intermediates: BTreeMap::new(),
            next_backing: 0,
        }
    }

    /// Register and materialize a view. Recomputes the shared-prefix
    /// designations across the whole registered set — a new view can
    /// create sharing opportunities for existing ones. If a promoted
    /// intermediate already materializes a subtree of the plan, the
    /// registered plan is rewritten to scan its backing table (the view
    /// joins the intermediate's consumer set).
    ///
    /// # Errors
    /// Duplicate name or a name colliding with an existing base table
    /// or intermediate backing ([`Error::Config`]), or any
    /// [`IdIvm::setup`] failure. The collision check lives here and not
    /// in [`ViewCatalog::reattach`]: reattach is the recovery path,
    /// where the view's backing table legitimately already exists.
    pub fn register(&mut self, name: &str, plan: Plan, options: IvmOptions) -> Result<()> {
        if self.views.contains_key(name) {
            return Err(Error::Config(format!(
                "view `{name}` is already registered"
            )));
        }
        if self.db.has_table(name) {
            return Err(Error::Config(format!(
                "view name `{name}` collides with an existing table"
            )));
        }
        let source = plan.clone();
        let plan = if self.intermediates.is_empty() {
            plan
        } else {
            // Structure fingerprints are taken over ID-extended plans,
            // so extend before matching (setup re-runs `ensure_ids`,
            // which is idempotent).
            let plan = ensure_ids(plan)?;
            let map = self.backing_substitutions()?;
            substitute_structures(&plan, options.minimize, &map)
        };
        let engine = IdIvm::setup(&mut self.db, name, plan, options)?;
        let tables = scanned_tables(engine.plan());
        for (backing, iv) in &mut self.intermediates {
            if tables.iter().any(|t| t == backing) {
                iv.consumers.insert(name.to_string());
            }
        }
        self.views.insert(
            name.to_string(),
            CatalogView {
                engine,
                prefixes: SharedPrefixes::none(),
                tables,
                source,
            },
        );
        self.refresh_prefixes();
        Ok(())
    }

    /// Re-register a view over tables that **already hold its
    /// materialized state** — the crash-recovery path. Identical to
    /// [`ViewCatalog::register`] except the engine is rebuilt with
    /// [`IdIvm::setup_over`], which reuses every shape-matched table
    /// (the view table and its caches) instead of re-materializing from
    /// current base state. Re-materializing would be wrong for a
    /// recovered deferred/`OnRead` view with a non-empty pending net:
    /// its table holds `Q(base at last drain)`, not `Q(current base)`.
    ///
    /// Promoted intermediates must be reattached (in the checkpoint's
    /// backing order) *before* the views, so the same
    /// structure-substitution rewrite that [`ViewCatalog::register`]
    /// applies reproduces each view's rewired plan.
    ///
    /// # Errors
    /// Duplicate name ([`Error::Config`]) or any [`IdIvm::setup_over`]
    /// failure.
    pub fn reattach(&mut self, name: &str, plan: Plan, options: IvmOptions) -> Result<()> {
        if self.views.contains_key(name) {
            return Err(Error::Config(format!(
                "view `{name}` is already registered"
            )));
        }
        let source = plan.clone();
        let plan = if self.intermediates.is_empty() {
            plan
        } else {
            let plan = ensure_ids(plan)?;
            let map = self.backing_substitutions()?;
            substitute_structures(&plan, options.minimize, &map)
        };
        let engine = IdIvm::setup_over(&mut self.db, name, plan, options)?;
        let tables = scanned_tables(engine.plan());
        for (backing, iv) in &mut self.intermediates {
            if tables.iter().any(|t| t == backing) {
                iv.consumers.insert(name.to_string());
            }
        }
        self.views.insert(
            name.to_string(),
            CatalogView {
                engine,
                prefixes: SharedPrefixes::none(),
                tables,
                source,
            },
        );
        self.refresh_prefixes();
        Ok(())
    }

    /// Recovery-path counterpart of [`ViewCatalog::promote`]: rebuild a
    /// promoted intermediate's registration over its **already
    /// populated** backing table. The engine is reattached with
    /// [`IdIvm::setup_over`] (no re-materialization) and the consumer
    /// set is taken verbatim from the checkpoint — consumer views are
    /// reattached afterwards and rewired through the substitution map
    /// this entry feeds.
    ///
    /// # Errors
    /// Duplicate backing name ([`Error::Config`]) or any
    /// [`IdIvm::setup_over`] failure.
    pub fn reattach_intermediate(
        &mut self,
        backing: &str,
        subtree: Plan,
        structure: String,
        label: String,
        consumers: BTreeSet<String>,
        options: IvmOptions,
    ) -> Result<()> {
        if self.intermediates.contains_key(backing) {
            return Err(Error::Config(format!(
                "intermediate `{backing}` is already registered"
            )));
        }
        let engine = IdIvm::setup_over(&mut self.db, backing, subtree, options)?;
        let subtree = engine.plan().clone();
        let tables = scanned_tables(&subtree);
        self.intermediates.insert(
            backing.to_string(),
            IntermediateView {
                engine,
                prefixes: SharedPrefixes::none(),
                subtree,
                structure,
                label,
                tables,
                consumers,
            },
        );
        self.refresh_prefixes();
        Ok(())
    }

    /// Monotone backing-name counter (checkpointed so recovered
    /// promotions keep minting fresh `__ivm{n}` names).
    pub fn next_backing(&self) -> u64 {
        self.next_backing
    }

    /// Restore the backing-name counter from a checkpoint.
    pub fn set_next_backing(&mut self, next: u64) {
        self.next_backing = next;
    }

    /// Drop a view: its materialized table, its caches, and its
    /// registration. Remaining views' shared-prefix designations are
    /// recomputed (a prefix shared only with the dropped view loses its
    /// designation). Intermediates the view consumed lose it from their
    /// consumer sets — the scheduler's cost model demotes an
    /// intermediate whose consumer set collapses.
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn unregister(&mut self, name: &str) -> Result<()> {
        let view = self
            .views
            .remove(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        for def in view.engine.caches() {
            self.db.drop_table(&def.name);
        }
        self.db.drop_table(name);
        for iv in self.intermediates.values_mut() {
            iv.consumers.remove(name);
        }
        self.refresh_prefixes();
        Ok(())
    }

    /// Recompute shared-prefix designations across every view *and*
    /// every promoted intermediate (name order — deterministic).
    /// Intermediates participate because a deep backing's subtree can
    /// contain a shallower designated prefix — e.g. the deep
    /// `⋈ users` backing contains the `σ_ts(⋈)` subtree that a second
    /// backing (or an unpromoted view) also computes; intermediates
    /// run first in every round, so their publishes are consumable by
    /// both the other backings and the views.
    fn refresh_prefixes(&mut self) {
        let engines: Vec<&IdIvm> = self
            .views
            .values()
            .map(|v| &v.engine)
            .chain(self.intermediates.values().map(|iv| &iv.engine))
            .collect();
        let mut prefixes = detect_shared_prefixes(&engines).into_iter();
        for view in self.views.values_mut() {
            view.prefixes = prefixes.next().unwrap_or_else(SharedPrefixes::none);
        }
        for iv in self.intermediates.values_mut() {
            iv.prefixes = prefixes.next().unwrap_or_else(SharedPrefixes::none);
        }
    }

    /// The shared database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access — this is where base-table modifications
    /// enter. The catalog does not intercept them; maintenance layers
    /// fold the modification log when they run.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Tear down the catalog, returning the database (views stay
    /// materialized as plain tables).
    pub fn into_db(self) -> Database {
        self.db
    }

    /// Registered view names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True iff no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Look up a registered view.
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn view(&self, name: &str) -> Result<&CatalogView> {
        self.views
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    /// Mutable view access (engine knob configuration).
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn view_mut(&mut self, name: &str) -> Result<&mut CatalogView> {
        self.views
            .get_mut(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    /// The table → dependent-views DAG: every table scanned by at
    /// least one view or intermediate, mapped to the (sorted) names of
    /// the views that scan it. Promoted intermediates appear as
    /// *internal nodes*: their backing table is a dependent of the base
    /// tables its subtree scans, and consumer views are dependents of
    /// the backing table — views-over-intermediates.
    pub fn dependency_dag(&self) -> BTreeMap<String, Vec<String>> {
        let mut dag: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (name, view) in &self.views {
            for t in &view.tables {
                dag.entry(t.clone()).or_default().push(name.clone());
            }
        }
        for (backing, iv) in &self.intermediates {
            for t in &iv.tables {
                dag.entry(t.clone()).or_default().push(backing.clone());
            }
        }
        for dependents in dag.values_mut() {
            dependents.sort();
        }
        dag
    }

    /// The (sorted) views that scan `table` — the fan-out set of one
    /// base-table modification.
    pub fn dependents(&self, table: &str) -> Vec<&str> {
        self.views
            .iter()
            .filter(|(_, v)| v.tables.iter().any(|t| t == table))
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Restrict a folded net-change set to the tables `view` scans —
    /// the per-view slice of a shared modification batch.
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn restrict_net(
        &self,
        name: &str,
        net: &HashMap<String, TableChanges>,
    ) -> Result<HashMap<String, TableChanges>> {
        let view = self.view(name)?;
        Ok(net
            .iter()
            .filter(|(t, _)| view.tables.contains(t))
            .map(|(t, c)| (t.clone(), c.clone()))
            .collect())
    }

    /// Run one atomic maintenance round for `name` over an externally
    /// folded change set, with shared-prefix reuse through `cache`
    /// (create one [`SharedDiffCache`] per scheduler round and share it
    /// between every view maintained in that round).
    ///
    /// # Errors
    /// Unknown view name, or any
    /// [`IdIvm::maintain_with_changes_shared`] failure (the round has
    /// been rolled back; the caller still owns `net`).
    pub fn maintain_shared(
        &mut self,
        name: &str,
        net: &HashMap<String, TableChanges>,
        cache: &mut SharedDiffCache,
    ) -> Result<MaintenanceReport> {
        let view = self
            .views
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        view.engine
            .maintain_with_changes_shared(&mut self.db, net, &view.prefixes, cache)
    }

    /// Run one atomic maintenance round for `name` without prefix
    /// sharing (the independent-maintenance baseline).
    ///
    /// # Errors
    /// Same conditions as [`ViewCatalog::maintain_shared`].
    pub fn maintain_independent(
        &mut self,
        name: &str,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport> {
        let view = self
            .views
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        view.engine.maintain_with_changes(&mut self.db, net)
    }

    /// Drive `name`'s pending changes through a per-view
    /// [`MaintenanceSupervisor`] (retry → bisect/quarantine → recompute
    /// → degrade). Never returns `Err` for maintenance failures — the
    /// verdict in the report is the signal; the view's quarantine and
    /// rollback machinery cannot touch sibling views (each round only
    /// mutates this view's table and caches).
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]) only.
    pub fn maintain_supervised(
        &mut self,
        name: &str,
        net: &HashMap<String, TableChanges>,
        config: SupervisorConfig,
    ) -> Result<SupervisorReport> {
        let view = self
            .views
            .get_mut(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        let mut supervisor = MaintenanceSupervisor::new(&mut view.engine, config);
        Ok(supervisor.run_with_changes(&mut self.db, net))
    }

    // ------------------------------------------------------------------
    // Adaptive intermediate views (promotion / demotion)
    // ------------------------------------------------------------------

    /// Backing-table names of the current intermediates, sorted.
    pub fn intermediate_names(&self) -> Vec<&str> {
        self.intermediates.keys().map(String::as_str).collect()
    }

    /// Look up an intermediate by backing-table name.
    ///
    /// # Errors
    /// Unknown backing name ([`Error::Config`]).
    pub fn intermediate(&self, backing: &str) -> Result<&IntermediateView> {
        self.intermediates
            .get(backing)
            .ok_or_else(|| Error::Config(format!("intermediate `{backing}` does not exist")))
    }

    /// Mutable intermediate access (engine knobs — trace, faults).
    ///
    /// # Errors
    /// Unknown backing name ([`Error::Config`]).
    pub fn intermediate_mut(&mut self, backing: &str) -> Result<&mut IntermediateView> {
        self.intermediates
            .get_mut(backing)
            .ok_or_else(|| Error::Config(format!("intermediate `{backing}` does not exist")))
    }

    /// Backing table name of the intermediate materializing
    /// `structure`, if one exists.
    pub fn promoted_backing(&self, structure: &str) -> Option<&str> {
        self.intermediates
            .iter()
            .find(|(_, iv)| iv.structure == structure)
            .map(|(b, _)| b.as_str())
    }

    /// Promotable subtrees across the current (possibly already
    /// rewritten) view plans: operator structures with ≥ 2 base-table
    /// scans occurring in ≥ 2 distinct views. Structures that scan a
    /// backing table are excluded (intermediates stay one level deep),
    /// as are structures already promoted. Sorted by structure key —
    /// deterministic.
    pub fn promotion_candidates(&self) -> Vec<PromotionCandidate> {
        let views: Vec<(&str, &Plan, bool)> = self
            .views
            .iter()
            .map(|(n, v)| (n.as_str(), v.engine.plan(), v.engine.options().minimize))
            .collect();
        promotion_candidates(&views)
            .into_iter()
            .filter(|c| {
                c.tables
                    .iter()
                    .all(|t| !self.intermediates.contains_key(t))
                    && self.promoted_backing(&c.structure).is_none()
            })
            .collect()
    }

    /// Promote a candidate subtree to a materialized intermediate:
    /// create a hidden backing table, populate it once (its own
    /// [`IdIvm::setup`] — caches, probe indexes, i-diff schemas), and
    /// rewrite every consumer view to scan the backing at the prefix
    /// boundary. Returns the backing table name.
    ///
    /// The caller must guarantee a quiescent catalog: every consumer
    /// fully maintained against the current base state and the
    /// database's modification log empty (the scheduler's promotion
    /// barrier drains before calling this). Otherwise the freshly
    /// populated backing would embed base changes its consumers have
    /// not seen.
    ///
    /// # Errors
    /// Unknown/stale candidate, nesting (the subtree scans another
    /// backing), or any setup failure — in which case already-rewired
    /// consumers are restored and the backing dropped before returning.
    pub fn promote(&mut self, candidate: &PromotionCandidate) -> Result<String> {
        if candidate
            .tables
            .iter()
            .any(|t| self.intermediates.contains_key(t))
        {
            return Err(Error::Config(format!(
                "cannot promote `{}`: its subtree scans another backing table",
                candidate.label
            )));
        }
        if self.promoted_backing(&candidate.structure).is_some() {
            return Err(Error::Config(format!(
                "`{}` is already promoted",
                candidate.label
            )));
        }
        let consumers: Vec<String> = candidate
            .consumers
            .iter()
            .filter(|c| self.views.contains_key(*c))
            .cloned()
            .collect();
        let Some(first) = consumers.first() else {
            return Err(Error::Config(format!(
                "candidate `{}` has no registered consumers",
                candidate.label
            )));
        };
        // The intermediate inherits the consumers' planning knobs
        // (minimize is part of the structure fingerprint, so all
        // consumers agree on it) but never their fault/trace/budget
        // state.
        let base_opts = self.views[first].engine.options();
        let options = IvmOptions {
            minimize: base_opts.minimize,
            use_input_caches: base_opts.use_input_caches,
            parallel: base_opts.parallel,
            ..IvmOptions::default()
        };
        let mut backing = format!("__ivm{}", self.next_backing);
        while self.db.has_table(&backing) {
            self.next_backing += 1;
            backing = format!("__ivm{}", self.next_backing);
        }
        self.next_backing += 1;
        let engine = IdIvm::setup(&mut self.db, &backing, candidate.subtree.clone(), options)?;
        // `setup` re-runs `ensure_ids`; keep the subtree it actually
        // materialized so demotion restores exactly what consumers get
        // rewritten against.
        let subtree = engine.plan().clone();
        let schema = match self.db.table(&backing) {
            Ok(t) => t.schema().clone(),
            Err(e) => return Err(e),
        };
        let scan = Plan::Scan {
            table: backing.clone(),
            alias: backing.clone(),
            schema,
        };
        let mut map = BTreeMap::new();
        map.insert(candidate.structure.clone(), scan);
        let mut rewired: Vec<String> = Vec::new();
        let mut rewired_consumers = BTreeSet::new();
        for name in &consumers {
            let minimize = self.views[name].engine.options().minimize;
            let new_plan = substitute_structures(self.views[name].engine.plan(), minimize, &map);
            if &new_plan == self.views[name].engine.plan() {
                continue;
            }
            if let Err(e) = self.rewire(name, new_plan) {
                // Roll the promotion back: restore every consumer
                // already rewired, then drop the backing.
                for done in &rewired {
                    let restored =
                        substitute_scan(self.views[done].engine.plan(), &backing, &subtree);
                    let _ = self.rewire(done, restored);
                }
                for def in engine.caches() {
                    self.db.drop_table(&def.name);
                }
                self.db.drop_table(&backing);
                self.refresh_prefixes();
                return Err(e);
            }
            rewired.push(name.clone());
            rewired_consumers.insert(name.clone());
        }
        let tables = scanned_tables(&subtree);
        self.intermediates.insert(
            backing.clone(),
            IntermediateView {
                engine,
                prefixes: SharedPrefixes::none(),
                subtree,
                structure: candidate.structure.clone(),
                label: candidate.label.clone(),
                tables,
                consumers: rewired_consumers,
            },
        );
        self.refresh_prefixes();
        Ok(backing)
    }

    /// Demote an intermediate: restore every consumer's plan (the
    /// backing scan is substituted back for the materialized subtree),
    /// then drop the backing table and its caches. The same quiescence
    /// precondition as [`ViewCatalog::promote`] applies.
    ///
    /// # Errors
    /// Unknown backing name, or a consumer restore failure (consumers
    /// restored so far stay restored; the intermediate stays
    /// registered for a retry).
    pub fn demote(&mut self, backing: &str) -> Result<()> {
        let (subtree, consumers) = {
            let iv = self.intermediate(backing)?;
            (iv.subtree.clone(), iv.consumers.clone())
        };
        for name in &consumers {
            if !self.views.contains_key(name) {
                continue;
            }
            let restored = substitute_scan(self.views[name].engine.plan(), backing, &subtree);
            self.rewire(name, restored)?;
            if let Some(iv) = self.intermediates.get_mut(backing) {
                iv.consumers.remove(name);
            }
        }
        if let Some(iv) = self.intermediates.remove(backing) {
            for def in iv.engine.caches() {
                self.db.drop_table(&def.name);
            }
        }
        self.db.drop_table(backing);
        self.refresh_prefixes();
        Ok(())
    }

    /// Run one atomic maintenance round for the intermediate `backing`
    /// over `net` (the folded base changes restricted to the subtree's
    /// tables). Returns the report plus the **backing Δ** — the net
    /// changes consumers must compose into their pendings under the
    /// backing table's name. The Δ comes straight from the round's
    /// [`MaintenanceReport::view_changes`]; after a recompute recovery
    /// (which rewrites the table wholesale) it falls back to a
    /// snapshot diff.
    ///
    /// # Errors
    /// Unknown backing name, or any maintenance failure (the round has
    /// been rolled back; escalate to
    /// [`ViewCatalog::maintain_intermediate_supervised`]).
    pub fn maintain_intermediate(
        &mut self,
        backing: &str,
        net: &HashMap<String, TableChanges>,
    ) -> Result<(MaintenanceReport, TableChanges)> {
        let iv = self
            .intermediates
            .get(backing)
            .ok_or_else(|| Error::Config(format!("intermediate `{backing}` does not exist")))?;
        let pre_rows = sorted(self.db.table(backing)?.rows_uncounted());
        let report = iv.engine.maintain_with_changes(&mut self.db, net)?;
        let delta = if report.recovered {
            let key = self.db.table(backing)?.schema().key().to_vec();
            let post_rows = sorted(self.db.table(backing)?.rows_uncounted());
            table_delta(&pre_rows, &post_rows, &key)
        } else {
            report.view_changes.clone()
        };
        Ok((report, delta))
    }

    /// [`ViewCatalog::maintain_intermediate`] with shared-prefix reuse
    /// through the round's `cache` — the backing publishes (and
    /// consumes) designated sub-prefix diffs exactly like a view does,
    /// so a deep backing and a shallow backing over the same inner
    /// subtree compute that subtree's i-diffs once per round between
    /// them.
    ///
    /// # Errors
    /// Same conditions as [`ViewCatalog::maintain_intermediate`].
    pub fn maintain_intermediate_shared(
        &mut self,
        backing: &str,
        net: &HashMap<String, TableChanges>,
        cache: &mut SharedDiffCache,
    ) -> Result<(MaintenanceReport, TableChanges)> {
        let iv = self
            .intermediates
            .get(backing)
            .ok_or_else(|| Error::Config(format!("intermediate `{backing}` does not exist")))?;
        let pre_rows = sorted(self.db.table(backing)?.rows_uncounted());
        let report = iv
            .engine
            .maintain_with_changes_shared(&mut self.db, net, &iv.prefixes, cache)?;
        let delta = if report.recovered {
            let key = self.db.table(backing)?.schema().key().to_vec();
            let post_rows = sorted(self.db.table(backing)?.rows_uncounted());
            table_delta(&pre_rows, &post_rows, &key)
        } else {
            report.view_changes.clone()
        };
        Ok((report, delta))
    }

    /// Drive an intermediate's pending changes through a per-view
    /// [`MaintenanceSupervisor`] — same isolation contract as
    /// [`ViewCatalog::maintain_supervised`]. The backing Δ is always
    /// recovered by snapshot diff (a supervised run only guarantees
    /// the final table state), so consumers stay exact even across
    /// quarantines and recompute escalations.
    ///
    /// # Errors
    /// Unknown backing name ([`Error::Config`]) only.
    pub fn maintain_intermediate_supervised(
        &mut self,
        backing: &str,
        net: &HashMap<String, TableChanges>,
        config: SupervisorConfig,
    ) -> Result<(SupervisorReport, TableChanges)> {
        self.intermediate(backing)?;
        let pre_rows = sorted(self.db.table(backing)?.rows_uncounted());
        let iv = self
            .intermediates
            .get_mut(backing)
            .ok_or_else(|| Error::Config(format!("intermediate `{backing}` does not exist")))?;
        let mut supervisor = MaintenanceSupervisor::new(&mut iv.engine, config);
        let report = supervisor.run_with_changes(&mut self.db, net);
        let key = self.db.table(backing)?.schema().key().to_vec();
        let post_rows = sorted(self.db.table(backing)?.rows_uncounted());
        let delta = table_delta(&pre_rows, &post_rows, &key);
        Ok((report, delta))
    }

    /// Rebuild one view's engine over a content-equivalent plan
    /// rewrite, keeping the view table and every shape-stable cache,
    /// and dropping caches the rewritten plan no longer defines.
    fn rewire(&mut self, name: &str, new_plan: Plan) -> Result<()> {
        let (old_caches, options) = {
            let view = self.view(name)?;
            (
                view.engine
                    .caches()
                    .iter()
                    .map(|d| d.name.clone())
                    .collect::<Vec<String>>(),
                view.engine.options(),
            )
        };
        let engine = IdIvm::setup_over(&mut self.db, name, new_plan, options)?;
        let keep: BTreeSet<&str> = engine.caches().iter().map(|d| d.name.as_str()).collect();
        for cache in &old_caches {
            if !keep.contains(cache.as_str()) {
                self.db.drop_table(cache);
            }
        }
        let tables = scanned_tables(engine.plan());
        let view = self
            .views
            .get_mut(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        view.engine = engine;
        view.tables = tables;
        Ok(())
    }

    /// structure → backing-scan substitution map over the current
    /// intermediates.
    fn backing_substitutions(&self) -> Result<BTreeMap<String, Plan>> {
        let mut map = BTreeMap::new();
        for (backing, iv) in &self.intermediates {
            let schema = self.db.table(backing)?.schema().clone();
            map.insert(
                iv.structure.clone(),
                Plan::Scan {
                    table: backing.clone(),
                    alias: backing.clone(),
                    schema,
                },
            );
        }
        Ok(map)
    }

    /// The materialized rows of a view, sorted (uncounted — reads are
    /// not maintenance cost).
    ///
    /// # Errors
    /// Unknown view name.
    pub fn rows(&self, name: &str) -> Result<Vec<Row>> {
        self.view(name)?;
        Ok(sorted(self.db.table(name)?.rows_uncounted()))
    }

    /// Bit-identity fingerprint of a view's materialized table.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn signature(&self, name: &str) -> Result<TableSignature> {
        self.view(name)?;
        Ok(self.db.table(name)?.signature())
    }
}

/// Base tables scanned by a plan, sorted and deduplicated.
fn scanned_tables(plan: &Plan) -> Vec<String> {
    let mut tables: Vec<String> = plan.scans().into_iter().map(|(_, t)| t.to_string()).collect();
    tables.sort();
    tables.dedup();
    tables
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use idivm_workloads::MultiView;

    fn suite() -> (MultiView, ViewCatalog) {
        let cfg = MultiView {
            bsma: idivm_workloads::bsma::Bsma {
                scale: 0.05,
                seed: 11,
            },
        };
        let db = cfg.build().unwrap();
        let mut catalog = ViewCatalog::new(db);
        let views = cfg.views(catalog.db()).unwrap();
        for (name, plan) in views {
            catalog
                .register(&name, plan, IvmOptions::default())
                .unwrap();
        }
        (cfg, catalog)
    }

    #[test]
    fn dag_maps_tables_to_sorted_dependents() {
        let (_, catalog) = suite();
        let dag = catalog.dependency_dag();
        // Every view scans mentions + microblog.
        assert_eq!(dag["mentions"].len(), 5);
        assert_eq!(dag["microblog"].len(), 5);
        // Only the three user-joining views scan users.
        assert_eq!(
            dag["users"],
            vec![
                "mention_favor".to_string(),
                "mention_reach".to_string(),
                "mention_users".to_string()
            ]
        );
        assert_eq!(
            catalog.dependents("users"),
            vec!["mention_favor", "mention_reach", "mention_users"]
        );
    }

    #[test]
    fn q7_family_shares_a_designated_prefix() {
        let (_, catalog) = suite();
        // Four of the five views carry designated shared boundaries:
        // the σ_ts(mentions ⋈ microblog) subtree occurs in all of them
        // with *identical* base diff schemas.
        for name in [
            "mention_favor",
            "mention_reach",
            "mention_timeline",
            "mention_users",
        ] {
            assert!(
                !catalog.view(name).unwrap().prefixes().is_empty(),
                "{name} shares no prefix"
            );
        }
        // Negative control: `mention_topic_counts` groups on
        // `microblog.topic`, which makes `topic` a conditional
        // attribute *in that view only*. Its microblog update-diff
        // schemas therefore split differently from the other views'
        // and the same structural subtree would populate different
        // diff instances — sharing would be unsound, and detection
        // must refuse to designate.
        assert!(
            catalog.view("mention_topic_counts").unwrap().prefixes().is_empty(),
            "topic_counts has an incompatible diff-schema split and must not share"
        );
    }

    #[test]
    fn duplicate_and_unknown_names_are_config_errors() {
        let (cfg, mut catalog) = suite();
        let plan = cfg.plan(catalog.db(), "mention_timeline").unwrap();
        assert!(catalog
            .register("mention_timeline", plan, IvmOptions::default())
            .is_err());
        assert!(catalog.view("nope").is_err());
        assert!(catalog.unregister("nope").is_err());
    }

    #[test]
    fn unregister_drops_tables_and_redesignates() {
        let (_, mut catalog) = suite();
        // Removing two of the "other" views leaves mention_users +
        // mention_reach + mention_favor, which still share pairwise.
        catalog.unregister("mention_timeline").unwrap();
        catalog.unregister("mention_topic_counts").unwrap();
        assert!(!catalog.db().has_table("mention_timeline"));
        assert_eq!(catalog.len(), 3);
        for name in catalog.names() {
            assert!(!catalog.view(name).unwrap().prefixes().is_empty());
        }
        // mention_users + mention_reach still share the deep
        // `prefix ⋈ users` subtree.
        catalog.unregister("mention_favor").unwrap();
        assert!(!catalog
            .view("mention_users")
            .unwrap()
            .prefixes()
            .is_empty());
        // Dropping one more leaves a single view — nothing to share.
        catalog.unregister("mention_reach").unwrap();
        assert!(catalog
            .view("mention_users")
            .unwrap()
            .prefixes()
            .is_empty());
    }
}
