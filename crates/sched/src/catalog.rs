//! The multi-view catalog: many named [`IdIvm`] views registered over
//! one shared [`Database`], with the base-table → view dependency DAG
//! and the cross-view shared-prefix designations kept current on every
//! registration.
//!
//! The catalog is the *structural* layer: it knows which views exist,
//! which base tables each one depends on, and which operator subtrees
//! are shared (so one i-diff computation can serve several views). The
//! *temporal* layer — per-view refresh policies, pending-change
//! accumulation, and failure routing — lives on top of it in
//! [`crate::scheduler::MaintenanceScheduler`].

use idivm_core::supervisor::{MaintenanceSupervisor, SupervisorConfig, SupervisorReport};
use idivm_core::{
    detect_shared_prefixes, IdIvm, IvmOptions, MaintenanceReport, SharedDiffCache, SharedPrefixes,
};
use idivm_exec::executor::sorted;
use idivm_reldb::{Database, TableChanges, TableSignature};
use idivm_types::{Error, Result, Row};
use std::collections::{BTreeMap, HashMap};

/// One registered view: its engine, its shared-prefix designations
/// (recomputed whenever the registered set changes), and the base
/// tables it scans.
pub struct CatalogView {
    engine: IdIvm,
    prefixes: SharedPrefixes,
    tables: Vec<String>,
}

impl CatalogView {
    /// The maintenance engine.
    pub fn engine(&self) -> &IdIvm {
        &self.engine
    }

    /// Mutable engine access (knob configuration — parallelism, trace,
    /// faults — via `idivm_core::EngineConfig`).
    pub fn engine_mut(&mut self) -> &mut IdIvm {
        &mut self.engine
    }

    /// The view's current shared-prefix designations.
    pub fn prefixes(&self) -> &SharedPrefixes {
        &self.prefixes
    }

    /// Base tables the view scans, sorted and deduplicated.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }
}

/// Many named views over one shared database. Registration keeps the
/// dependency DAG and the shared-prefix designations current; views are
/// always iterated in name order, so every catalog operation is
/// deterministic for any `HashMap` iteration order or thread count.
pub struct ViewCatalog {
    db: Database,
    views: BTreeMap<String, CatalogView>,
}

impl ViewCatalog {
    /// Wrap an existing database (the catalog takes ownership; base
    /// modifications go through [`ViewCatalog::db_mut`]).
    pub fn new(db: Database) -> Self {
        ViewCatalog {
            db,
            views: BTreeMap::new(),
        }
    }

    /// Register and materialize a view. Recomputes the shared-prefix
    /// designations across the whole registered set — a new view can
    /// create sharing opportunities for existing ones.
    ///
    /// # Errors
    /// Duplicate name ([`Error::Config`]) or any [`IdIvm::setup`]
    /// failure.
    pub fn register(&mut self, name: &str, plan: idivm_algebra::Plan, options: IvmOptions) -> Result<()> {
        if self.views.contains_key(name) {
            return Err(Error::Config(format!(
                "view `{name}` is already registered"
            )));
        }
        let engine = IdIvm::setup(&mut self.db, name, plan, options)?;
        let mut tables: Vec<String> = engine
            .plan()
            .scans()
            .into_iter()
            .map(|(_, t)| t.to_string())
            .collect();
        tables.sort();
        tables.dedup();
        self.views.insert(
            name.to_string(),
            CatalogView {
                engine,
                prefixes: SharedPrefixes::none(),
                tables,
            },
        );
        self.refresh_prefixes();
        Ok(())
    }

    /// Drop a view: its materialized table, its caches, and its
    /// registration. Remaining views' shared-prefix designations are
    /// recomputed (a prefix shared only with the dropped view loses its
    /// designation).
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn unregister(&mut self, name: &str) -> Result<()> {
        let view = self
            .views
            .remove(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        for def in view.engine.caches() {
            self.db.drop_table(&def.name);
        }
        self.db.drop_table(name);
        self.refresh_prefixes();
        Ok(())
    }

    /// Recompute every view's shared-prefix designations (name order —
    /// deterministic).
    fn refresh_prefixes(&mut self) {
        let engines: Vec<&IdIvm> = self.views.values().map(|v| &v.engine).collect();
        let prefixes = detect_shared_prefixes(&engines);
        for (view, p) in self.views.values_mut().zip(prefixes) {
            view.prefixes = p;
        }
    }

    /// The shared database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access — this is where base-table modifications
    /// enter. The catalog does not intercept them; maintenance layers
    /// fold the modification log when they run.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Tear down the catalog, returning the database (views stay
    /// materialized as plain tables).
    pub fn into_db(self) -> Database {
        self.db
    }

    /// Registered view names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True iff no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Look up a registered view.
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn view(&self, name: &str) -> Result<&CatalogView> {
        self.views
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    /// Mutable view access (engine knob configuration).
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn view_mut(&mut self, name: &str) -> Result<&mut CatalogView> {
        self.views
            .get_mut(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))
    }

    /// The base-table → dependent-views DAG: every base table scanned
    /// by at least one view, mapped to the (sorted) names of the views
    /// that scan it.
    pub fn dependency_dag(&self) -> BTreeMap<String, Vec<String>> {
        let mut dag: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (name, view) in &self.views {
            for t in &view.tables {
                dag.entry(t.clone()).or_default().push(name.clone());
            }
        }
        dag
    }

    /// The (sorted) views that scan `table` — the fan-out set of one
    /// base-table modification.
    pub fn dependents(&self, table: &str) -> Vec<&str> {
        self.views
            .iter()
            .filter(|(_, v)| v.tables.iter().any(|t| t == table))
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Restrict a folded net-change set to the tables `view` scans —
    /// the per-view slice of a shared modification batch.
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]).
    pub fn restrict_net(
        &self,
        name: &str,
        net: &HashMap<String, TableChanges>,
    ) -> Result<HashMap<String, TableChanges>> {
        let view = self.view(name)?;
        Ok(net
            .iter()
            .filter(|(t, _)| view.tables.contains(t))
            .map(|(t, c)| (t.clone(), c.clone()))
            .collect())
    }

    /// Run one atomic maintenance round for `name` over an externally
    /// folded change set, with shared-prefix reuse through `cache`
    /// (create one [`SharedDiffCache`] per scheduler round and share it
    /// between every view maintained in that round).
    ///
    /// # Errors
    /// Unknown view name, or any
    /// [`IdIvm::maintain_with_changes_shared`] failure (the round has
    /// been rolled back; the caller still owns `net`).
    pub fn maintain_shared(
        &mut self,
        name: &str,
        net: &HashMap<String, TableChanges>,
        cache: &mut SharedDiffCache,
    ) -> Result<MaintenanceReport> {
        let view = self
            .views
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        view.engine
            .maintain_with_changes_shared(&mut self.db, net, &view.prefixes, cache)
    }

    /// Run one atomic maintenance round for `name` without prefix
    /// sharing (the independent-maintenance baseline).
    ///
    /// # Errors
    /// Same conditions as [`ViewCatalog::maintain_shared`].
    pub fn maintain_independent(
        &mut self,
        name: &str,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport> {
        let view = self
            .views
            .get(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        view.engine.maintain_with_changes(&mut self.db, net)
    }

    /// Drive `name`'s pending changes through a per-view
    /// [`MaintenanceSupervisor`] (retry → bisect/quarantine → recompute
    /// → degrade). Never returns `Err` for maintenance failures — the
    /// verdict in the report is the signal; the view's quarantine and
    /// rollback machinery cannot touch sibling views (each round only
    /// mutates this view's table and caches).
    ///
    /// # Errors
    /// Unknown view name ([`Error::Config`]) only.
    pub fn maintain_supervised(
        &mut self,
        name: &str,
        net: &HashMap<String, TableChanges>,
        config: SupervisorConfig,
    ) -> Result<SupervisorReport> {
        let view = self
            .views
            .get_mut(name)
            .ok_or_else(|| Error::Config(format!("view `{name}` is not registered")))?;
        let mut supervisor = MaintenanceSupervisor::new(&mut view.engine, config);
        Ok(supervisor.run_with_changes(&mut self.db, net))
    }

    /// The materialized rows of a view, sorted (uncounted — reads are
    /// not maintenance cost).
    ///
    /// # Errors
    /// Unknown view name.
    pub fn rows(&self, name: &str) -> Result<Vec<Row>> {
        self.view(name)?;
        Ok(sorted(self.db.table(name)?.rows_uncounted()))
    }

    /// Bit-identity fingerprint of a view's materialized table.
    ///
    /// # Errors
    /// Unknown view name.
    pub fn signature(&self, name: &str) -> Result<TableSignature> {
        self.view(name)?;
        Ok(self.db.table(name)?.signature())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use idivm_workloads::MultiView;

    fn suite() -> (MultiView, ViewCatalog) {
        let cfg = MultiView {
            bsma: idivm_workloads::bsma::Bsma {
                scale: 0.05,
                seed: 11,
            },
        };
        let db = cfg.build().unwrap();
        let mut catalog = ViewCatalog::new(db);
        let views = cfg.views(catalog.db()).unwrap();
        for (name, plan) in views {
            catalog
                .register(&name, plan, IvmOptions::default())
                .unwrap();
        }
        (cfg, catalog)
    }

    #[test]
    fn dag_maps_tables_to_sorted_dependents() {
        let (_, catalog) = suite();
        let dag = catalog.dependency_dag();
        // Every view scans mentions + microblog.
        assert_eq!(dag["mentions"].len(), 4);
        assert_eq!(dag["microblog"].len(), 4);
        // Only the two user-joining views scan users.
        assert_eq!(
            dag["users"],
            vec!["mention_favor".to_string(), "mention_users".to_string()]
        );
        assert_eq!(catalog.dependents("users"), vec!["mention_favor", "mention_users"]);
    }

    #[test]
    fn q7_family_shares_a_designated_prefix() {
        let (_, catalog) = suite();
        // Three of the four views carry designated shared boundaries:
        // the σ_ts(mentions ⋈ microblog) subtree occurs in all of them
        // with *identical* base diff schemas.
        for name in ["mention_favor", "mention_timeline", "mention_users"] {
            assert!(
                !catalog.view(name).unwrap().prefixes().is_empty(),
                "{name} shares no prefix"
            );
        }
        // Negative control: `mention_topic_counts` groups on
        // `microblog.topic`, which makes `topic` a conditional
        // attribute *in that view only*. Its microblog update-diff
        // schemas therefore split differently from the other views'
        // and the same structural subtree would populate different
        // diff instances — sharing would be unsound, and detection
        // must refuse to designate.
        assert!(
            catalog.view("mention_topic_counts").unwrap().prefixes().is_empty(),
            "topic_counts has an incompatible diff-schema split and must not share"
        );
    }

    #[test]
    fn duplicate_and_unknown_names_are_config_errors() {
        let (cfg, mut catalog) = suite();
        let plan = cfg.plan(catalog.db(), "mention_timeline").unwrap();
        assert!(catalog
            .register("mention_timeline", plan, IvmOptions::default())
            .is_err());
        assert!(catalog.view("nope").is_err());
        assert!(catalog.unregister("nope").is_err());
    }

    #[test]
    fn unregister_drops_tables_and_redesignates() {
        let (_, mut catalog) = suite();
        // Removing two of the "other" views leaves mention_users +
        // mention_favor, which still share their prefix pairwise.
        catalog.unregister("mention_timeline").unwrap();
        catalog.unregister("mention_topic_counts").unwrap();
        assert!(!catalog.db().has_table("mention_timeline"));
        assert_eq!(catalog.len(), 2);
        for name in catalog.names() {
            assert!(!catalog.view(name).unwrap().prefixes().is_empty());
        }
        // Dropping one more leaves a single view — nothing to share.
        catalog.unregister("mention_favor").unwrap();
        assert!(catalog
            .view("mention_users")
            .unwrap()
            .prefixes()
            .is_empty());
    }
}
