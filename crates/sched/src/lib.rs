//! `idivm-sched`: the multi-view catalog and shared-diff maintenance
//! scheduler — the subsystem that turns one idIVM engine into a
//! server-shaped workload.
//!
//! The paper's idIVM system is explicitly a *multi-view* maintainer:
//! i-diffs are computed once per base-table modification and pushed
//! through every dependent view's operator tree. This crate provides
//! that layer over the single-view engines:
//!
//! * [`ViewCatalog`] — register many named views over one shared
//!   [`idivm_reldb::Database`]; keeps the base-table → view dependency
//!   DAG and the cross-view shared operator-tree prefix designations
//!   ([`idivm_core::shared`]) current on every registration, so each
//!   base i-diff batch is computed **once** per shared prefix and
//!   fanned out to all dependent views.
//! * [`MaintenanceScheduler`] — per-view refresh policies
//!   ([`RefreshPolicy::Eager`], [`RefreshPolicy::Deferred`],
//!   [`RefreshPolicy::OnRead`] with a [`read_view`] barrier), pending
//!   nets composed across deferred rounds
//!   ([`idivm_reldb::compose_changes`]), atomic per-view rounds, and
//!   per-view failure routing through the
//!   [`idivm_core::supervisor::MaintenanceSupervisor`].
//!
//! [`read_view`]: MaintenanceScheduler::read_view
//!
//! Everything is deterministic: views are driven in name order, shared
//! caches are round-scoped and keyed by structural fingerprint ⊕
//! pending-net digest, and per-view/per-prefix access attribution is
//! bit-identical for any `ParallelConfig` thread count.
//!
//! The crate is re-exported from the umbrella crate as
//! `idivm_repro::catalog` (it cannot live under `idivm_core` itself —
//! it sits *above* the engines in the dependency DAG).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod scheduler;

pub use catalog::{CatalogView, IntermediateView, ViewCatalog};
pub use scheduler::{
    CostEntry, MaintenanceScheduler, PromotionEvent, RefreshPolicy, RoundSummary, SchedulerConfig,
    ViewStats,
};
