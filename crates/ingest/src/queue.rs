//! Bounded multi-producer admission queue with real backpressure.
//!
//! The queue holds wire-encoded [`RawEvent`]s between producers and
//! the micro-batcher. It is bounded by `capacity`; what happens at the
//! bound is the [`OverflowPolicy`]:
//!
//! * **Block** — the producer waits (or, on the non-blocking path,
//!   gets [`SendOutcome::WouldBlock`] and keeps the event). Nothing is
//!   ever lost; producers slow to the consumer's pace.
//! * **Shed** — the event is dropped *and counted*. Sheds are never
//!   silent: the running total feeds every cut's
//!   [`IngestTrace`](idivm_core::IngestTrace) and the firehose report.
//!
//! Watermarks give the system hysteresis and an overload signal:
//! producers blocked at the full mark are only woken once the drain
//! brings the depth back to `low_watermark` (so they don't thrash one
//! slot at a time), and the batcher treats `depth >= high_watermark`
//! as overload (see
//! [`MicroBatcher::decide`](crate::batcher::MicroBatcher::decide)).
//!
//! The armed [`FaultState`] hook
//! [`on_enqueue`](FaultState::on_enqueue) fires **before** the event
//! is buffered, so on `Err` the producer still owns the event and can
//! retry it — the CI fault sweep relies on that.

use crate::event::RawEvent;
use idivm_core::FaultState;
use idivm_types::{Error, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What to do with a new event when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Apply backpressure: block (or report `WouldBlock`) until the
    /// drain frees space. The default.
    #[default]
    Block,
    /// Drop the new event and count the shed.
    Shed,
}

impl OverflowPolicy {
    /// Stable lowercase label (reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::Shed => "shed",
        }
    }
}

/// Queue sizing and overflow behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Hard bound on buffered events.
    pub capacity: usize,
    /// Depth at or above which the batcher treats the system as
    /// overloaded (stretching batch age toward the staleness SLO).
    pub high_watermark: usize,
    /// Depth at or below which blocked producers are woken after a
    /// drain (hysteresis: no one-slot thrashing at the full mark).
    pub low_watermark: usize,
    /// What happens to a new event when the queue is full.
    pub policy: OverflowPolicy,
}

impl QueueConfig {
    /// A config with conventional watermarks: high at 3/4 capacity,
    /// low at 1/4.
    pub fn with_capacity(capacity: usize, policy: OverflowPolicy) -> Self {
        QueueConfig {
            capacity,
            high_watermark: capacity.saturating_mul(3) / 4,
            low_watermark: capacity / 4,
            policy,
        }
    }

    /// Check `low <= high <= capacity` and a non-zero capacity.
    ///
    /// # Errors
    /// [`Error::Config`] describing the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.capacity == 0 {
            return Err(Error::Config("queue capacity must be > 0".into()));
        }
        if self.low_watermark > self.high_watermark || self.high_watermark > self.capacity {
            return Err(Error::Config(format!(
                "watermarks must satisfy low <= high <= capacity, got {} <= {} <= {}",
                self.low_watermark, self.high_watermark, self.capacity
            )));
        }
        Ok(())
    }
}

/// Counters accumulated over the queue's lifetime. Reads are
/// monotone; the pipeline diffs `shed` between cuts to attribute sheds
/// to batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events successfully buffered.
    pub enqueued: u64,
    /// Events dropped under [`OverflowPolicy::Shed`] (counted, never
    /// silent).
    pub shed: u64,
    /// Maximum depth ever observed.
    pub max_depth: u64,
}

/// Outcome of a non-blocking send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The event is buffered.
    Enqueued,
    /// The queue was full under [`OverflowPolicy::Shed`]; the event
    /// was dropped and the shed counted.
    Shed,
    /// The queue was full under [`OverflowPolicy::Block`]; the caller
    /// keeps the event and should retry later.
    WouldBlock,
}

struct Inner {
    buf: Mutex<VecDeque<RawEvent>>,
    not_full: Condvar,
    enqueued: AtomicU64,
    shed: AtomicU64,
    max_depth: AtomicU64,
}

/// The bounded MPSC event queue. Cloning shares the same buffer —
/// hand clones to producer threads.
#[derive(Clone)]
pub struct EventQueue {
    inner: Arc<Inner>,
    config: QueueConfig,
    faults: Arc<FaultState>,
}

impl EventQueue {
    /// Build a queue over a validated config, sharing the ingest
    /// fault state (the enqueue failpoint lives here).
    ///
    /// # Errors
    /// [`Error::Config`] from [`QueueConfig::validate`].
    pub fn new(config: QueueConfig, faults: Arc<FaultState>) -> Result<Self> {
        config.validate()?;
        Ok(EventQueue {
            inner: Arc::new(Inner {
                buf: Mutex::new(VecDeque::with_capacity(config.capacity)),
                not_full: Condvar::new(),
                enqueued: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                max_depth: AtomicU64::new(0),
            }),
            config,
            faults,
        })
    }

    /// The active config.
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Current buffered depth.
    pub fn depth(&self) -> usize {
        match self.inner.buf.lock() {
            Ok(buf) => buf.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            enqueued: self.inner.enqueued.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            max_depth: self.inner.max_depth.load(Ordering::Relaxed),
        }
    }

    fn note_depth(&self, depth: usize) {
        self.inner.max_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Non-blocking send — the virtual-tick driver's path. The enqueue
    /// failpoint fires before buffering.
    ///
    /// # Errors
    /// An armed [`FaultSite::Enqueue`](idivm_core::FaultSite) fault;
    /// the caller still owns the event and may retry it.
    pub fn try_send(&self, ev: &RawEvent) -> Result<SendOutcome> {
        self.faults.on_enqueue()?;
        let mut buf = match self.inner.buf.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        if buf.len() >= self.config.capacity {
            return Ok(match self.config.policy {
                OverflowPolicy::Block => SendOutcome::WouldBlock,
                OverflowPolicy::Shed => {
                    self.inner.shed.fetch_add(1, Ordering::Relaxed);
                    SendOutcome::Shed
                }
            });
        }
        buf.push_back(ev.clone());
        self.inner.enqueued.fetch_add(1, Ordering::Relaxed);
        let depth = buf.len();
        drop(buf);
        self.note_depth(depth);
        Ok(SendOutcome::Enqueued)
    }

    /// Blocking send — the real-thread producer path. Under
    /// [`OverflowPolicy::Block`] this waits (bounded by `patience` per
    /// wait round) until the drain frees space; under
    /// [`OverflowPolicy::Shed`] it never blocks.
    ///
    /// # Errors
    /// An armed enqueue fault (the caller still owns the event), or
    /// [`Error::Config`] if the queue stayed full past `patience`
    /// (deadlock guard — the consumer is gone).
    pub fn send(&self, ev: &RawEvent, patience: Duration) -> Result<SendOutcome> {
        self.faults.on_enqueue()?;
        let mut buf = match self.inner.buf.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        while buf.len() >= self.config.capacity {
            match self.config.policy {
                OverflowPolicy::Shed => {
                    self.inner.shed.fetch_add(1, Ordering::Relaxed);
                    return Ok(SendOutcome::Shed);
                }
                OverflowPolicy::Block => {
                    let (b, timed_out) = match self.inner.not_full.wait_timeout(buf, patience) {
                        Ok((b, t)) => (b, t.timed_out()),
                        Err(poisoned) => {
                            let (b, t) = poisoned.into_inner();
                            (b, t.timed_out())
                        }
                    };
                    buf = b;
                    if timed_out && buf.len() >= self.config.capacity {
                        return Err(Error::Config(format!(
                            "producer blocked past {patience:?} on a full queue (depth {})",
                            buf.len()
                        )));
                    }
                }
            }
        }
        buf.push_back(ev.clone());
        self.inner.enqueued.fetch_add(1, Ordering::Relaxed);
        let depth = buf.len();
        drop(buf);
        self.note_depth(depth);
        Ok(SendOutcome::Enqueued)
    }

    /// Drain every buffered event (a batch cut). Blocked producers are
    /// woken only if the post-drain depth is at or below the low
    /// watermark — which after a full drain it always is.
    pub fn drain_all(&self) -> Vec<RawEvent> {
        let mut buf = match self.inner.buf.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        let out: Vec<RawEvent> = buf.drain(..).collect();
        let depth = buf.len();
        drop(buf);
        if depth <= self.config.low_watermark {
            self.inner.not_full.notify_all();
        }
        out
    }

    /// Put events back at the *front* in their original order — the
    /// rollback path after a mid-batch fault. The events become
    /// pending again exactly as they were; depth may transiently
    /// exceed nothing (they came from this queue).
    pub fn requeue_front(&self, events: Vec<RawEvent>) {
        let mut buf = match self.inner.buf.lock() {
            Ok(b) => b,
            Err(poisoned) => poisoned.into_inner(),
        };
        for ev in events.into_iter().rev() {
            buf.push_front(ev);
        }
        let depth = buf.len();
        drop(buf);
        self.note_depth(depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_core::FaultPlan;

    fn raw(n: u64) -> RawEvent {
        RawEvent {
            wire: format!("0|{n}|t|ins|i:{n}"),
        }
    }

    fn queue(capacity: usize, policy: OverflowPolicy) -> EventQueue {
        EventQueue::new(
            QueueConfig::with_capacity(capacity, policy),
            Arc::new(FaultState::new(FaultPlan::disabled())),
        )
        .unwrap()
    }

    #[test]
    fn bounded_with_shed_counts_drops() {
        let q = queue(2, OverflowPolicy::Shed);
        assert_eq!(q.try_send(&raw(0)).unwrap(), SendOutcome::Enqueued);
        assert_eq!(q.try_send(&raw(1)).unwrap(), SendOutcome::Enqueued);
        assert_eq!(q.try_send(&raw(2)).unwrap(), SendOutcome::Shed);
        assert_eq!(q.stats().shed, 1);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn bounded_with_block_reports_would_block() {
        let q = queue(1, OverflowPolicy::Block);
        assert_eq!(q.try_send(&raw(0)).unwrap(), SendOutcome::Enqueued);
        assert_eq!(q.try_send(&raw(1)).unwrap(), SendOutcome::WouldBlock);
        assert_eq!(q.stats().shed, 0, "blocked events are not sheds");
    }

    #[test]
    fn drain_preserves_fifo_and_requeue_restores_order() {
        let q = queue(8, OverflowPolicy::Block);
        for n in 0..4 {
            q.try_send(&raw(n)).unwrap();
        }
        let drained = q.drain_all();
        assert_eq!(
            drained.iter().map(|e| e.wire.clone()).collect::<Vec<_>>(),
            (0..4).map(|n| raw(n).wire).collect::<Vec<_>>()
        );
        q.requeue_front(drained);
        let again = q.drain_all();
        assert_eq!(
            again.iter().map(|e| e.wire.clone()).collect::<Vec<_>>(),
            (0..4).map(|n| raw(n).wire).collect::<Vec<_>>()
        );
    }

    #[test]
    fn enqueue_fault_fires_before_buffering() {
        let faults = Arc::new(FaultState::new(FaultPlan::at_enqueue(1, 7)));
        let q = EventQueue::new(
            QueueConfig::with_capacity(8, OverflowPolicy::Block),
            faults,
        )
        .unwrap();
        q.try_send(&raw(0)).unwrap();
        let err = q.try_send(&raw(1)).unwrap_err();
        assert!(err.retryable(), "enqueue fault defaults transient: {err}");
        assert_eq!(q.depth(), 1, "faulted event was never buffered");
        // Single-shot: the retry goes through.
        assert_eq!(q.try_send(&raw(1)).unwrap(), SendOutcome::Enqueued);
    }

    #[test]
    fn invalid_watermarks_rejected() {
        let cfg = QueueConfig {
            capacity: 4,
            high_watermark: 2,
            low_watermark: 3,
            policy: OverflowPolicy::Block,
        };
        assert!(cfg.validate().is_err());
        assert!(QueueConfig::with_capacity(0, OverflowPolicy::Block)
            .validate()
            .is_err());
    }

    #[test]
    fn blocking_send_wakes_on_drain() {
        let q = queue(2, OverflowPolicy::Block);
        q.try_send(&raw(0)).unwrap();
        q.try_send(&raw(1)).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.send(&raw(2), Duration::from_secs(5)));
        // Give the producer a moment to block, then drain.
        std::thread::sleep(Duration::from_millis(20));
        let drained = q.drain_all();
        assert_eq!(drained.len(), 2);
        let outcome = producer.join().expect("producer thread").unwrap();
        assert_eq!(outcome, SendOutcome::Enqueued);
        assert_eq!(q.depth(), 1);
    }
}
