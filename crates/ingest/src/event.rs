//! The typed change-event stream format and its wire encoding.
//!
//! A [`ChangeEvent`] is one CDC record: which producer emitted it, its
//! per-producer monotone sequence number, the target table, and the
//! operation — insert (post-image), delete (pre-image), or update
//! (pre- and post-image). Producers ship events over the wire as
//! [`RawEvent`] lines; the pipeline decodes them back at admission.
//! Decoding is schema-agnostic — a structurally valid line always
//! decodes, and schema/type/state validation happens later at
//! admission so each malformed shape dead-letters with its own
//! specific cause rather than a generic parse error.
//!
//! Wire grammar (one event per line, `|`-separated, `\`-escaped):
//!
//! ```text
//! <producer>|<seq>|<table>|ins|<row>
//! <producer>|<seq>|<table>|del|<row>
//! <producer>|<seq>|<table>|upd|<pre-row>|<post-row>
//! row   := value ("," value)*
//! value := "n" | "bt" | "bf" | "i:" int | "f:" float | "s:" text
//! ```
//!
//! Floats are rendered with Rust's shortest-roundtrip `{:?}` so
//! encode→decode is bit-exact; strings escape `\`, `|`, and `,`.

use idivm_types::{Row, Value};

/// The operation carried by a change event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeOp {
    /// A new row (post-image only).
    Insert {
        /// The inserted row.
        row: Row,
    },
    /// A removed row (pre-image only; the key is derived from it).
    Delete {
        /// The producer's claimed pre-image of the removed row.
        pre: Row,
    },
    /// An in-place modification (key columns must not change).
    Update {
        /// The producer's claimed pre-image.
        pre: Row,
        /// The full post-image.
        post: Row,
    },
}

impl ChangeOp {
    /// Stable lowercase wire tag.
    pub fn label(&self) -> &'static str {
        match self {
            ChangeOp::Insert { .. } => "ins",
            ChangeOp::Delete { .. } => "del",
            ChangeOp::Update { .. } => "upd",
        }
    }
}

/// One typed CDC record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeEvent {
    /// Producer (stream shard) that emitted the event.
    pub producer: u32,
    /// Per-producer sequence number; each producer's stream must be
    /// gap-free and monotone from its first observed value.
    pub seq: u64,
    /// Target base table.
    pub table: String,
    /// The change itself.
    pub op: ChangeOp,
}

/// A wire-encoded change event (one line of the firehose protocol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEvent {
    /// The encoded line.
    pub wire: String,
}

/// Escape `\`, `|`, and `,` so field and value separators survive
/// arbitrary string payloads.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(c, '\\' | '|' | ',') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Split on unescaped `sep`, preserving escapes inside segments.
fn split_unescaped(s: &str, sep: char) -> Vec<String> {
    let mut parts = vec![String::new()];
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                let last = parts.len() - 1;
                parts[last].push('\\');
                parts[last].push(n);
            }
        } else if c == sep {
            parts.push(String::new());
        } else {
            let last = parts.len() - 1;
            parts[last].push(c);
        }
    }
    parts
}

/// Remove one level of backslash escaping.
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n".to_string(),
        Value::Bool(true) => "bt".to_string(),
        Value::Bool(false) => "bf".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{f:?}"),
        Value::Str(s) => format!("s:{}", escape(s)),
    }
}

fn decode_value(seg: &str) -> Result<Value, String> {
    if let Some(rest) = seg.strip_prefix("s:") {
        return Ok(Value::str(unescape(rest)));
    }
    match seg {
        "n" => return Ok(Value::Null),
        "bt" => return Ok(Value::Bool(true)),
        "bf" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Some(rest) = seg.strip_prefix("i:") {
        return rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("bad int literal `{rest}`"));
    }
    if let Some(rest) = seg.strip_prefix("f:") {
        return rest
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad float literal `{rest}`"));
    }
    Err(format!("unknown value tag `{seg}`"))
}

fn encode_row(row: &Row) -> String {
    let vals: Vec<String> = row.0.iter().map(encode_value).collect();
    vals.join(",")
}

fn decode_row(seg: &str) -> Result<Row, String> {
    if seg.is_empty() {
        return Err("empty row".to_string());
    }
    let mut vals = Vec::new();
    for part in split_unescaped(seg, ',') {
        vals.push(decode_value(&part)?);
    }
    Ok(Row(vals))
}

impl RawEvent {
    /// Encode a typed event onto the wire. Lossless: `decode` returns
    /// a bit-identical [`ChangeEvent`].
    pub fn encode(ev: &ChangeEvent) -> RawEvent {
        let body = match &ev.op {
            ChangeOp::Insert { row } => encode_row(row),
            ChangeOp::Delete { pre } => encode_row(pre),
            ChangeOp::Update { pre, post } => {
                format!("{}|{}", encode_row(pre), encode_row(post))
            }
        };
        RawEvent {
            wire: format!(
                "{}|{}|{}|{}|{}",
                ev.producer,
                ev.seq,
                escape(&ev.table),
                ev.op.label(),
                body
            ),
        }
    }

    /// Decode the wire line back into a typed event.
    ///
    /// # Errors
    /// A human-readable cause string for any structural problem —
    /// the pipeline dead-letters the raw line with it.
    pub fn decode(&self) -> Result<ChangeEvent, String> {
        let parts = split_unescaped(&self.wire, '|');
        if parts.len() < 5 {
            return Err(format!("expected at least 5 fields, got {}", parts.len()));
        }
        let producer = parts[0]
            .parse::<u32>()
            .map_err(|_| format!("bad producer id `{}`", parts[0]))?;
        let seq = parts[1]
            .parse::<u64>()
            .map_err(|_| format!("bad sequence number `{}`", parts[1]))?;
        let table = unescape(&parts[2]);
        let op = match (parts[3].as_str(), parts.len()) {
            ("ins", 5) => ChangeOp::Insert {
                row: decode_row(&parts[4])?,
            },
            ("del", 5) => ChangeOp::Delete {
                pre: decode_row(&parts[4])?,
            },
            ("upd", 6) => ChangeOp::Update {
                pre: decode_row(&parts[4])?,
                post: decode_row(&parts[5])?,
            },
            (tag @ ("ins" | "del" | "upd"), n) => {
                return Err(format!("op `{tag}` with {n} fields"));
            }
            (tag, _) => return Err(format!("unknown op tag `{tag}`")),
        };
        Ok(ChangeEvent {
            producer,
            seq,
            table,
            op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_types::row;

    fn ev(op: ChangeOp) -> ChangeEvent {
        ChangeEvent {
            producer: 3,
            seq: 41,
            table: "microblog".into(),
            op,
        }
    }

    #[test]
    fn roundtrip_insert_delete_update() {
        for op in [
            ChangeOp::Insert {
                row: row![1, "pandas, geese | \\ moose", 2.5, true, Value::Null],
            },
            ChangeOp::Delete {
                pre: row![7, "x"],
            },
            ChangeOp::Update {
                pre: row![7, "x"],
                post: row![7, "y"],
            },
        ] {
            let e = ev(op);
            let decoded = RawEvent::encode(&e).decode().unwrap();
            assert_eq!(decoded, e);
        }
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        let e = ev(ChangeOp::Insert {
            row: row![0.1 + 0.2, f64::MIN_POSITIVE, -0.0],
        });
        let decoded = RawEvent::encode(&e).decode().unwrap();
        let (Value::Float(a), Value::Float(b)) =
            (decoded.op_row(0).clone(), e.op_row(0).clone())
        else {
            panic!("not floats");
        };
        assert_eq!(a.to_bits(), b.to_bits());
    }

    impl ChangeEvent {
        fn op_row(&self, idx: usize) -> &Value {
            match &self.op {
                ChangeOp::Insert { row } => &row.0[idx],
                ChangeOp::Delete { pre } => &pre.0[idx],
                ChangeOp::Update { post, .. } => &post.0[idx],
            }
        }
    }

    #[test]
    fn garbage_lines_fail_with_causes() {
        for (wire, needle) in [
            ("nonsense", "at least 5 fields"),
            ("x|1|t|ins|i:1", "bad producer"),
            ("1|x|t|ins|i:1", "bad sequence"),
            ("1|2|t|frobnicate|i:1", "unknown op tag"),
            ("1|2|t|upd|i:1", "op `upd` with 5 fields"),
            ("1|2|t|ins|i:1|i:2", "op `ins` with 6 fields"),
            ("1|2|t|ins|i:zebra", "bad int literal"),
            ("1|2|t|ins|q:9", "unknown value tag"),
            ("1|2|t|ins|", "empty row"),
        ] {
            let err = RawEvent { wire: wire.into() }.decode().unwrap_err();
            assert!(err.contains(needle), "`{wire}` gave `{err}`");
        }
    }

    #[test]
    fn escaped_table_names_survive() {
        let e = ChangeEvent {
            producer: 0,
            seq: 0,
            table: "odd|name,with\\chars".into(),
            op: ChangeOp::Insert { row: row![1] },
        };
        assert_eq!(RawEvent::encode(&e).decode().unwrap(), e);
    }
}
