//! Deterministic virtual-tick firehose driver.
//!
//! Replays pre-generated per-producer event streams against an
//! [`IngestPipeline`] on a **virtual tick clock** — no wall time, no
//! OS scheduling, so every run with the same inputs is bit-identical
//! (queue order, batch boundaries, DLQ bytes, everything). The model:
//!
//! * Each tick, up to `offers_per_tick` events arrive, taken
//!   round-robin across producers. A producer whose event got
//!   [`SendOutcome::WouldBlock`] keeps it at the front of its stream
//!   and re-offers next tick (backpressure slows arrival consumption;
//!   with a shedding queue the event is dropped and counted instead).
//! * The maintainer is busy for a while after each cut:
//!   `1 + admitted / service_rate` ticks, during which arrivals
//!   continue but no cut happens. This is what makes overload *real* —
//!   at high offered rates the queue fills while the maintainer works,
//!   backpressure or shedding kicks in, and the adaptive batcher
//!   stretches batches toward the staleness SLO.
//! * Ingest faults don't stop the stream: the error is recorded, the
//!   event/batch stays pending (see the pipeline's rollback contract),
//!   and the next tick retries.
//!
//! The driver records everything the firehose bench reports: per-event
//! latency samples, queue-depth time series, cut causes, shed/DLQ
//! counts, and injected-fault sightings.

use crate::event::RawEvent;
use crate::pipeline::{IngestOutcome, IngestPipeline};
use crate::queue::SendOutcome;
use idivm_sched::MaintenanceScheduler;
use idivm_types::Result;
use std::collections::VecDeque;

/// Arrival/service shape of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveConfig {
    /// Events offered per tick across all producers (round-robin).
    pub offers_per_tick: usize,
    /// Admitted events the maintainer folds per busy tick after a cut
    /// (the service rate; higher = faster consumer).
    pub service_rate: u64,
    /// Hard stop: give up if the stream hasn't drained by this many
    /// ticks (guards against a mis-configured policy never cutting).
    pub max_ticks: u64,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            offers_per_tick: 8,
            service_rate: 32,
            max_ticks: 1_000_000,
        }
    }
}

/// Everything one simulated run observed.
#[derive(Debug, Clone, Default)]
pub struct DriveStats {
    /// Virtual ticks the run took.
    pub ticks: u64,
    /// Events consumed from the streams (enqueued or shed). A
    /// `WouldBlock` re-offer does not recount the event.
    pub offered: u64,
    /// Events admitted across all cuts.
    pub admitted: u64,
    /// Events dead-lettered across all cuts.
    pub dead_lettered: u64,
    /// Events shed by the queue.
    pub shed: u64,
    /// Batches cut, with causes, batch sizes, and queue depth at cut,
    /// in cut order.
    pub cuts: Vec<(String, usize, u64)>,
    /// Per-event queue→cut latency samples, in ticks.
    pub latencies_ticks: Vec<u64>,
    /// Queue depth sampled at the end of every tick.
    pub depth_series: Vec<u64>,
    /// Injected-fault errors observed (and retried past), in order.
    pub fault_sightings: Vec<String>,
}

impl DriveStats {
    /// Percentile over the latency samples (nearest-rank). `None`
    /// when no events completed.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        if self.latencies_ticks.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_ticks.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Maximum depth in the sampled series.
    pub fn max_depth(&self) -> u64 {
        self.depth_series.iter().copied().max().unwrap_or(0)
    }

    /// Sustained throughput: admitted events per tick.
    pub fn events_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.admitted as f64 / self.ticks as f64
    }
}

/// Drive pre-generated producer streams through the pipeline until
/// everything is consumed (admitted, dead-lettered, or shed), then
/// flush. Returns the observation record; the pipeline retains the
/// DLQ and totals for inspection.
///
/// # Errors
/// Scheduler/catalog errors only — ingest faults are recorded in
/// [`DriveStats::fault_sightings`] and retried, never fatal.
pub fn drive(
    pipeline: &mut IngestPipeline,
    sched: &mut MaintenanceScheduler,
    streams: Vec<Vec<RawEvent>>,
    config: DriveConfig,
) -> Result<DriveStats> {
    let mut stats = DriveStats::default();
    let mut streams: Vec<VecDeque<RawEvent>> =
        streams.into_iter().map(VecDeque::from).collect();
    let mut now: u64 = 0;
    let mut busy_until: u64 = 0;
    let mut next_producer = 0usize;
    while streams.iter().any(|s| !s.is_empty()) || pipeline.queue().depth() > 0 {
        now += 1;
        if now > config.max_ticks {
            break;
        }
        // Arrivals: round-robin across producers with a per-tick cap.
        let mut offers_left = config.offers_per_tick;
        let mut stalled = 0usize;
        while offers_left > 0 && stalled < streams.len() {
            let idx = next_producer % streams.len().max(1);
            next_producer += 1;
            let Some(ev) = streams[idx].front().cloned() else {
                stalled += 1;
                continue;
            };
            match pipeline.offer(now, &ev) {
                Ok(SendOutcome::Enqueued) => {
                    streams[idx].pop_front();
                    stats.offered += 1;
                    offers_left -= 1;
                    stalled = 0;
                }
                Ok(SendOutcome::Shed) => {
                    // Dropped and counted by the queue; the producer
                    // moves on.
                    streams[idx].pop_front();
                    stats.offered += 1;
                    offers_left -= 1;
                    stalled = 0;
                }
                Ok(SendOutcome::WouldBlock) => {
                    // Backpressure: the producer keeps the event and
                    // stops offering this tick.
                    stalled += 1;
                }
                Err(e) => {
                    // Enqueue fault: producer retains the event,
                    // retries next tick (the failpoint is single-shot).
                    stats.fault_sightings.push(e.to_string());
                    stalled += 1;
                }
            }
        }
        // Service: cut when free and the batcher says so.
        if now >= busy_until {
            match pipeline.poll(now, sched) {
                Ok(Some(outcome)) => {
                    record_cut(&mut stats, &outcome);
                    busy_until = now + 1 + outcome.trace.admitted / config.service_rate.max(1);
                }
                Ok(None) => {}
                Err(e) if e.retryable() || matches!(e, idivm_types::Error::Poison(_)) => {
                    stats.fault_sightings.push(e.to_string());
                }
                Err(e) => return Err(e),
            }
        }
        stats.depth_series.push(pipeline.queue().depth() as u64);
    }
    // End of stream: drain the tail.
    loop {
        now += 1;
        match pipeline.flush(now, sched) {
            Ok(Some(outcome)) => record_cut(&mut stats, &outcome),
            Ok(None) => break,
            Err(e) if e.retryable() || matches!(e, idivm_types::Error::Poison(_)) => {
                stats.fault_sightings.push(e.to_string());
            }
            Err(e) => return Err(e),
        }
    }
    stats.ticks = now;
    let totals = pipeline.totals();
    stats.admitted = totals.admitted;
    stats.dead_lettered = totals.dead_lettered;
    stats.shed = totals.shed;
    Ok(stats)
}

fn record_cut(stats: &mut DriveStats, outcome: &IngestOutcome) {
    stats.cuts.push((
        outcome.trace.cut_cause.to_string(),
        outcome.batch_events,
        outcome.trace.queue_depth_at_cut,
    ));
    stats.latencies_ticks.extend(&outcome.latencies_ticks);
}
