//! The dead-letter queue: deterministic quarantine for events that
//! fail admission.
//!
//! Every event the pipeline refuses lands here with its full context:
//! who sent it, its sequence number, the target table, the **cause**,
//! the claimed pre/post images, and the original wire line. Nothing is
//! ever dropped silently — an event either folds into a batch, is
//! counted as shed by the queue, or appears here.
//!
//! **Determinism contract.** Dead letters are appended in admission
//! order, which is queue order, which the deterministic drivers fix
//! independently of any engine parallelism (`ParallelConfig` threads
//! join *inside* maintenance; admission is serial). Two runs over the
//! same event stream therefore produce **byte-identical** DLQ JSON —
//! the ingest tests pin this across runs and across P=1/P=4, mirroring
//! the quarantine-log determinism of the maintenance supervisor.

use crate::event::{ChangeEvent, ChangeOp};
use idivm_types::Row;

/// Why an event was dead-lettered. Labels are stable; details carry
/// only values derived deterministically from the event and the
/// database state at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadLetterCause {
    /// The wire line did not decode (structural garbage).
    Decode(String),
    /// The target table does not exist.
    UnknownTable,
    /// A carried row's arity does not match the table schema.
    WrongArity {
        /// Schema arity.
        expected: usize,
        /// Row arity observed.
        got: usize,
    },
    /// A value's type contradicts the schema column type (NULL is
    /// admissible in any column).
    TypeMismatch {
        /// Zero-based column index.
        column: usize,
        /// Schema column type label.
        expected: &'static str,
    },
    /// The producer's sequence jumped forward; admission resyncs its
    /// baseline to just past the gap so the stream keeps flowing.
    SequenceGap {
        /// The sequence number admission expected.
        expected: u64,
    },
    /// The producer's sequence ran backward (duplicate or replay);
    /// the baseline is left unchanged.
    SequenceRegression {
        /// The sequence number admission expected.
        expected: u64,
    },
    /// An insert targeted a key that is already live.
    DuplicateKey,
    /// A delete/update targeted a key with no stored row.
    MissingRow,
    /// The claimed pre-image does not match the stored row (the
    /// producer's view of the table is stale).
    StalePreImage {
        /// The row actually stored at admission time.
        actual: Row,
    },
    /// An update attempted to change key columns (CDC models that as
    /// delete + insert, never as update).
    KeyChanged,
    /// Post-validation storage rejection (defensive; validation should
    /// make this unreachable).
    Storage(String),
}

impl DeadLetterCause {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            DeadLetterCause::Decode(_) => "decode",
            DeadLetterCause::UnknownTable => "unknown_table",
            DeadLetterCause::WrongArity { .. } => "wrong_arity",
            DeadLetterCause::TypeMismatch { .. } => "type_mismatch",
            DeadLetterCause::SequenceGap { .. } => "sequence_gap",
            DeadLetterCause::SequenceRegression { .. } => "sequence_regression",
            DeadLetterCause::DuplicateKey => "duplicate_key",
            DeadLetterCause::MissingRow => "missing_row",
            DeadLetterCause::StalePreImage { .. } => "stale_pre_image",
            DeadLetterCause::KeyChanged => "key_changed",
            DeadLetterCause::Storage(_) => "storage",
        }
    }

    /// Deterministic human-readable detail.
    pub fn detail(&self) -> String {
        match self {
            DeadLetterCause::Decode(m) | DeadLetterCause::Storage(m) => m.clone(),
            DeadLetterCause::UnknownTable => "no such table".into(),
            DeadLetterCause::WrongArity { expected, got } => {
                format!("schema arity {expected}, row arity {got}")
            }
            DeadLetterCause::TypeMismatch { column, expected } => {
                format!("column {column} expects {expected}")
            }
            DeadLetterCause::SequenceGap { expected } => {
                format!("expected seq {expected}; baseline resynced past the gap")
            }
            DeadLetterCause::SequenceRegression { expected } => {
                format!("expected seq {expected}; baseline unchanged")
            }
            DeadLetterCause::DuplicateKey => "insert over a live key".into(),
            DeadLetterCause::MissingRow => "no stored row under the key".into(),
            DeadLetterCause::StalePreImage { actual } => {
                format!("stored row is {actual:?}")
            }
            DeadLetterCause::KeyChanged => "update may not move key columns".into(),
        }
    }
}

/// One quarantined event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// Producer id (0 when the line didn't decode far enough to know).
    pub producer: u32,
    /// Claimed sequence number (0 when unknown).
    pub seq: u64,
    /// Target table ("" when unknown).
    pub table: String,
    /// Why admission refused the event.
    pub cause: DeadLetterCause,
    /// Claimed pre-image, when the op carried one.
    pub pre: Option<Row>,
    /// Claimed post-image, when the op carried one.
    pub post: Option<Row>,
    /// The original wire line, verbatim — the event is replayable
    /// after repair.
    pub wire: String,
}

impl DeadLetter {
    /// Build a dead letter from a decoded event (images pulled from
    /// the op).
    pub fn from_event(ev: &ChangeEvent, cause: DeadLetterCause, wire: String) -> Self {
        let (pre, post) = match &ev.op {
            ChangeOp::Insert { row } => (None, Some(row.clone())),
            ChangeOp::Delete { pre } => (Some(pre.clone()), None),
            ChangeOp::Update { pre, post } => (Some(pre.clone()), Some(post.clone())),
        };
        DeadLetter {
            producer: ev.producer,
            seq: ev.seq,
            table: ev.table.clone(),
            cause,
            pre,
            post,
            wire,
        }
    }

    /// Build a dead letter for a line that never decoded.
    pub fn from_wire(cause: DeadLetterCause, wire: String) -> Self {
        DeadLetter {
            producer: 0,
            seq: 0,
            table: String::new(),
            cause,
            pre: None,
            post: None,
            wire,
        }
    }

    /// Render as a JSON object (deterministic field order).
    pub fn to_json(&self) -> String {
        fn opt_row(r: &Option<Row>) -> String {
            r.as_ref()
                .map_or_else(|| "null".to_string(), |r| json_str(&format!("{r:?}")))
        }
        format!(
            "{{\"producer\": {}, \"seq\": {}, \"table\": {}, \"cause\": \"{}\", \
             \"detail\": {}, \"pre\": {}, \"post\": {}, \"wire\": {}}}",
            self.producer,
            self.seq,
            json_str(&self.table),
            self.cause.label(),
            json_str(&self.cause.detail()),
            opt_row(&self.pre),
            opt_row(&self.post),
            json_str(&self.wire)
        )
    }
}

/// Escape a string for embedding as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Append-only dead-letter store for one pipeline.
#[derive(Debug, Clone, Default)]
pub struct DeadLetterQueue {
    entries: Vec<DeadLetter>,
}

impl DeadLetterQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quarantine one event.
    pub fn push(&mut self, letter: DeadLetter) {
        self.entries.push(letter);
    }

    /// All entries in admission order.
    pub fn entries(&self) -> &[DeadLetter] {
        &self.entries
    }

    /// Number of quarantined events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing has been quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Roll back to an earlier length (mid-batch fault rollback: the
    /// events become pending again, so their dead letters must not
    /// survive the aborted attempt).
    pub fn truncate(&mut self, len: usize) {
        self.entries.truncate(len);
    }

    /// Render the whole queue as a JSON array — the byte string the
    /// determinism tests compare across runs and thread counts.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.entries.iter().map(DeadLetter::to_json).collect();
        format!("[{}]", items.join(", "))
    }

    /// FNV-1a digest of [`DeadLetterQueue::to_json`] — a cheap
    /// byte-identity fingerprint for reports.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_types::row;

    fn letter(seq: u64, cause: DeadLetterCause) -> DeadLetter {
        DeadLetter {
            producer: 1,
            seq,
            table: "t".into(),
            cause,
            pre: Some(row![1, "x"]),
            post: None,
            wire: format!("1|{seq}|t|del|i:1,s:x"),
        }
    }

    #[test]
    fn json_is_deterministic_and_digest_tracks_bytes() {
        let mut a = DeadLetterQueue::new();
        let mut b = DeadLetterQueue::new();
        for q in [&mut a, &mut b] {
            q.push(letter(4, DeadLetterCause::MissingRow));
            q.push(letter(
                9,
                DeadLetterCause::StalePreImage {
                    actual: row![1, "y"],
                },
            ));
        }
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
        b.push(letter(12, DeadLetterCause::DuplicateKey));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn truncate_rolls_back_the_tail() {
        let mut q = DeadLetterQueue::new();
        q.push(letter(1, DeadLetterCause::UnknownTable));
        let mark = q.len();
        q.push(letter(2, DeadLetterCause::KeyChanged));
        q.truncate(mark);
        assert_eq!(q.len(), 1);
        assert_eq!(q.entries()[0].seq, 1);
    }

    #[test]
    fn json_escapes_hostile_strings() {
        let mut q = DeadLetterQueue::new();
        q.push(DeadLetter::from_wire(
            DeadLetterCause::Decode("bad \"quote\" and \\slash".into()),
            "wire\nline".into(),
        ));
        let j = q.to_json();
        assert!(j.contains("bad \\\"quote\\\" and \\\\slash"));
        assert!(j.contains("wire\\nline"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn cause_labels_are_stable() {
        for (cause, label) in [
            (DeadLetterCause::UnknownTable, "unknown_table"),
            (
                DeadLetterCause::WrongArity {
                    expected: 4,
                    got: 3,
                },
                "wrong_arity",
            ),
            (DeadLetterCause::SequenceGap { expected: 7 }, "sequence_gap"),
            (DeadLetterCause::DuplicateKey, "duplicate_key"),
            (DeadLetterCause::KeyChanged, "key_changed"),
        ] {
            assert_eq!(cause.label(), label);
            assert!(!cause.detail().is_empty());
        }
    }
}
