//! The adaptive micro-batcher: when to cut a maintenance tick.
//!
//! The batcher watches the admission queue on the **virtual tick
//! clock** and decides, each tick, whether the buffered events should
//! become a maintenance round now or keep accumulating. Three
//! triggers, in priority order:
//!
//! * **Count** — the queue reached `max_events`: enough work to
//!   amortize a round.
//! * **Age** — the oldest buffered event has waited `max_age_ticks`:
//!   freshness beats batching efficiency at low rates.
//! * **Staleness** — the *overload* trigger. When the queue depth is
//!   at or above the high watermark, the count and age triggers are
//!   suspended and batches **grow** until the oldest event is about to
//!   violate the staleness SLO (`max_staleness_ticks`). Bigger batches
//!   amortize per-round maintenance overhead, which is exactly what an
//!   overloaded system needs — and the SLO bounds how stale any view
//!   may go, so degradation is graceful, never unbounded.
//!
//! A fourth cause, **Flush**, is the explicit end-of-stream drain the
//! pipeline issues; the batcher never produces it on its own.
//!
//! The batcher tracks event ages itself (a FIFO of admission ticks
//! mirroring the queue), so the queue stays a plain byte-level
//! transport and the threaded producer path never needs a tick clock.

/// Batch-cut thresholds, all on the virtual tick clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Cut when the queue holds this many events (normal load).
    pub max_events: usize,
    /// Cut when the oldest buffered event is this many ticks old
    /// (normal load).
    pub max_age_ticks: u64,
    /// The staleness SLO: under overload, the *only* trigger — the
    /// oldest event is never allowed to exceed this age. Must be
    /// `>= max_age_ticks`.
    pub max_staleness_ticks: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_events: 64,
            max_age_ticks: 4,
            max_staleness_ticks: 16,
        }
    }
}

/// Why a batch was cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutCause {
    /// `max_events` buffered.
    Count,
    /// Oldest event reached `max_age_ticks`.
    Age,
    /// Overload: oldest event reached the staleness SLO.
    Staleness,
    /// Explicit end-of-stream drain.
    Flush,
}

impl CutCause {
    /// Stable lowercase label (trace and JSON).
    pub fn label(self) -> &'static str {
        match self {
            CutCause::Count => "count",
            CutCause::Age => "age",
            CutCause::Staleness => "staleness",
            CutCause::Flush => "flush",
        }
    }
}

/// The cut decider. Owns the admission-tick FIFO paralleling the
/// queue's contents.
#[derive(Debug, Clone)]
pub struct MicroBatcher {
    policy: BatchPolicy,
    /// Admission tick of every buffered event, queue order.
    admitted_ticks: std::collections::VecDeque<u64>,
}

impl MicroBatcher {
    /// A batcher with the given thresholds (`max_staleness_ticks` is
    /// clamped up to `max_age_ticks` so the SLO can never be the
    /// tighter bound).
    pub fn new(policy: BatchPolicy) -> Self {
        let policy = BatchPolicy {
            max_staleness_ticks: policy.max_staleness_ticks.max(policy.max_age_ticks),
            ..policy
        };
        MicroBatcher {
            policy,
            admitted_ticks: std::collections::VecDeque::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Record one successful enqueue at `now`.
    pub fn note_enqueued(&mut self, now: u64) {
        self.admitted_ticks.push_back(now);
    }

    /// Record that a cut consumed `n` events (the oldest `n`),
    /// returning their admission ticks — the cut's per-event latency
    /// samples (`now - tick`) for the firehose percentiles.
    pub fn note_cut(&mut self, n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n.min(self.admitted_ticks.len()));
        for _ in 0..n {
            match self.admitted_ticks.pop_front() {
                Some(t) => out.push(t),
                None => break,
            }
        }
        out
    }

    /// Forget everything (rollback restores via re-noting, or the
    /// pipeline rebuilds from scratch).
    pub fn clear(&mut self) {
        self.admitted_ticks.clear();
    }

    /// Age in ticks of the oldest buffered event, if any.
    pub fn oldest_age(&self, now: u64) -> Option<u64> {
        self.admitted_ticks.front().map(|t| now.saturating_sub(*t))
    }

    /// Should the pipeline cut now? `depth` and `high_watermark` come
    /// from the queue. Deterministic in its arguments.
    pub fn decide(&self, now: u64, depth: usize, high_watermark: usize) -> Option<CutCause> {
        if depth == 0 {
            return None;
        }
        let age = self.oldest_age(now).unwrap_or(0);
        if depth >= high_watermark {
            // Overload: suspend count/age, grow the batch up to the
            // staleness SLO.
            if age >= self.policy.max_staleness_ticks {
                return Some(CutCause::Staleness);
            }
            return None;
        }
        if depth >= self.policy.max_events {
            return Some(CutCause::Count);
        }
        if age >= self.policy.max_age_ticks {
            return Some(CutCause::Age);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batcher(max_events: usize, max_age: u64, slo: u64) -> MicroBatcher {
        MicroBatcher::new(BatchPolicy {
            max_events,
            max_age_ticks: max_age,
            max_staleness_ticks: slo,
        })
    }

    #[test]
    fn empty_queue_never_cuts() {
        let b = batcher(4, 2, 8);
        assert_eq!(b.decide(100, 0, 100), None);
    }

    #[test]
    fn count_cut_at_threshold() {
        let mut b = batcher(3, 10, 20);
        for _ in 0..3 {
            b.note_enqueued(0);
        }
        assert_eq!(b.decide(0, 2, 100), None);
        assert_eq!(b.decide(0, 3, 100), Some(CutCause::Count));
    }

    #[test]
    fn age_cut_when_oldest_event_waits() {
        let mut b = batcher(100, 4, 20);
        b.note_enqueued(10);
        assert_eq!(b.decide(13, 1, 100), None);
        assert_eq!(b.decide(14, 1, 100), Some(CutCause::Age));
    }

    #[test]
    fn overload_suspends_count_and_age_until_slo() {
        let mut b = batcher(4, 2, 10);
        for _ in 0..8 {
            b.note_enqueued(0);
        }
        // Depth 8 >= high watermark 6: count (8 >= 4) and age (9 >= 2)
        // would both fire, but overload stretches to the SLO.
        assert_eq!(b.decide(9, 8, 6), None);
        assert_eq!(b.decide(10, 8, 6), Some(CutCause::Staleness));
    }

    #[test]
    fn cut_pops_oldest_ages() {
        let mut b = batcher(100, 5, 20);
        b.note_enqueued(0);
        b.note_enqueued(3);
        assert_eq!(b.oldest_age(4), Some(4));
        b.note_cut(1);
        assert_eq!(b.oldest_age(4), Some(1));
        b.note_cut(1);
        assert_eq!(b.oldest_age(4), None);
    }

    #[test]
    fn slo_clamped_to_at_least_max_age() {
        let b = batcher(4, 8, 2);
        assert_eq!(b.policy().max_staleness_ticks, 8);
    }
}
