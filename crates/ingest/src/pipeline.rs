//! The admission pipeline: decode → validate → logged DML → tick.
//!
//! A cut is **atomic and exactly-once**: the pipeline drains the
//! queue, opens an atomic database round, and replays each event as
//! logged DML against the scheduler's database after validating it
//! against the *current* table state (so later events in the batch see
//! earlier ones). Events that fail validation dead-letter with a
//! specific cause and perturb nothing — all admission reads are
//! uncounted, so healthy events' access accounting is bit-identical
//! whether or not garbage rode along in the batch.
//!
//! When the batch commits, the modification log holds exactly the
//! admitted events' DML; [`MaintenanceScheduler::tick`] (via
//! [`tick_ingest`](MaintenanceScheduler::tick_ingest)) folds it into
//! the same exact `ChangeLog` a one-shot run would have produced —
//! the firehose's bit-identity guard checks precisely this.
//!
//! **Fault atomicity.** The three ingest failpoints fire *before* any
//! irreversible step: `Enqueue` before buffering (producer keeps the
//! event), `BatchCut` before draining (queue keeps the batch), and
//! `Decode` per event mid-batch. A mid-batch fault rolls the attempt
//! back completely — database round aborted, modification log
//! truncated, dead letters un-pushed, sequence baselines restored,
//! every drained event requeued at the front in order — leaving the
//! database at its pre-cut signature with the whole batch pending and
//! retryable. The CI sweep pins this at every site.

use crate::batcher::{BatchPolicy, CutCause, MicroBatcher};
use crate::dlq::{DeadLetter, DeadLetterCause, DeadLetterQueue};
use crate::event::{ChangeEvent, ChangeOp, RawEvent};
use crate::queue::{EventQueue, QueueConfig, SendOutcome};
use idivm_core::{FaultState, IngestTrace};
use idivm_reldb::{Database, TableChanges};
use idivm_sched::{MaintenanceScheduler, RoundSummary};
use idivm_types::{ColumnType, Error, Result, Row, Schema, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Queue + batcher configuration for one pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Admission queue sizing and overflow policy.
    pub queue: QueueConfig,
    /// Micro-batch cut thresholds.
    pub batch: BatchPolicy,
}

/// Lifetime counters across every cut.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestTotals {
    /// Events admitted (validated and applied as DML).
    pub admitted: u64,
    /// Events dead-lettered.
    pub dead_lettered: u64,
    /// Events shed by the queue.
    pub shed: u64,
    /// Batches cut.
    pub cuts: u64,
}

/// The durable image of one committed cut, captured between the batch's
/// `commit_round` and the scheduler tick that consumes it — exactly
/// what a write-ahead log must journal to replay the cut after a crash.
/// Capture is off by default ([`IngestPipeline::set_capture_commits`]).
#[derive(Debug, Clone)]
pub struct CommittedCut {
    /// The database's folded modification log at commit — the net DML
    /// this cut admitted (plus any direct DML logged before the cut),
    /// which the following tick distributes.
    pub net: HashMap<String, TableChanges>,
    /// Post-cut per-producer sequence baselines (the whole map — a
    /// replay restores it wholesale, keeping exactly-once across the
    /// restart).
    pub expected_seq: BTreeMap<u32, u64>,
    /// Dead letters this cut appended, in admission order.
    pub dlq_appended: Vec<DeadLetter>,
    /// Post-cut lifetime totals (shed read live at capture).
    pub totals: IngestTotals,
}

/// What one committed cut did.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// The ingest pseudo-phase record (also stamped on the round).
    pub trace: IngestTrace,
    /// The scheduler round the batch fed.
    pub summary: RoundSummary,
    /// Events drained from the queue for this batch (admitted +
    /// dead-lettered).
    pub batch_events: usize,
    /// Per-event queue→cut latency samples, in virtual ticks, batch
    /// order (empty when ages weren't tracked, e.g. threaded
    /// producers).
    pub latencies_ticks: Vec<u64>,
}

/// The CDC admission pipeline over one scheduler's database.
pub struct IngestPipeline {
    queue: EventQueue,
    batcher: MicroBatcher,
    dlq: DeadLetterQueue,
    faults: Arc<FaultState>,
    /// Next expected sequence number per producer; absent until the
    /// producer's first event fixes its baseline.
    expected_seq: BTreeMap<u32, u64>,
    totals: IngestTotals,
    /// Sheds already attributed to some earlier cut's trace.
    shed_attributed: u64,
    /// When true, every committed cut leaves a [`CommittedCut`] for
    /// [`IngestPipeline::take_committed`] (the durability layer's WAL
    /// hook).
    capture_commits: bool,
    /// The most recent committed cut's durable image, if unclaimed.
    committed: Option<CommittedCut>,
}

impl IngestPipeline {
    /// Build a pipeline; the shared [`FaultState`] carries any armed
    /// ingest failpoint.
    ///
    /// # Errors
    /// [`Error::Config`] for an invalid queue config.
    pub fn new(config: PipelineConfig, faults: Arc<FaultState>) -> Result<Self> {
        Ok(IngestPipeline {
            queue: EventQueue::new(config.queue, Arc::clone(&faults))?,
            batcher: MicroBatcher::new(config.batch),
            dlq: DeadLetterQueue::new(),
            faults,
            expected_seq: BTreeMap::new(),
            totals: IngestTotals::default(),
            shed_attributed: 0,
            capture_commits: false,
            committed: None,
        })
    }

    /// The admission queue (clone it for producer threads).
    pub fn queue(&self) -> &EventQueue {
        &self.queue
    }

    /// The dead-letter queue.
    pub fn dlq(&self) -> &DeadLetterQueue {
        &self.dlq
    }

    /// Lifetime counters (shed is read live from the queue, on top of
    /// any baseline restored from a checkpoint).
    pub fn totals(&self) -> IngestTotals {
        IngestTotals {
            shed: self.totals.shed + self.queue.stats().shed,
            ..self.totals
        }
    }

    /// Enable (or disable) durable-commit capture: when on, every
    /// committed cut records a [`CommittedCut`] claimable through
    /// [`IngestPipeline::take_committed`].
    pub fn set_capture_commits(&mut self, on: bool) {
        self.capture_commits = on;
    }

    /// Claim the most recent committed cut's durable image.
    pub fn take_committed(&mut self) -> Option<CommittedCut> {
        self.committed.take()
    }

    /// Per-producer next-expected sequence baselines.
    pub fn expected_seq(&self) -> &BTreeMap<u32, u64> {
        &self.expected_seq
    }

    /// Restore sequence baselines wholesale (checkpoint/WAL recovery) —
    /// a producer resending an already-durable event after the restart
    /// dead-letters as a regression instead of double-applying.
    pub fn restore_expected_seq(&mut self, expected_seq: BTreeMap<u32, u64>) {
        self.expected_seq = expected_seq;
    }

    /// Restore lifetime totals from a checkpoint. The restored `shed`
    /// becomes a baseline under the (fresh) queue's live counter.
    pub fn restore_totals(&mut self, totals: IngestTotals) {
        self.totals = totals;
    }

    /// Re-append checkpointed dead letters (recovery preserves the
    /// quarantine across the restart; admission order is kept).
    pub fn restore_dead_letters(&mut self, letters: Vec<DeadLetter>) {
        for letter in letters {
            self.dlq.push(letter);
        }
    }

    /// Offer one event on the virtual-tick clock (non-blocking). On
    /// [`SendOutcome::WouldBlock`] the caller keeps the event and
    /// retries a later tick — that *is* the backpressure.
    ///
    /// # Errors
    /// An armed `Enqueue` fault; the caller still owns the event.
    pub fn offer(&mut self, now: u64, ev: &RawEvent) -> Result<SendOutcome> {
        let outcome = self.queue.try_send(ev)?;
        if outcome == SendOutcome::Enqueued {
            self.batcher.note_enqueued(now);
        }
        Ok(outcome)
    }

    /// Account (for age tracking) an event that a *threaded* producer
    /// pushed through [`EventQueue::send`] directly.
    pub fn note_threaded_enqueue(&mut self, now: u64) {
        self.batcher.note_enqueued(now);
    }

    /// Consult the batcher; cut and tick if it says so.
    ///
    /// # Errors
    /// See [`IngestPipeline::cut`].
    pub fn poll(
        &mut self,
        now: u64,
        sched: &mut MaintenanceScheduler,
    ) -> Result<Option<IngestOutcome>> {
        match self.batcher.decide(
            now,
            self.queue.depth(),
            self.queue.config().high_watermark,
        ) {
            Some(cause) => self.cut(now, cause, sched).map(Some),
            None => Ok(None),
        }
    }

    /// End-of-stream drain: cut whatever is buffered with cause
    /// `flush`. `None` when the queue is already empty.
    ///
    /// # Errors
    /// See [`IngestPipeline::cut`].
    pub fn flush(
        &mut self,
        now: u64,
        sched: &mut MaintenanceScheduler,
    ) -> Result<Option<IngestOutcome>> {
        if self.queue.depth() == 0 {
            return Ok(None);
        }
        self.cut(now, CutCause::Flush, sched).map(Some)
    }

    /// Cut the buffered batch: admit every event as logged DML inside
    /// an atomic database round, then drive one scheduler tick with
    /// the ingest trace stamped on it.
    ///
    /// # Errors
    /// An armed `BatchCut`/`Decode` fault (the attempt is fully rolled
    /// back — see the module docs), or a scheduler-level catalog error
    /// from the tick.
    pub fn cut(
        &mut self,
        now: u64,
        cause: CutCause,
        sched: &mut MaintenanceScheduler,
    ) -> Result<IngestOutcome> {
        let depth_at_cut = self.queue.depth();
        self.faults.on_batch_cut(depth_at_cut)?;
        let events = self.queue.drain_all();
        let log_mark = sched.db().log().len();
        let dlq_mark = self.dlq.len();
        let seq_snapshot = self.expected_seq.clone();
        if !sched.db_mut().begin_round() {
            self.queue.requeue_front(events);
            return Err(Error::Internal(
                "ingest cut inside an open maintenance round".into(),
            ));
        }
        let mut admitted = 0u64;
        let mut dead = 0u64;
        let mut failed: Option<Error> = None;
        for raw in &events {
            if let Err(e) = self.faults.on_decode() {
                failed = Some(e);
                break;
            }
            match raw.decode() {
                Err(msg) => {
                    self.dlq.push(DeadLetter::from_wire(
                        DeadLetterCause::Decode(msg),
                        raw.wire.clone(),
                    ));
                    dead += 1;
                }
                Ok(ev) => match self.admit(sched.db_mut(), &ev) {
                    None => admitted += 1,
                    Some(cause) => {
                        self.dlq
                            .push(DeadLetter::from_event(&ev, cause, raw.wire.clone()));
                        dead += 1;
                    }
                },
            }
        }
        if let Some(e) = failed {
            // Full rollback: the batch never happened.
            let db = sched.db_mut();
            db.abort_round();
            db.truncate_log(log_mark);
            self.dlq.truncate(dlq_mark);
            self.expected_seq = seq_snapshot;
            self.queue.requeue_front(events);
            return Err(e);
        }
        sched.db_mut().commit_round();
        let admit_ticks = self.batcher.note_cut(events.len());
        let latencies_ticks: Vec<u64> =
            admit_ticks.iter().map(|t| now.saturating_sub(*t)).collect();
        let shed_now = self.queue.stats().shed;
        let shed_this_cut = shed_now - self.shed_attributed;
        self.shed_attributed = shed_now;
        self.totals.admitted += admitted;
        self.totals.dead_lettered += dead;
        self.totals.cuts += 1;
        let trace = IngestTrace {
            admitted,
            shed: shed_this_cut,
            dead_lettered: dead,
            cut_cause: cause.label(),
            queue_depth_at_cut: depth_at_cut as u64,
        };
        if self.capture_commits {
            // The batch is committed but the tick has not folded the
            // log yet: this folded net is exactly what the round will
            // distribute, so it is the WAL's redo image for the cut.
            self.committed = Some(CommittedCut {
                net: sched.db().fold_log(),
                expected_seq: self.expected_seq.clone(),
                dlq_appended: self.dlq.entries()[dlq_mark..].to_vec(),
                totals: self.totals(),
            });
        }
        let summary = sched.tick_ingest(trace.clone())?;
        Ok(IngestOutcome {
            trace,
            summary,
            batch_events: events.len(),
            latencies_ticks,
        })
    }

    /// Validate one decoded event against the current database state
    /// and, on success, apply it as logged DML. `None` = admitted;
    /// `Some(cause)` = dead-letter. All reads are uncounted.
    fn admit(&mut self, db: &mut Database, ev: &ChangeEvent) -> Option<DeadLetterCause> {
        // 1. Sequence discipline (transport-level, checked first so a
        //    malformed payload still consumes its sequence slot).
        match self.expected_seq.get(&ev.producer).copied() {
            None => {
                // First contact fixes the baseline at whatever the
                // producer starts with.
                self.expected_seq.insert(ev.producer, ev.seq + 1);
            }
            Some(expected) if ev.seq == expected => {
                self.expected_seq.insert(ev.producer, ev.seq + 1);
            }
            Some(expected) if ev.seq > expected => {
                // Gap: quarantine this event, resync just past it so
                // the stream keeps flowing.
                self.expected_seq.insert(ev.producer, ev.seq + 1);
                return Some(DeadLetterCause::SequenceGap { expected });
            }
            Some(expected) => {
                // Regression (replay/duplicate): baseline unchanged.
                return Some(DeadLetterCause::SequenceRegression { expected });
            }
        }
        // 2. Target table.
        let Ok(schema) = db.table(&ev.table).map(|t| t.schema().clone()) else {
            return Some(DeadLetterCause::UnknownTable);
        };
        // 3/4. Shape: arity and column types of every carried image.
        let images: Vec<&Row> = match &ev.op {
            ChangeOp::Insert { row } => vec![row],
            ChangeOp::Delete { pre } => vec![pre],
            ChangeOp::Update { pre, post } => vec![pre, post],
        };
        for row in images {
            if let Some(cause) = shape_check(row, &schema) {
                return Some(cause);
            }
        }
        // 5. State checks against current contents (uncounted reads),
        //    then DML.
        let stored = |db: &Database, key: &idivm_types::Key| -> Option<Row> {
            db.table(&ev.table)
                .ok()
                .and_then(|t| t.get_uncounted(key).cloned())
        };
        match &ev.op {
            ChangeOp::Insert { row } => {
                let key = row.key(schema.key());
                if stored(db, &key).is_some() {
                    return Some(DeadLetterCause::DuplicateKey);
                }
                if let Err(e) = db.insert(&ev.table, row.clone()) {
                    return Some(DeadLetterCause::Storage(e.to_string()));
                }
            }
            ChangeOp::Delete { pre } => {
                let key = pre.key(schema.key());
                match stored(db, &key) {
                    None => return Some(DeadLetterCause::MissingRow),
                    Some(cur) if cur != *pre => {
                        return Some(DeadLetterCause::StalePreImage { actual: cur })
                    }
                    Some(_) => {}
                }
                if let Err(e) = db.delete(&ev.table, &key) {
                    return Some(DeadLetterCause::Storage(e.to_string()));
                }
            }
            ChangeOp::Update { pre, post } => {
                let key = pre.key(schema.key());
                if post.key(schema.key()) != key {
                    return Some(DeadLetterCause::KeyChanged);
                }
                match stored(db, &key) {
                    None => return Some(DeadLetterCause::MissingRow),
                    Some(cur) if cur != *pre => {
                        return Some(DeadLetterCause::StalePreImage { actual: cur })
                    }
                    Some(_) => {}
                }
                let assignments: Vec<(usize, Value)> = pre
                    .0
                    .iter()
                    .zip(post.0.iter())
                    .enumerate()
                    .filter(|(_, (a, b))| a != b)
                    .map(|(i, (_, b))| (i, b.clone()))
                    .collect();
                // pre == post is a valid no-op: admitted, nothing
                // logged.
                if !assignments.is_empty() {
                    if let Err(e) = db.update(&ev.table, &key, &assignments) {
                        return Some(DeadLetterCause::Storage(e.to_string()));
                    }
                }
            }
        }
        None
    }
}

/// Arity + per-column type admissibility (NULL fits any column; a
/// non-NULL value must match the schema variant exactly).
fn shape_check(row: &Row, schema: &Schema) -> Option<DeadLetterCause> {
    if row.arity() != schema.arity() {
        return Some(DeadLetterCause::WrongArity {
            expected: schema.arity(),
            got: row.arity(),
        });
    }
    for (i, v) in row.0.iter().enumerate() {
        let ty = schema.columns()[i].ty;
        let ok = match v {
            Value::Null => true,
            Value::Bool(_) => ty == ColumnType::Bool,
            Value::Int(_) => ty == ColumnType::Int,
            Value::Float(_) => ty == ColumnType::Float,
            Value::Str(_) => ty == ColumnType::Str,
        };
        if !ok {
            return Some(DeadLetterCause::TypeMismatch {
                column: i,
                expected: type_label(ty),
            });
        }
    }
    None
}

fn type_label(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Bool => "bool",
        ColumnType::Int => "int",
        ColumnType::Float => "float",
        ColumnType::Str => "str",
    }
}
