//! Log ↔ event-stream conversion: turn logged DML into partitioned
//! producer streams, and replay logs directly (the one-shot baseline
//! the firehose's bit-identity guard compares against).
//!
//! **Partitioning contract (single writer per key).** Events are
//! routed to producers by a stable hash of `(table, key)`, so every
//! change to one tuple rides the same producer stream. Producer
//! streams are FIFO and the drivers merge them round-robin — which
//! preserves each stream's internal order — so the *per-key* order of
//! the original log survives end to end. Per-key order is exactly
//! what admission's pre-image checks and the fold's net-change
//! semantics need; cross-key interleaving is free to differ, and the
//! folded `ChangeLog` (hence the maintained views, hence the database
//! signature) still converges bit-identically to the one-shot run.

use crate::event::{ChangeEvent, ChangeOp, RawEvent};
use idivm_reldb::{Database, LogEntry};
use idivm_types::{Key, Result, Value};

/// FNV-1a over the table name and canonical key rendering — stable
/// across runs, processes, and thread counts.
fn route_hash(table: &str, key: &Key) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(table.as_bytes());
    eat(&[0]);
    eat(format!("{key:?}").as_bytes());
    h
}

/// Split logged DML into `producers` wire streams by stable key hash,
/// stamping per-producer monotone sequence numbers from 0. The
/// database supplies each table's key columns (inserts carry no key).
///
/// # Errors
/// A log entry naming a table the database doesn't have.
pub fn partition_log(
    db: &Database,
    entries: &[LogEntry],
    producers: u32,
) -> Result<Vec<Vec<RawEvent>>> {
    let producers = producers.max(1);
    let mut streams: Vec<Vec<RawEvent>> = vec![Vec::new(); producers as usize];
    let mut next_seq: Vec<u64> = vec![0; producers as usize];
    for entry in entries {
        let (table, key, op) = match entry {
            LogEntry::Insert { table, row } => {
                let key_cols = db.table(table)?.schema().key().to_vec();
                (table, row.key(&key_cols), ChangeOp::Insert { row: row.clone() })
            }
            LogEntry::Delete { table, key, pre } => {
                (table, key.clone(), ChangeOp::Delete { pre: pre.clone() })
            }
            LogEntry::Update {
                table, key, pre, post,
            } => (
                table,
                key.clone(),
                ChangeOp::Update {
                    pre: pre.clone(),
                    post: post.clone(),
                },
            ),
        };
        let p = (route_hash(table, &key) % u64::from(producers)) as usize;
        let ev = ChangeEvent {
            producer: p as u32,
            seq: next_seq[p],
            table: table.clone(),
            op,
        };
        next_seq[p] += 1;
        streams[p].push(RawEvent::encode(&ev));
    }
    Ok(streams)
}

/// Replay logged DML directly against a database — the one-shot
/// baseline run (no queue, no batching, no admission).
///
/// # Errors
/// Storage errors (unknown table, duplicate key…) — the log must be
/// replayable against this database's state.
pub fn apply_log(db: &mut Database, entries: &[LogEntry]) -> Result<()> {
    for entry in entries {
        match entry {
            LogEntry::Insert { table, row } => db.insert(table, row.clone())?,
            LogEntry::Delete { table, key, .. } => {
                db.delete(table, key)?;
            }
            LogEntry::Update {
                table, key, pre, post,
            } => {
                let assignments: Vec<(usize, Value)> = pre
                    .0
                    .iter()
                    .zip(post.0.iter())
                    .enumerate()
                    .filter(|(_, (a, b))| a != b)
                    .map(|(i, (_, b))| (i, b.clone()))
                    .collect();
                if !assignments.is_empty() {
                    db.update(table, key, &assignments)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_types::{row, ColumnType, Row, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "t",
            Schema::from_pairs(&[("id", ColumnType::Int), ("v", ColumnType::Int)], &["id"])
                .unwrap(),
        )
        .unwrap();
        db
    }

    fn ins(id: i64, v: i64) -> LogEntry {
        LogEntry::Insert {
            table: "t".into(),
            row: row![id, v],
        }
    }

    #[test]
    fn same_key_always_same_producer_with_monotone_seqs() {
        let db = db();
        let entries: Vec<LogEntry> = (0..40).map(|i| ins(i % 5, i)).collect();
        let streams = partition_log(&db, &entries, 4).unwrap();
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), 40);
        // Each stream's seqs are 0..n and each key lives on one stream.
        let mut key_home: std::collections::HashMap<String, usize> = Default::default();
        for (p, stream) in streams.iter().enumerate() {
            for (i, raw) in stream.iter().enumerate() {
                let ev = raw.decode().unwrap();
                assert_eq!(ev.seq, i as u64);
                let ChangeOp::Insert { row } = &ev.op else {
                    panic!("insert expected")
                };
                let key = format!("{:?}", row.0[0]);
                assert_eq!(*key_home.entry(key).or_insert(p), p);
            }
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let db = db();
        let entries: Vec<LogEntry> = (0..20).map(|i| ins(i, i * 10)).collect();
        let a = partition_log(&db, &entries, 3).unwrap();
        let b = partition_log(&db, &entries, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn apply_log_replays_all_dml() {
        let mut d = db();
        let entries = vec![
            ins(1, 10),
            ins(2, 20),
            LogEntry::Update {
                table: "t".into(),
                key: row![1].key(&[0]),
                pre: row![1, 10],
                post: row![1, 11],
            },
            LogEntry::Delete {
                table: "t".into(),
                key: row![2].key(&[0]),
                pre: row![2, 20],
            },
        ];
        apply_log(&mut d, &entries).unwrap();
        let t = d.table("t").unwrap();
        assert_eq!(t.get_uncounted(&row![1].key(&[0])), Some(&Row(vec![
            idivm_types::Value::Int(1),
            idivm_types::Value::Int(11)
        ])));
        assert_eq!(t.get_uncounted(&row![2].key(&[0])), None);
    }
}
