//! `idivm-ingest`: the streaming CDC front-end for the idIVM
//! maintenance stack.
//!
//! The paper's engines consume a folded `ChangeLog` per maintenance
//! round; everything upstream of that fold is this crate:
//!
//! * [`event`] — the typed change-event format (insert/delete/update
//!   with pre-images, per-producer monotone sequence numbers) and its
//!   lossless wire encoding.
//! * [`queue`] — the bounded MPSC admission queue with real
//!   backpressure: block or shed at capacity, watermark hysteresis,
//!   counted (never silent) sheds.
//! * [`batcher`] — the adaptive micro-batcher: cut a maintenance tick
//!   by count, by age, or — under overload — grow batches up to the
//!   staleness SLO.
//! * [`dlq`] — the deterministic dead-letter queue for events that
//!   fail admission, with cause + pre/post images (the ingest mirror
//!   of the supervisor's quarantine log).
//! * [`pipeline`] — decode → validate → logged DML admission, atomic
//!   per cut, feeding
//!   [`MaintenanceScheduler::tick_ingest`](idivm_sched::MaintenanceScheduler::tick_ingest);
//!   carries the ingest failpoints (`Enqueue`, `BatchCut`, `Decode`)
//!   with full rollback on fault.
//! * [`stream`] — log ↔ stream conversion: partition logged DML into
//!   producer streams by stable key hash (single writer per key), and
//!   the direct-replay one-shot baseline.
//! * [`driver`] — the deterministic virtual-tick firehose driver the
//!   bench and convergence tests share.
//!
//! Everything is deterministic on the virtual tick clock: same event
//! streams in, bit-identical database signature, DLQ bytes, and batch
//! boundaries out — independent of engine thread count.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batcher;
pub mod dlq;
pub mod driver;
pub mod event;
pub mod pipeline;
pub mod queue;
pub mod stream;

pub use batcher::{BatchPolicy, CutCause, MicroBatcher};
pub use dlq::{DeadLetter, DeadLetterCause, DeadLetterQueue};
pub use driver::{drive, DriveConfig, DriveStats};
pub use event::{ChangeEvent, ChangeOp, RawEvent};
pub use pipeline::{CommittedCut, IngestOutcome, IngestPipeline, IngestTotals, PipelineConfig};
pub use queue::{EventQueue, OverflowPolicy, QueueConfig, QueueStats, SendOutcome};
pub use stream::{apply_log, partition_log};
