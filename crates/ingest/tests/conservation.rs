//! Event-conservation stress test under real producer threads: every
//! produced event is accounted for exactly once —
//! `admitted + shed + dead_lettered == produced` — with blocking
//! producers (backpressure, nothing dropped) and shedding producers
//! (bounded queue under overload, drops counted) running concurrently
//! against live pipelines.

#![allow(clippy::unwrap_used)]

use idivm_core::{FaultPlan, FaultState};
use idivm_ingest::{
    BatchPolicy, ChangeEvent, ChangeOp, IngestPipeline, OverflowPolicy, PipelineConfig,
    QueueConfig, RawEvent, SendOutcome,
};
use idivm_reldb::Database;
use idivm_sched::{MaintenanceScheduler, SchedulerConfig};
use idivm_types::{row, ColumnType, Schema};
use std::sync::Arc;
use std::time::Duration;

const BLOCK_THREADS: u32 = 3;
const SHED_THREADS: u32 = 3;
const PER_THREAD: u64 = 50;

fn no_faults() -> Arc<FaultState> {
    Arc::new(FaultState::new(FaultPlan::disabled()))
}

fn scheduler() -> MaintenanceScheduler {
    let mut db = Database::new();
    db.create_table(
        "stream",
        Schema::from_pairs(&[("id", ColumnType::Int), ("tag", ColumnType::Str)], &["id"])
            .unwrap(),
    )
    .unwrap();
    MaintenanceScheduler::new(db, SchedulerConfig::default())
}

fn pipeline(capacity: usize, policy: OverflowPolicy) -> IngestPipeline {
    IngestPipeline::new(
        PipelineConfig {
            queue: QueueConfig::with_capacity(capacity, policy),
            batch: BatchPolicy {
                max_events: 8,
                max_age_ticks: 2,
                max_staleness_ticks: 8,
            },
        },
        no_faults(),
    )
    .unwrap()
}

/// A well-formed insert with a per-producer-unique key.
fn good(producer: u32, seq: u64) -> RawEvent {
    let id = i64::from(producer) * 1_000_000 + seq as i64;
    RawEvent::encode(&ChangeEvent {
        producer,
        seq,
        table: "stream".into(),
        op: ChangeOp::Insert {
            row: row![id, format!("p{producer}-{seq}")],
        },
    })
}

/// A wrong-arity insert — admission dead-letters it. Sent on its own
/// producer stream (id offset) so the quarantine never punches
/// sequence gaps into the healthy streams.
fn bad(producer: u32, seq: u64) -> RawEvent {
    RawEvent::encode(&ChangeEvent {
        producer: producer + 100,
        seq,
        table: "stream".into(),
        op: ChangeOp::Insert { row: row![1] },
    })
}

#[test]
fn produced_events_are_conserved_across_blocking_and_shedding_producers() {
    let mut sched = scheduler();
    let mut block_pipe = pipeline(8, OverflowPolicy::Block);
    let mut shed_pipe = pipeline(4, OverflowPolicy::Shed);

    // Blocking producers: every send eventually lands (backpressure,
    // never a drop); one event in ten is malformed.
    let block_handles: Vec<_> = (0..BLOCK_THREADS)
        .map(|p| {
            let queue = block_pipe.queue().clone();
            std::thread::spawn(move || {
                let mut produced = 0u64;
                let mut bad_seq = 0u64;
                for i in 0..PER_THREAD {
                    let ev = if i % 10 == 9 {
                        bad_seq += 1;
                        bad(p, bad_seq)
                    } else {
                        good(p, i + 1 - bad_seq)
                    };
                    let outcome = queue.send(&ev, Duration::from_secs(10)).unwrap();
                    assert_eq!(outcome, SendOutcome::Enqueued, "blocking queue never sheds");
                    produced += 1;
                }
                produced
            })
        })
        .collect();

    // Shedding producers: a hot burst against a tiny queue — overflow
    // is dropped and counted, never silently lost. (Shed-punched
    // sequence gaps then dead-letter downstream events; the
    // conservation equation absorbs both.)
    let shed_handles: Vec<_> = (10..10 + SHED_THREADS)
        .map(|p| {
            let queue = shed_pipe.queue().clone();
            std::thread::spawn(move || {
                let mut produced = 0u64;
                for i in 0..PER_THREAD {
                    let outcome = queue.send(&good(p, i + 1), Duration::from_secs(10)).unwrap();
                    assert!(
                        matches!(outcome, SendOutcome::Enqueued | SendOutcome::Shed),
                        "got {outcome:?}"
                    );
                    produced += 1;
                }
                produced
            })
        })
        .collect();
    // Let the shed burst race ahead of the consumer so the tiny queue
    // actually overflows.
    std::thread::sleep(Duration::from_millis(20));

    // Single consumer drains both pipelines into one scheduler.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut now = 0u64;
    loop {
        assert!(std::time::Instant::now() < deadline, "consumer starved");
        now += 1;
        let a = block_pipe.flush(now, &mut sched).unwrap();
        let b = shed_pipe.flush(now, &mut sched).unwrap();
        let producers_done = block_handles.iter().all(std::thread::JoinHandle::is_finished)
            && shed_handles.iter().all(std::thread::JoinHandle::is_finished);
        let drained = block_pipe.queue().depth() == 0 && shed_pipe.queue().depth() == 0;
        if producers_done && drained && a.is_none() && b.is_none() {
            break;
        }
        if a.is_none() && b.is_none() {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let produced_block: u64 = block_handles.into_iter().map(|h| h.join().unwrap()).sum();
    let produced_shed: u64 = shed_handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(produced_block, u64::from(BLOCK_THREADS) * PER_THREAD);
    assert_eq!(produced_shed, u64::from(SHED_THREADS) * PER_THREAD);

    // Conservation, per pipeline and combined.
    let bt = block_pipe.totals();
    assert_eq!(bt.shed, 0, "a blocking queue never sheds");
    assert_eq!(
        bt.admitted + bt.dead_lettered,
        produced_block,
        "blocking pipeline lost or duplicated events: {bt:?}"
    );
    assert!(bt.dead_lettered > 0, "the malformed events must quarantine");

    let st = shed_pipe.totals();
    assert_eq!(
        st.admitted + st.shed + st.dead_lettered,
        produced_shed,
        "shedding pipeline lost or duplicated events: {st:?}"
    );
    assert!(st.shed > 0, "the burst against a 4-slot queue must shed");

    let total = produced_block + produced_shed;
    assert_eq!(
        bt.admitted + st.admitted + bt.shed + st.shed + bt.dead_lettered + st.dead_lettered,
        total,
        "global conservation violated"
    );

    // The queue-level ledger agrees with the producer-side counts.
    let bq = block_pipe.queue().stats();
    assert_eq!(bq.enqueued, produced_block);
    assert!(bq.max_depth <= 8, "bounded queue overflowed: {}", bq.max_depth);
    let sq = shed_pipe.queue().stats();
    assert_eq!(sq.enqueued + sq.shed, produced_shed);
    assert!(sq.max_depth <= 4, "bounded queue overflowed: {}", sq.max_depth);

    // Every admitted insert is present exactly once.
    assert_eq!(
        sched.db().table("stream").unwrap().len() as u64,
        bt.admitted + st.admitted,
        "admitted rows must land exactly once"
    );
}
