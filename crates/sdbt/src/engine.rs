//! The SDBT engine: materialized partial maps + trigger-style delta
//! application.

use crate::partial::Partial;
use idivm_algebra::aggregate::{aggregate_rows, ExtremumDelta, ExtremumOutcome};
use idivm_algebra::{ensure_ids, AggFunc, AggSpec, Plan};
use idivm_core::access::{self, AccessCtx, PathId};
use idivm_core::config::{EngineConfig, EngineKnobs};
use idivm_core::diff::State;
use idivm_core::engine::{ensure_probe_indexes, RecoveryPolicy};
use idivm_core::faults::FaultState;
use idivm_core::trace::{OpTrace, RoundTrace, TracePhase};
use idivm_core::MaintenanceReport;
use idivm_exec::{execute, materialize_view, refresh_view, view_schema};
use idivm_reldb::{Database, NetChange, TableChanges};
use idivm_tuple::TupleIvm;
use idivm_types::{Column, ColumnType, Error, Key, Result, Row, Schema, Value};
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// Which change pattern the engine is configured for (paper §7.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdbtVariant {
    /// Only the named table ever changes; the maps are static.
    Fixed(String),
    /// Any table may change; every map is maintained each round.
    Streams,
}

/// The root shape of the maintained view.
enum RootShape {
    /// Plain SPJ view: composed rows *are* view rows.
    Spj,
    /// Root aggregation with DBToaster-style multiplicity tracking: the
    /// stored view carries a hidden `__count` column and groups vanish
    /// when it reaches zero.
    Aggregate { keys: Vec<usize>, aggs: Vec<AggSpec> },
}

/// A Simulated-DBToaster-maintained view.
pub struct Sdbt {
    view_name: String,
    view_plan: Plan,
    shape: RootShape,
    variant: SdbtVariant,
    partials: Vec<PartialState>,
    knobs: EngineKnobs,
}

impl EngineConfig for Sdbt {
    fn knobs(&self) -> &EngineKnobs {
        &self.knobs
    }
    fn knobs_mut(&mut self) -> &mut EngineKnobs {
        &mut self.knobs
    }
}

struct PartialState {
    def: Partial,
    /// Per probe step: materialized map table name + maintainer
    /// (Streams only).
    maps: Vec<MapState>,
}

struct MapState {
    name: String,
    maintainer: Option<TupleIvm>,
}

impl Sdbt {
    /// Register and materialize the view and its partial maps.
    ///
    /// For aggregate roots SUM/COUNT/MIN/MAX are supported: SUM/COUNT
    /// through the multiplicity-map model DBToaster uses, MIN/MAX
    /// through the dirty-group rescan fallback (AVG is expressed as
    /// SUM/COUNT upstream). Plans containing LEFT OUTER JOIN are
    /// rejected — the probe chains compose inner joins only.
    ///
    /// # Errors
    /// Unsupported plans, name collisions, unknown tables.
    pub fn setup(
        db: &mut Database,
        view_name: &str,
        plan: Plan,
        partials: Vec<Partial>,
        variant: SdbtVariant,
    ) -> Result<Self> {
        let plan = ensure_ids(plan)?;
        plan.validate()?;
        if contains_left_outer_join(&plan) {
            // The probe chains compose *inner* joins only: a partial map
            // holds matching rows, and an empty probe result drops the
            // chain — there is no place to emit a NULL-padded row.
            // Rejecting at setup is the contract: never a silently wrong
            // view.
            return Err(Error::Unsupported(
                "SDBT probe chains compose inner joins; LEFT OUTER JOIN is \
                 not expressible in the partial-map model"
                    .into(),
            ));
        }
        let shape = match &plan {
            Plan::GroupBy { keys, aggs, .. } => {
                if aggs.iter().any(|a| a.func == AggFunc::Avg) {
                    return Err(Error::Unsupported(
                        "SDBT aggregates must be SUM/COUNT/MIN/MAX (DBToaster \
                         expresses AVG as SUM/COUNT upstream)"
                            .into(),
                    ));
                }
                RootShape::Aggregate {
                    keys: keys.clone(),
                    aggs: aggs.clone(),
                }
            }
            _ => RootShape::Spj,
        };
        ensure_probe_indexes(db, &plan)?;
        // Materialize the view (aggregates get the hidden multiplicity
        // column).
        match &shape {
            RootShape::Spj => materialize_view(db, view_name, &plan)?,
            RootShape::Aggregate { keys, .. } => {
                let base_schema = view_schema(db, &plan)?;
                let mut cols: Vec<Column> = base_schema.columns().to_vec();
                cols.push(Column::new("__count", ColumnType::Int));
                let key_names: Vec<&str> = base_schema.key_names().to_vec();
                let schema = Schema::new(cols, &key_names)?;
                let rows = execute(db, &plan)?;
                let counts = group_counts(db, &plan)?;
                db.create_table(view_name, schema)?;
                let t = db.table_mut(view_name)?;
                for mut r in rows {
                    let gk = r.key(&(0..keys.len()).collect::<Vec<_>>());
                    let n = counts.get(&gk).copied().unwrap_or(0);
                    r.0.push(Value::Int(n));
                    t.load(r)?;
                }
            }
        }
        // Materialize the maps of every partial.
        let mut states = Vec::new();
        for (pi, def) in partials.into_iter().enumerate() {
            if let SdbtVariant::Fixed(t) = &variant {
                if &def.table != t {
                    return Err(Error::Unsupported(format!(
                        "SDBT-fixed({t}) takes only the partial for `{t}`, \
                         got one for `{}`",
                        def.table
                    )));
                }
            }
            let mut maps = Vec::new();
            for (si, step) in def.steps.iter().enumerate() {
                let mplan = ensure_ids(step.plan.clone())?;
                let name = format!("{view_name}#m{pi}_{si}_{}", def.table);
                let maintainer = match &variant {
                    SdbtVariant::Streams => Some(TupleIvm::setup(db, &name, mplan)?),
                    SdbtVariant::Fixed(_) => {
                        materialize_view(db, &name, &mplan)?;
                        None
                    }
                };
                db.table_mut(&name)?
                    .create_index_positions(step.join.iter().map(|&(_, m)| m).collect());
                maps.push(MapState { name, maintainer });
            }
            states.push(PartialState { def, maps });
        }
        Ok(Sdbt {
            view_name: view_name.to_string(),
            view_plan: plan,
            shape,
            variant,
            partials: states,
            knobs: EngineKnobs::default(),
        })
    }

    /// The maintained view's name.
    pub fn view_name(&self) -> &str {
        &self.view_name
    }

    /// The (ID-extended) view plan.
    pub fn plan(&self) -> &Plan {
        &self.view_plan
    }

    /// The view contents with the hidden multiplicity column projected
    /// away (for comparisons against the other engines / the oracle).
    ///
    /// # Errors
    /// Unknown view.
    pub fn visible_rows(&self, db: &Database) -> Result<Vec<Row>> {
        let rows = db.table(&self.view_name)?.rows_uncounted();
        Ok(match self.shape {
            RootShape::Spj => rows,
            RootShape::Aggregate { .. } => rows
                .into_iter()
                .map(|mut r| {
                    r.0.pop();
                    r
                })
                .collect(),
        })
    }

    /// Run one maintenance round.
    ///
    /// The round is **atomic**: on any `Err` the view, every map, and
    /// all indexes are rolled back to their exact pre-round state
    /// (including the nested map-maintenance rounds of the Streams
    /// variant) and the modification log is preserved. With
    /// [`RecoveryPolicy::RecomputeOnError`] the error is repaired
    /// in-place and reported instead of returned.
    ///
    /// # Errors
    /// `Unsupported` when a Fixed engine sees changes on other tables;
    /// propagation failures or injected faults otherwise.
    pub fn maintain(&self, db: &mut Database) -> Result<MaintenanceReport> {
        let fold_started = Instant::now();
        let net = db.fold_log();
        let fold = fold_started.elapsed();
        let mut report = self.maintain_with_changes(db, &net)?;
        db.clear_log();
        if let Some(trace) = report.trace.as_mut() {
            trace.timings.fold = fold;
        }
        Ok(report)
    }

    /// Like [`Sdbt::maintain`], but over an externally folded change
    /// set. The modification log is untouched (the caller owns it);
    /// atomicity is as in [`Sdbt::maintain`].
    ///
    /// # Errors
    /// As in [`Sdbt::maintain`].
    pub fn maintain_with_changes(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport> {
        let owner = db.begin_round();
        match self.round_body(db, net) {
            Ok(report) => {
                if owner {
                    db.commit_round();
                } else {
                    db.end_nested_round();
                }
                Ok(report)
            }
            Err(e) => {
                if owner {
                    db.abort_round();
                    if self.knobs.recovery == RecoveryPolicy::RecomputeOnError {
                        return self.recover(db, &e);
                    }
                } else {
                    db.end_nested_round();
                }
                Err(e)
            }
        }
    }

    /// Repair the view and every maintained map by full recompute after
    /// a rollback. The aggregate shape recomputes its hidden `__count`
    /// multiplicity column alongside the visible attributes.
    fn recover(&self, db: &mut Database, cause: &Error) -> Result<MaintenanceReport> {
        let started = Instant::now();
        let before = db.stats().snapshot();
        // Streams maps are maintained incrementally, so a failed round
        // leaves them behind the base tables; refresh them from their
        // plans. Fixed maps are static by construction — nothing to do.
        for p in &self.partials {
            for m in &p.maps {
                if let Some(t) = &m.maintainer {
                    refresh_view(db, &m.name, t.plan())?;
                }
            }
        }
        match &self.shape {
            RootShape::Spj => refresh_view(db, &self.view_name, &self.view_plan)?,
            RootShape::Aggregate { keys, .. } => {
                // `refresh_view` recomputes the plan's schema, which
                // lacks the hidden `__count` column — redo the setup
                // loading path instead.
                let rows = execute(db, &self.view_plan)?;
                let counts = group_counts(db, &self.view_plan)?;
                let key_positions: Vec<usize> = (0..keys.len()).collect();
                let t = db.table_mut(&self.view_name)?;
                t.clear();
                for mut r in rows {
                    let gk = r.key(&key_positions);
                    let n = counts.get(&gk).copied().unwrap_or(0);
                    r.0.push(Value::Int(n));
                    t.load(r)?;
                }
            }
        }
        let recovery = db.stats().snapshot().since(&before);
        let mut report = MaintenanceReport {
            recovered: true,
            recovery,
            recovery_cause: Some(cause.to_string()),
            ..MaintenanceReport::default()
        };
        if self.knobs.trace.enabled {
            let mut trace = RoundTrace::default();
            trace.operators.push(OpTrace {
                path: PathId::new(),
                op: format!("recompute `{}`", self.view_name),
                phase: TracePhase::Recovery,
                diffs_in: 0,
                diffs_out: 0,
                dummies: 0,
                accesses: recovery,
            });
            report.trace = Some(trace);
        }
        report.wall = started.elapsed();
        Ok(report)
    }

    /// The incremental round itself (no commit/abort handling).
    fn round_body(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport> {
        let started = Instant::now();
        let faults = FaultState::with_budget(self.knobs.faults, self.knobs.budget);
        // Content-dependent failpoint: a poison key in the pending
        // batch fails the round before any propagation.
        faults.on_batch(net)?;
        let round0 = db.stats().snapshot();
        let mut report = MaintenanceReport::default();
        if self.knobs.trace.enabled {
            report.trace = Some(RoundTrace::default());
        }
        if net.is_empty() {
            report.wall = started.elapsed();
            return Ok(report);
        }
        if let SdbtVariant::Fixed(t) = &self.variant {
            if net.keys().any(|k| k != t) {
                return Err(Error::Unsupported(format!(
                    "SDBT-fixed({t}) received changes on other tables"
                )));
            }
        }
        report.base_diff_tuples = net.values().map(TableChanges::len).sum();

        // Phase 2 first: compose deltas against the *pre-round* maps, so
        // map maintenance (phase 1, Streams) cannot double-apply other
        // tables' changes. In the paper's experiments only one table
        // changes per round, making the order immaterial for results —
        // but not for cost: Streams still pays the map maintenance.
        let propagate_started = Instant::now();
        let before = db.stats().snapshot();
        let mut composed = ComposedDiffs::default();
        for p in &self.partials {
            let Some(changes) = net.get(&p.def.table) else {
                continue;
            };
            faults.on_operator("compose")?;
            self.compose_table(db, p, changes, &mut composed)?;
        }
        report.diff_compute = db.stats().snapshot().since(&before);
        report.view_diff_tuples = composed.len();
        if faults.wants_access() {
            faults.on_access(db.stats().snapshot().since(&round0).total())?;
        }

        // Phase 1 (Streams): maintain every map — the overhead that
        // makes SDBT-streams slow (Figure 12, column D).
        let before = db.stats().snapshot();
        for p in &self.partials {
            for m in &p.maps {
                if let Some(t) = &m.maintainer {
                    faults.on_operator("map_maintain")?;
                    t.maintain_with_changes(db, net)?;
                    // Checkpoint after each map's maintenance, so access
                    // faults and round budgets observe map-maintenance
                    // accesses as they accrue — not just at the phase
                    // boundary.
                    if faults.wants_access() {
                        faults.on_access(db.stats().snapshot().since(&round0).total())?;
                    }
                }
            }
        }
        report.cache_update = db.stats().snapshot().since(&before);
        let propagate_done = propagate_started.elapsed();
        if faults.wants_access() {
            faults.on_access(db.stats().snapshot().since(&round0).total())?;
        }

        // Phase 3: apply to the view.
        faults.on_apply(&self.view_name)?;
        let apply_started = Instant::now();
        let before = db.stats().snapshot();
        match &self.shape {
            RootShape::Spj => {
                let d = idivm_tuple::TDiffs {
                    inserts: composed.inserts,
                    deletes: composed.deletes,
                    updates: composed.updates,
                };
                let out = idivm_tuple::tdiff::apply(db.table_mut(&self.view_name)?, &d)?;
                report.view_outcome.inserted = out.inserted;
                report.view_outcome.deleted = out.deleted;
                report.view_outcome.updated = out.updated;
                report.view_outcome.dummies = out.dummies;
            }
            RootShape::Aggregate { keys, aggs } => {
                let (keys, aggs) = (keys.clone(), aggs.clone());
                self.apply_aggregate(db, &keys, &aggs, composed, &faults, &mut report)?;
            }
        }
        report.view_update = db.stats().snapshot().since(&before);
        if faults.wants_access() {
            faults.on_access(db.stats().snapshot().since(&round0).total())?;
        }
        // SDBT has no operator tree to attribute to; emit one pseudo
        // entry per phase (delta composition, map maintenance, view
        // apply) so its rounds carry the same trace schema.
        if report.trace.is_some() {
            let view_diff_tuples = report.view_diff_tuples as u64;
            let base_diff_tuples = report.base_diff_tuples as u64;
            let (diff_compute, cache_update, view_update) =
                (report.diff_compute, report.cache_update, report.view_update);
            let view_dummies = report.view_outcome.dummies;
            if let Some(trace) = report.trace.as_mut() {
                trace.operators.push(OpTrace {
                    path: vec![],
                    op: "compose".to_string(),
                    phase: TracePhase::Propagate,
                    diffs_in: base_diff_tuples,
                    diffs_out: view_diff_tuples,
                    dummies: 0,
                    accesses: diff_compute,
                });
                trace.operators.push(OpTrace {
                    path: vec![],
                    op: "map_maintain".to_string(),
                    phase: TracePhase::CacheApply,
                    diffs_in: base_diff_tuples,
                    diffs_out: 0,
                    dummies: 0,
                    accesses: cache_update,
                });
                trace.operators.push(OpTrace {
                    path: vec![],
                    op: "view_apply".to_string(),
                    phase: TracePhase::ViewApply,
                    diffs_in: view_diff_tuples,
                    diffs_out: 0,
                    dummies: view_dummies,
                    accesses: view_update,
                });
                trace.timings.propagate = propagate_done;
                trace.timings.apply = apply_started.elapsed();
            }
        }
        report.wall = started.elapsed();
        Ok(report)
    }

    /// Run the probe chain for one base row, accumulating matches.
    fn chain(&self, db: &Database, p: &PartialState, start: &Row) -> Result<Vec<Row>> {
        let mut acc = vec![start.clone()];
        for (step, map) in p.def.steps.iter().zip(&p.maps) {
            let table = db.table(&map.name)?;
            let probe_cols: Vec<usize> = step.join.iter().map(|&(_, m)| m).collect();
            let mut next = Vec::new();
            for row in &acc {
                let vals: Vec<Value> =
                    step.join.iter().map(|&(a, _)| row[a].clone()).collect();
                if vals.iter().any(Value::is_null) {
                    continue;
                }
                for m in table.lookup(&probe_cols, &Key(vals)) {
                    next.push(row.concat(&m));
                }
            }
            acc = next;
        }
        Ok(acc)
    }

    /// Compose per-table changes through the probe chain.
    fn compose_table(
        &self,
        db: &Database,
        p: &PartialState,
        changes: &TableChanges,
        out: &mut ComposedDiffs,
    ) -> Result<()> {
        let arity = changes
            .values()
            .next()
            .map(|c| match c {
                NetChange::Inserted { post } => post.arity(),
                NetChange::Deleted { pre } => pre.arity(),
                NetChange::Updated { pre, .. } => pre.arity(),
            })
            .unwrap_or(0);
        let sensitive = p.def.sensitive_table_cols(arity);
        for c in changes.values() {
            match c {
                NetChange::Inserted { post } => {
                    for acc in self.chain(db, p, post)? {
                        let row = p.def.compose_row(&acc);
                        if p.def.passes(&row)? {
                            out.inserts.push(row);
                        }
                    }
                }
                NetChange::Deleted { pre } => {
                    for acc in self.chain(db, p, pre)? {
                        let row = p.def.compose_row(&acc);
                        if p.def.passes(&row)? {
                            out.deletes.push(row);
                        }
                    }
                }
                NetChange::Updated { pre, post } => {
                    let reshaped = sensitive.iter().any(|&c| pre[c] != post[c]);
                    if reshaped {
                        for acc in self.chain(db, p, pre)? {
                            let row = p.def.compose_row(&acc);
                            if p.def.passes(&row)? {
                                out.deletes.push(row);
                            }
                        }
                        for acc in self.chain(db, p, post)? {
                            let row = p.def.compose_row(&acc);
                            if p.def.passes(&row)? {
                                out.inserts.push(row);
                            }
                        }
                    } else {
                        // One chain walk reconstructs both states: the
                        // accumulated non-table part is identical.
                        for acc_post in self.chain(db, p, post)? {
                            let mut acc_pre = acc_post.clone();
                            acc_pre.0[..arity].clone_from_slice(&pre.0);
                            let rp = p.def.compose_row(&acc_pre);
                            let rq = p.def.compose_row(&acc_post);
                            if p.def.passes(&rq)?
                                && rp != rq {
                                    out.updates.push((rp, rq));
                                }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn apply_aggregate(
        &self,
        db: &mut Database,
        keys: &[usize],
        aggs: &[AggSpec],
        composed: ComposedDiffs,
        faults: &FaultState,
        report: &mut MaintenanceReport,
    ) -> Result<()> {
        let Plan::GroupBy { input, .. } = &self.view_plan else {
            return Err(Error::Internal(
                "apply_aggregate on a non-aggregate root".into(),
            ));
        };
        // Dedupe composed contributions by the view-input's ID (several
        // partials can assert the same input row in multi-table rounds).
        let input_ids = idivm_algebra::infer_ids(input)?;
        let mut seen: BTreeSet<(u8, Key)> = BTreeSet::new();
        let composed = ComposedDiffs {
            inserts: composed
                .inserts
                .into_iter()
                .filter(|r| seen.insert((b'+', r.key(&input_ids))))
                .collect(),
            deletes: composed
                .deletes
                .into_iter()
                .filter(|r| seen.insert((b'-', r.key(&input_ids))))
                .collect(),
            updates: composed
                .updates
                .into_iter()
                .filter(|(_, q)| seen.insert((b'u', q.key(&input_ids))))
                .collect(),
        };
        // Fold into per-group deltas with multiplicities (DBToaster's
        // map model: groups live while their multiplicity is positive).
        // SUM/COUNT slots sum numerically; MIN/MAX slots track inserted
        // and removed candidates in [`ExtremumDelta`] form.
        struct ExtG {
            nums: Vec<Value>,
            exts: Vec<ExtremumDelta>,
            mult: i64,
        }
        let n_aggs = aggs.len();
        let mut deltas: HashMap<Key, ExtG> = HashMap::new();
        let fresh = move || ExtG {
            nums: vec![Value::Int(0); n_aggs],
            exts: vec![ExtremumDelta::default(); n_aggs],
            mult: 0,
        };
        // SUM/COUNT contribution of one row (never called for MIN/MAX).
        let num_eval = |a: &AggSpec, r: &Row| -> Result<Value> {
            let v = a.arg.eval(r)?;
            Ok(match a.func {
                AggFunc::Sum => {
                    if v.is_null() {
                        Value::Int(0)
                    } else {
                        v
                    }
                }
                _ => Value::Int(i64::from(!v.is_null())),
            })
        };
        for r in &composed.inserts {
            let g = deltas.entry(r.key(keys)).or_insert_with(fresh);
            for (i, a) in aggs.iter().enumerate() {
                if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                    g.exts[i].insert(a.func, &a.arg.eval(r)?);
                } else {
                    g.nums[i] = g.nums[i].add(&num_eval(a, r)?);
                }
            }
            g.mult += 1;
        }
        for r in &composed.deletes {
            let g = deltas.entry(r.key(keys)).or_insert_with(fresh);
            for (i, a) in aggs.iter().enumerate() {
                if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                    g.exts[i].remove(a.func, &a.arg.eval(r)?);
                } else {
                    g.nums[i] = g.nums[i].add(&num_eval(a, r)?.neg());
                }
            }
            g.mult -= 1;
        }
        for (p, q) in &composed.updates {
            let (kp, kq) = (p.key(keys), q.key(keys));
            if kp == kq {
                let g = deltas.entry(kp).or_insert_with(fresh);
                for (i, a) in aggs.iter().enumerate() {
                    if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                        g.exts[i].remove(a.func, &a.arg.eval(p)?);
                        g.exts[i].insert(a.func, &a.arg.eval(q)?);
                    } else {
                        g.nums[i] = g.nums[i].add(&num_eval(a, q)?.sub(&num_eval(a, p)?));
                    }
                }
            } else {
                // The update moved the row across groups: a departure
                // from the pre-group and an arrival in the post-group,
                // multiplicities included.
                let g = deltas.entry(kp).or_insert_with(fresh);
                for (i, a) in aggs.iter().enumerate() {
                    if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                        g.exts[i].remove(a.func, &a.arg.eval(p)?);
                    } else {
                        g.nums[i] = g.nums[i].add(&num_eval(a, p)?.neg());
                    }
                }
                g.mult -= 1;
                let g = deltas.entry(kq).or_insert_with(fresh);
                for (i, a) in aggs.iter().enumerate() {
                    if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                        g.exts[i].insert(a.func, &a.arg.eval(q)?);
                    } else {
                        g.nums[i] = g.nums[i].add(&num_eval(a, q)?);
                    }
                }
                g.mult += 1;
            }
        }
        // Plan the per-group actions against the pre-apply view first
        // (immutable borrow: dirty groups rescan their members through
        // the counted access paths over the post-state bases), then
        // apply. Groups convert in sorted key order so the mid-rescan
        // failpoint and rescan counter are deterministic.
        enum Act {
            Delete(Key),
            Patch(Key, Vec<(usize, Value)>),
            Insert(Row),
        }
        let mut entries: Vec<(Key, ExtG)> = deltas.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let key_cols: Vec<usize> = (0..keys.len()).collect();
        let count_col = keys.len() + aggs.len();
        let empty_caches: HashMap<PathId, String> = HashMap::new();
        let empty_changes: HashMap<String, TableChanges> = HashMap::new();
        let ipath: PathId = vec![0];
        let mut acts: Vec<Act> = Vec::new();
        {
            let access = AccessCtx {
                db,
                base_changes: &empty_changes,
                caches: &empty_caches,
                cache_changes: &empty_changes,
            };
            let view = db.table(&self.view_name)?;
            for (gk, g) in entries {
                let old = view.lookup(&key_cols, &gk);
                match old.first() {
                    Some(old_row) => {
                        let new_count = old_row[count_col].as_int().unwrap_or(0) + g.mult;
                        let pk = old_row.key(view.schema().key());
                        if new_count <= 0 {
                            // Multiplicity hit zero: the group is gone,
                            // no extremum to resolve.
                            acts.push(Act::Delete(pk));
                            continue;
                        }
                        let mut dirty = false;
                        let mut vals: Vec<Value> = Vec::with_capacity(aggs.len());
                        for (i, a) in aggs.iter().enumerate() {
                            if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                                match g.exts[i].resolve(a.func, &old_row[keys.len() + i]) {
                                    ExtremumOutcome::Clean(v) => vals.push(v),
                                    ExtremumOutcome::Rescan => {
                                        dirty = true;
                                        vals.push(Value::Null); // overwritten below
                                    }
                                }
                            } else {
                                vals.push(old_row[keys.len() + i].add(&g.nums[i]));
                            }
                        }
                        if dirty {
                            // The failpoint fires before the member
                            // lookup: an aborted round rolls back with
                            // the rescan unperformed.
                            faults.on_operator("rescan")?;
                            report.rescans += 1;
                            let members = access::lookup(
                                &access,
                                input,
                                &ipath,
                                State::Post,
                                keys,
                                &gk,
                            )?;
                            vals = aggs
                                .iter()
                                .map(|a| aggregate_rows(a, &members))
                                .collect::<Result<_>>()?;
                        }
                        let mut assignments: Vec<(usize, Value)> = vals
                            .into_iter()
                            .enumerate()
                            .filter(|(i, v)| *v != old_row[keys.len() + *i])
                            .map(|(i, v)| (keys.len() + i, v))
                            .collect();
                        if g.mult != 0 {
                            assignments.push((count_col, Value::Int(new_count)));
                        }
                        if !assignments.is_empty() {
                            acts.push(Act::Patch(pk, assignments));
                        }
                    }
                    None => {
                        if g.mult > 0 {
                            let mut r = gk.into_row();
                            for (i, a) in aggs.iter().enumerate() {
                                r.0.push(if matches!(a.func, AggFunc::Min | AggFunc::Max) {
                                    g.exts[i].created()
                                } else {
                                    g.nums[i].clone()
                                });
                            }
                            r.0.push(Value::Int(g.mult));
                            acts.push(Act::Insert(r));
                        }
                    }
                }
            }
        }
        let view = db.table_mut(&self.view_name)?;
        for act in acts {
            match act {
                Act::Delete(pk) => {
                    view.delete_located(&pk);
                    report.view_outcome.deleted += 1;
                }
                Act::Patch(pk, assignments) => {
                    view.patch(&pk, &assignments);
                    report.view_outcome.updated += 1;
                }
                Act::Insert(r) => {
                    view.insert_if_absent(r)?;
                    report.view_outcome.inserted += 1;
                }
            }
        }
        Ok(())
    }
}

impl idivm_core::SupervisedEngine for Sdbt {
    fn label(&self) -> &'static str {
        "sdbt"
    }

    fn maintain_with_changes(
        &self,
        db: &mut Database,
        net: &HashMap<String, TableChanges>,
    ) -> Result<MaintenanceReport> {
        Sdbt::maintain_with_changes(self, db, net)
    }
}

#[derive(Default)]
struct ComposedDiffs {
    inserts: Vec<Row>,
    deletes: Vec<Row>,
    updates: Vec<(Row, Row)>,
}

impl ComposedDiffs {
    fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len() + self.updates.len()
    }
}

/// Does the plan contain a `LeftOuterJoin` anywhere? SDBT rejects such
/// plans at setup (see [`Sdbt::setup`]).
fn contains_left_outer_join(node: &Plan) -> bool {
    matches!(node, Plan::LeftOuterJoin { .. })
        || node.children().into_iter().any(contains_left_outer_join)
}

/// Per-group input-row multiplicities of an aggregate plan.
fn group_counts(db: &Database, plan: &Plan) -> Result<HashMap<Key, i64>> {
    let Plan::GroupBy { input, keys, .. } = plan else {
        return Ok(HashMap::new());
    };
    let rows = execute(db, input)?;
    let mut counts: HashMap<Key, i64> = HashMap::new();
    for r in rows {
        *counts.entry(r.key(keys)).or_default() += 1;
    }
    Ok(counts)
}

