//! Partial-view descriptors: the materialized `∂V/∂R` structures.
//!
//! DBToaster compiles, for each stream `R`, a *trigger* that folds a
//! diff on `R` into the view using a hierarchy of materialized maps.
//! [`Partial`] models one such trigger as a **probe chain**: starting
//! from the diff row, each [`ProbeStep`] looks up one materialized map
//! by equi-columns of the row accumulated so far and appends the
//! matches. After the chain, [`Partial::compose`] projects the
//! accumulated row onto the view-input columns and an optional
//! [`Partial::filter`] applies residual conditions that involve the
//! factored table (e.g. a selection on the factored relation itself).

use idivm_algebra::{Expr, Plan};
use idivm_types::Row;

/// One materialized map probed during delta composition.
#[derive(Debug, Clone)]
pub struct ProbeStep {
    /// Definition of the map (an SPJ plan over base tables *other than*
    /// the partial's table). Materialized at setup; maintained each
    /// round under the Streams variant.
    pub plan: Plan,
    /// Equi-join pairs `(accumulated-row column, map column)`.
    pub join: Vec<(usize, usize)>,
}

/// One materialized partial: how diffs on `table` become view deltas.
#[derive(Debug, Clone)]
pub struct Partial {
    /// The factored-out base table.
    pub table: String,
    /// Probe chain. The accumulated row starts as the base-table row
    /// and grows by each step's map row.
    pub steps: Vec<ProbeStep>,
    /// Projection of the final accumulated row onto the view-input
    /// columns (positions into the accumulated row).
    pub compose: Vec<usize>,
    /// Residual predicate over the *composed* row (conditions involving
    /// the factored table that no map could pre-apply).
    pub filter: Option<Expr>,
}

impl Partial {
    /// Assemble the composed row from a final accumulated row.
    pub fn compose_row(&self, acc: &Row) -> Row {
        acc.project(&self.compose)
    }

    /// Does the composed row pass the residual filter?
    ///
    /// # Errors
    /// Expression evaluation failures ([`idivm_types::Error::Type`]).
    pub fn passes(&self, composed: &Row) -> idivm_types::Result<bool> {
        idivm_algebra::opt_pred(self.filter.as_ref(), composed)
    }

    /// Base-table columns read by the first probe step and the filter —
    /// used to decide whether an update changed the probe behaviour.
    pub fn sensitive_table_cols(&self, table_arity: usize) -> Vec<usize> {
        let mut cols: Vec<usize> = self
            .steps
            .first()
            .map(|s| s.join.iter().map(|&(a, _)| a).collect())
            .unwrap_or_default();
        if let Some(f) = &self.filter {
            // Filter columns that project straight from the table part
            // of the accumulated row.
            for (out_pos, &acc_pos) in self.compose.iter().enumerate() {
                if acc_pos < table_arity && f.columns().contains(&out_pos) {
                    cols.push(acc_pos);
                }
            }
        }
        cols.sort_unstable();
        cols.dedup();
        cols.retain(|&c| c < table_arity);
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idivm_types::row;

    #[test]
    fn compose_projects_accumulated_row() {
        let p = Partial {
            table: "parts".into(),
            steps: vec![],
            compose: vec![0, 2, 1],
            filter: Some(Expr::col(2).gt(Expr::lit(0))),
        };
        let acc = row!["P1", 10, "D1"];
        let c = p.compose_row(&acc);
        assert_eq!(c, row!["P1", "D1", 10]);
        assert!(p.passes(&c).unwrap());
        let acc = row!["P1", -5, "D1"];
        assert!(!p.passes(&p.compose_row(&acc)).unwrap());
    }

    #[test]
    fn sensitive_cols_from_first_step_and_filter() {
        let step = ProbeStep {
            plan: Plan::Scan {
                table: "m".into(),
                alias: "m".into(),
                schema: idivm_types::Schema::from_pairs(
                    &[("k", idivm_types::ColumnType::Int)],
                    &["k"],
                )
                .unwrap(),
            },
            join: vec![(1, 0)],
        };
        let p = Partial {
            table: "t".into(),
            steps: vec![step],
            compose: vec![0, 2],
            filter: Some(Expr::col(0).gt(Expr::lit(0))),
        };
        // Table arity 2: join col 1 + filter col mapping to table col 0.
        assert_eq!(p.sensitive_table_cols(2), vec![0, 1]);
    }
}
