//! `idivm-sdbt`: the **Simulated DBToaster** comparator of paper
//! Section 7.3.
//!
//! DBToaster maintains a view through *higher-order deltas*: for each
//! base table `R` it materializes the view's partial derivative
//! `M_R = ∂V/∂R` — the join of all the *other* relations — so that a
//! diff on `R` turns into a single probe `∆R ⋈ M_R` instead of a chain
//! of base-table joins. The paper could not compare against the
//! DBToaster binary directly (in-memory, compiled, different diff
//! model), so it built *SDBT*: the same intermediate-view strategy
//! executed on the shared DBMS substrate, in two flavours:
//!
//! * **SDBT-fixed** — only one designated table ever changes, so only
//!   its partial is materialized and the partial never needs
//!   maintenance. Slightly *faster* than idIVM on that scenario
//!   (Figure 12, column C).
//! * **SDBT-streams** — every table may change, so one partial per
//!   table is materialized and *all of them* must be maintained on
//!   every round. Much slower (Figure 12, column D).
//!
//! Like DBToaster's compiler, the partial-view definitions are supplied
//! at setup time (our workload generators produce them alongside the
//! view); the engine maintains the partials with the tuple-based
//! machinery and turns base diffs into view deltas via partial probes.

pub mod engine;
pub mod partial;

pub use engine::{Sdbt, SdbtVariant};
pub use partial::{Partial, ProbeStep};
