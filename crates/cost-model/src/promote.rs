//! Promote/demote crossover for **adaptive intermediate
//! materialization** (the `ViewCatalog`'s promotion layer).
//!
//! The scheduler observes, per designated shared prefix and per round,
//! the accesses one computation of the prefix costs (`C`), the diff
//! tuples published at its boundary (`D`), and the number of distinct
//! consumer views (`n`). This module decides, from those observations
//! alone, whether the prefix should be **promoted** to a persistently
//! materialized intermediate view (maintained once per round by its own
//! i-diff script at O(Δ)) or left inline (recomputed inside each
//! consumer's walk).
//!
//! Modeled costs per round, in **milli-accesses** (integer arithmetic —
//! the decision must be byte-identical across runs, platforms, and
//! thread counts, so no floats anywhere near it):
//!
//! * *maintain-as-view*: one subtree computation plus applying `D`
//!   boundary tuples to the backing table —
//!   `C·1000 + apply_cost_milli·D`.
//! * *recompute-per-round*: every consumer pays the prefix. Without a
//!   backing table a consumer either walks the subtree itself
//!   (diff-schema-incompatible siblings cannot share) or probes the
//!   un-materialized boundary as a subview — per-probe joins over base
//!   tables, the cost the paper's intermediate caches exist to kill —
//!   so the inline world is charged `n·C·1000`.
//!
//! Hysteresis: promotion needs `promote_after_rounds` *consecutive*
//! rounds favoring it by at least `promote_margin_pct`; demotion
//! symmetrically needs `demote_after_rounds` rounds exceeding the
//! inline cost by `demote_margin_pct`. Between the two bands the state
//! holds — a prefix oscillating near the crossover never thrashes
//! promote/demote cycles.

/// Tuning knobs for the promote/demote decision. All integer — see the
/// module docs for why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionConfig {
    /// Modeled cost, in milli-accesses, of applying one boundary diff
    /// tuple to the backing table (index maintenance included).
    pub apply_cost_milli: u64,
    /// Promote only when maintain-as-view undercuts recompute by at
    /// least this percentage (`maintain·100 ≤ recompute·(100−margin)`).
    pub promote_margin_pct: u64,
    /// Demote only when maintain-as-view exceeds recompute by at least
    /// this percentage (`maintain·100 ≥ recompute·(100+margin)`).
    pub demote_margin_pct: u64,
    /// Consecutive favorable rounds required before promoting.
    pub promote_after_rounds: u32,
    /// Consecutive unfavorable rounds required before demoting.
    pub demote_after_rounds: u32,
    /// Never promote a prefix with fewer distinct consumer views.
    pub min_consumers: u64,
    /// Never promote a prefix whose one-shot compute cost is below this
    /// many accesses — materializing trivia just moves work around.
    pub min_compute: u64,
}

impl Default for PromotionConfig {
    fn default() -> Self {
        PromotionConfig {
            apply_cost_milli: 1500,
            promote_margin_pct: 10,
            demote_margin_pct: 25,
            promote_after_rounds: 2,
            demote_after_rounds: 2,
            min_consumers: 2,
            min_compute: 16,
        }
    }
}

/// One round's observation of a designated prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixObservation {
    /// Accesses one computation of the prefix spent this round (`C`).
    pub compute_accesses: u64,
    /// Diff tuples published at the prefix boundary this round (`D`).
    pub diff_tuples: u64,
    /// Distinct consumer views of the prefix (`n`).
    pub consumers: u64,
}

impl PromotionConfig {
    /// Modeled per-round cost of maintaining the prefix as a
    /// materialized intermediate, in milli-accesses:
    /// `C·1000 + apply_cost_milli·D`.
    pub fn maintain_milli(&self, o: &PrefixObservation) -> u128 {
        u128::from(o.compute_accesses) * 1000
            + u128::from(self.apply_cost_milli) * u128::from(o.diff_tuples)
    }

    /// Modeled per-round cost of leaving the prefix inline, in
    /// milli-accesses: `n·C·1000`.
    pub fn recompute_milli(&self, o: &PrefixObservation) -> u128 {
        u128::from(o.consumers) * u128::from(o.compute_accesses) * 1000
    }

    /// Does this round's observation favor promotion (margin + size
    /// gates included)?
    pub fn favors_promotion(&self, o: &PrefixObservation) -> bool {
        if o.consumers < self.min_consumers || o.compute_accesses < self.min_compute {
            return false;
        }
        self.maintain_milli(o) * 100
            <= self.recompute_milli(o) * u128::from(100 - self.promote_margin_pct.min(100))
    }

    /// Does this round's observation favor demotion?
    pub fn favors_demotion(&self, o: &PrefixObservation) -> bool {
        if o.consumers < self.min_consumers {
            // The consumer set shrank below the floor (views
            // unregistered): the intermediate no longer pays for
            // itself regardless of the cost comparison.
            return true;
        }
        self.maintain_milli(o) * 100
            >= self.recompute_milli(o) * u128::from(100 + self.demote_margin_pct)
    }
}

/// What the tracker wants done with a prefix after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionDecision {
    /// Materialize the prefix as an intermediate view.
    Promote,
    /// Drop the intermediate, restore inline plans.
    Demote,
    /// Keep the current state.
    Hold,
}

impl PromotionDecision {
    /// Stable lowercase label (JSON, reports).
    pub fn label(self) -> &'static str {
        match self {
            PromotionDecision::Promote => "promote",
            PromotionDecision::Demote => "demote",
            PromotionDecision::Hold => "hold",
        }
    }
}

/// Per-prefix hysteresis state: consecutive-round streak counters
/// feeding [`PromotionDecision`]s. Purely deterministic — the decision
/// sequence is a function of the observation sequence alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossoverModel {
    promote_streak: u32,
    demote_streak: u32,
}

impl CrossoverModel {
    /// Fresh tracker (both streaks zero).
    pub fn new() -> Self {
        CrossoverModel::default()
    }

    /// Rebuild a tracker from checkpointed streak counters, so a
    /// crash-recovered scheduler replays the exact decision sequence an
    /// uninterrupted run would have produced.
    pub fn with_streaks(promote_streak: u32, demote_streak: u32) -> Self {
        CrossoverModel {
            promote_streak,
            demote_streak,
        }
    }

    /// Feed one round's observation. `promoted` is the prefix's current
    /// state; the returned decision is what the caller should do *now*
    /// (streak counters reset once a flip is issued).
    pub fn observe(
        &mut self,
        cfg: &PromotionConfig,
        promoted: bool,
        o: &PrefixObservation,
    ) -> PromotionDecision {
        if promoted {
            self.promote_streak = 0;
            if cfg.favors_demotion(o) {
                self.demote_streak += 1;
                if self.demote_streak >= cfg.demote_after_rounds {
                    self.demote_streak = 0;
                    return PromotionDecision::Demote;
                }
            } else {
                self.demote_streak = 0;
            }
        } else {
            self.demote_streak = 0;
            if cfg.favors_promotion(o) {
                self.promote_streak += 1;
                if self.promote_streak >= cfg.promote_after_rounds {
                    self.promote_streak = 0;
                    return PromotionDecision::Promote;
                }
            } else {
                self.promote_streak = 0;
            }
        }
        PromotionDecision::Hold
    }

    /// Current favorable-for-promotion streak length.
    pub fn promote_streak(&self) -> u32 {
        self.promote_streak
    }

    /// Current favorable-for-demotion streak length.
    pub fn demote_streak(&self) -> u32 {
        self.demote_streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(c: u64, d: u64, n: u64) -> PrefixObservation {
        PrefixObservation {
            compute_accesses: c,
            diff_tuples: d,
            consumers: n,
        }
    }

    #[test]
    fn crossover_formula_exact_values() {
        let cfg = PromotionConfig::default();
        // The BENCH_multiview select-prefix shape: C=568, D=285, n=4.
        let o = obs(568, 285, 4);
        assert_eq!(cfg.maintain_milli(&o), 568_000 + 1500 * 285);
        assert_eq!(cfg.recompute_milli(&o), 4 * 568_000);
        // maintain = 995_500 ≤ 0.9 · 2_272_000 = 2_044_800 → favorable.
        assert!(cfg.favors_promotion(&o));
        assert!(!cfg.favors_demotion(&o));
    }

    #[test]
    fn margin_bands_leave_a_hold_gap() {
        let cfg = PromotionConfig::default();
        // n=1 ⇒ recompute = C; maintain = C + apply·D > recompute, but
        // the consumer gate fires first (min_consumers).
        assert!(!cfg.favors_promotion(&obs(1000, 10, 1)));
        // Inside the hysteresis band: maintain ≈ recompute. With n=2,
        // C=1000, D=600: maintain = 1_900_000, recompute = 2_000_000.
        // 1_900_000·100 = 190M > 2_000_000·90 = 180M → not promotable;
        // 190M < 2_000_000·125 = 250M → not demotable. Hold band.
        let band = obs(1000, 600, 2);
        assert!(!cfg.favors_promotion(&band));
        assert!(!cfg.favors_demotion(&band));
        // Far above the band: demote.
        let bad = obs(100, 2000, 2);
        assert!(cfg.favors_demotion(&bad));
    }

    #[test]
    fn size_gates_block_trivia() {
        let cfg = PromotionConfig::default();
        // Compute below min_compute never promotes, however favorable.
        assert!(!cfg.favors_promotion(&obs(15, 0, 8)));
        assert!(cfg.favors_promotion(&obs(16, 0, 8)));
    }

    #[test]
    fn consumer_collapse_forces_demotion() {
        let cfg = PromotionConfig::default();
        // Even a cost-favorable intermediate demotes once its consumer
        // set shrinks below the floor.
        assert!(cfg.favors_demotion(&obs(10_000, 1, 1)));
    }

    #[test]
    fn hysteresis_requires_consecutive_rounds() {
        let cfg = PromotionConfig::default();
        let good = obs(568, 285, 4);
        let band = obs(1000, 600, 2);
        let mut m = CrossoverModel::new();
        // One favorable round is not enough (promote_after_rounds = 2).
        assert_eq!(m.observe(&cfg, false, &good), PromotionDecision::Hold);
        // A band round breaks the streak.
        assert_eq!(m.observe(&cfg, false, &band), PromotionDecision::Hold);
        assert_eq!(m.observe(&cfg, false, &good), PromotionDecision::Hold);
        // Second consecutive favorable round promotes.
        assert_eq!(m.observe(&cfg, false, &good), PromotionDecision::Promote);
        // Once promoted, favorable rounds hold (no re-promotion).
        assert_eq!(m.observe(&cfg, true, &good), PromotionDecision::Hold);
        // Two consecutive unfavorable rounds demote.
        let bad = obs(100, 2000, 2);
        assert_eq!(m.observe(&cfg, true, &bad), PromotionDecision::Hold);
        assert_eq!(m.observe(&cfg, true, &bad), PromotionDecision::Demote);
    }

    #[test]
    fn decision_sequence_is_deterministic() {
        let cfg = PromotionConfig::default();
        let stream = [
            (false, obs(568, 285, 4)),
            (false, obs(568, 285, 4)),
            (true, obs(100, 2000, 2)),
            (true, obs(568, 285, 4)),
            (true, obs(100, 2000, 2)),
            (true, obs(100, 2000, 2)),
        ];
        let run = || {
            let mut m = CrossoverModel::new();
            stream
                .iter()
                .map(|(p, o)| m.observe(&cfg, *p, o))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(
            a,
            vec![
                PromotionDecision::Hold,
                PromotionDecision::Promote,
                PromotionDecision::Hold,
                PromotionDecision::Hold,
                PromotionDecision::Hold,
                PromotionDecision::Demote,
            ]
        );
    }
}
