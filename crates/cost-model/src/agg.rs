//! Aggregate-view cost model — paper Section 6.2 / Appendix A.2
//! (Table 3).
//!
//! The ID-based engine maintains an intermediate cache holding the SPJ
//! subview; the tuple-based engine has none ("it cannot benefit from
//! it"). Costs per `d = |Du_R|` base diff tuples:
//!
//! | component             | ID-based  | tuple-based |
//! |-----------------------|-----------|-------------|
//! | cache diff computation| 0         | —           |
//! | cache index lookups   | `d`       | —           |
//! | cache tuple accesses  | `d·p`     | —           |
//! | view diff computation | 0         | `d·a`       |
//! | view index lookups    | `d·p·g`   | `d·p·g`     |
//! | view tuple accesses   | `d·p·g`   | `d·p·g`     |
//!
//! giving `speedup = (a + 2pg) / (1 + p + 2pg)` for non-conditional
//! updates. The paper proves `a ≥ 1 + p` (each diff tuple costs at
//! least one probe plus `p` reads), so the ID-based approach never
//! loses on updates/deletes; on inserts it pays `k` extra cache writes:
//! `speedup = (a + 2pg) / (a + k + 2pg) < 1`, a bounded loss.

/// Model parameters for an aggregate view with an input cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggModel {
    /// Tuple-based accesses per base diff tuple (`a`).
    pub a: f64,
    /// i-diff compression factor at the SPJ subview (`p`).
    pub p: f64,
    /// Grouping compression factor `|Du_Vagg| / |Du_Vspj|` (`g ≤ 1`).
    pub g: f64,
    /// View-input rows created per base diff tuple (insert case).
    pub k: f64,
}

impl AggModel {
    /// ID-based cost for `d` update diff tuples (Table 3, left).
    pub fn id_cost_update(&self, d: u64) -> f64 {
        d as f64 * (1.0 + self.p + 2.0 * self.p * self.g)
    }

    /// Tuple-based cost for `d` update diff tuples (Table 3, right).
    pub fn tuple_cost_update(&self, d: u64) -> f64 {
        d as f64 * (self.a + 2.0 * self.p * self.g)
    }

    /// Speedup for update diffs on non-conditional attributes
    /// (Equation 2): `(a + 2pg) / (1 + p + 2pg)`.
    pub fn speedup_nonconditional_update(&self) -> f64 {
        (self.a + 2.0 * self.p * self.g) / (1.0 + self.p + 2.0 * self.p * self.g)
    }

    /// Speedup when base diffs translate to view-input inserts
    /// (Appendix A.2.2): `(a + 2pg) / (a + k + 2pg)` — below 1, the
    /// bounded cache-maintenance loss.
    pub fn speedup_insert(&self) -> f64 {
        let shared = self.a + 2.0 * self.p * self.g;
        shared / (shared + self.k)
    }

    /// The feasibility bound `a ≥ 1 + p` (Appendix A.2.1): a diff-driven
    /// loop pays at least one index probe and `p` tuple reads per diff
    /// tuple. Models violating it are unrealizable.
    pub fn is_feasible(&self) -> bool {
        self.a >= 1.0 + self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_matches_cost_ratio() {
        let m = AggModel {
            a: 5.0,
            p: 2.0,
            g: 0.5,
            k: 1.0,
        };
        let ratio = m.tuple_cost_update(10) / m.id_cost_update(10);
        assert!((ratio - m.speedup_nonconditional_update()).abs() < 1e-12);
    }

    /// With the feasibility bound `a ≥ 1 + p`, the ID-based approach
    /// never loses on updates (Section 6.2: "this speedup is always
    /// going to be at least 1").
    #[test]
    fn update_speedup_at_least_one_when_feasible() {
        for p in [0.5, 1.0, 3.0] {
            for extra in [0.0, 1.0, 5.0] {
                for g in [0.1, 0.5, 1.0] {
                    let m = AggModel {
                        a: 1.0 + p + extra,
                        p,
                        g,
                        k: 0.0,
                    };
                    assert!(m.is_feasible());
                    assert!(
                        m.speedup_nonconditional_update() >= 1.0,
                        "violated for p={p} extra={extra} g={g}"
                    );
                }
            }
        }
    }

    /// Insert-heavy workloads lose, but boundedly: the loss is ≤ 1
    /// access per inserted view-input row.
    #[test]
    fn insert_loss_is_bounded() {
        let m = AggModel {
            a: 3.0,
            p: 1.0,
            g: 1.0,
            k: 2.0,
        };
        let s = m.speedup_insert();
        assert!(s < 1.0);
        // Absolute extra cost per diff tuple = k.
        let id = m.a + 2.0 * m.p * m.g + m.k;
        let tuple = m.a + 2.0 * m.p * m.g;
        assert!((id - tuple - m.k).abs() < 1e-12);
    }

    #[test]
    fn infeasible_models_flagged() {
        let m = AggModel {
            a: 1.0,
            p: 2.0,
            g: 1.0,
            k: 0.0,
        };
        assert!(!m.is_feasible());
    }
}
