//! `idivm-cost`: the analytic cost model of paper Section 6 and
//! Appendix A.
//!
//! Cost unit: combined tuple accesses + index lookups. Parameters:
//!
//! * `p` — the i-diff **compression factor** `|D_V| / |∆_V|`: view
//!   tuples modified per view i-diff tuple (`> 1` when one i-diff tuple
//!   covers many view tuples, `< 1` under overestimation),
//! * `a` — average accesses the **tuple-based** approach spends per
//!   base diff tuple to reconstruct the view diff (the diff-driven loop
//!   over `σ_c′(E)`),
//! * `g` — the grouping compression factor `|Du_Vagg| / |Du_Vspj|`,
//! * `k` — view-input rows created per base diff tuple (insert case).
//!
//! The [`spj`] and [`agg`] modules give the per-approach costs of the
//! paper's Tables 2 and 3 and the speedup formulas; [`measure`]
//! extracts the parameters from measured
//! [`MaintenanceReport`](idivm_reldb::StatsSnapshot)-style counters so
//! experiments can confront prediction with observation.

pub mod agg;
pub mod measure;
pub mod promote;
pub mod spj;

pub use agg::AggModel;
pub use measure::ObservedParams;
pub use promote::{CrossoverModel, PrefixObservation, PromotionConfig, PromotionDecision};
pub use spj::SpjModel;
