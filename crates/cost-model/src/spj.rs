//! SPJ-view cost model — paper Section 6.1 / Appendix A.1 (Table 2).
//!
//! | cost component      | ID-based | tuple-based (diff-driven loop) |
//! |---------------------|----------|--------------------------------|
//! | diff computation    | 0        | `|Du_R| · a`                   |
//! | view index lookups  | `|Du_R|` | `|Du_R| · p`                   |
//! | view tuple accesses | `|Du_R| · p` | `|Du_R| · p`               |
//!
//! giving `speedup = (a + 2p) / (1 + p)` for update diffs on
//! non-conditional attributes, and `≥ min((a+2p)/(1+p), 1)` otherwise.

/// Model parameters for an SPJ view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpjModel {
    /// Tuple-based accesses per base diff tuple (`a`).
    pub a: f64,
    /// i-diff compression factor (`p`).
    pub p: f64,
}

impl SpjModel {
    /// ID-based IVM cost for `d` base diff tuples (Table 2, left).
    pub fn id_cost(&self, d: u64) -> f64 {
        d as f64 * (1.0 + self.p)
    }

    /// Tuple-based IVM cost for `d` base diff tuples (Table 2, right).
    pub fn tuple_cost(&self, d: u64) -> f64 {
        d as f64 * (self.a + 2.0 * self.p)
    }

    /// Speedup for update diffs on non-conditional attributes
    /// (Equation 1): `(a + 2p) / (1 + p)`.
    pub fn speedup_nonconditional_update(&self) -> f64 {
        (self.a + 2.0 * self.p) / (1.0 + self.p)
    }

    /// Lower bound for any other diff type (Section 6.1, case (b)):
    /// `min((a+2p)/(1+p), 1)` — pure-insert workloads degenerate to
    /// parity.
    pub fn speedup_lower_bound(&self) -> f64 {
        self.speedup_nonconditional_update().min(1.0)
    }

    /// The corner case in which tuple-based wins (Section 6.1
    /// discussion): requires `a < 1 − p`, i.e. sub-unit probe cost
    /// combined with severe overestimation.
    pub fn tuple_based_wins(&self) -> bool {
        self.a < 1.0 - self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_matches_cost_ratio() {
        let m = SpjModel { a: 4.0, p: 2.0 };
        let ratio = m.tuple_cost(100) / m.id_cost(100);
        assert!((ratio - m.speedup_nonconditional_update()).abs() < 1e-12);
        assert!((m.speedup_nonconditional_update() - 8.0 / 3.0).abs() < 1e-12);
    }

    /// The speedup grows with `a` — each extra join in the chain raises
    /// `a` while leaving the ID-based cost unchanged (Figure 12b's
    /// shape).
    #[test]
    fn speedup_monotone_in_a() {
        let mut prev = 0.0;
        for a in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let s = SpjModel { a, p: 1.0 }.speedup_nonconditional_update();
            assert!(s > prev);
            prev = s;
        }
    }

    /// For `p ≥ 1` the ID-based approach is never slower.
    #[test]
    fn id_wins_when_compressing() {
        for p in [1.0, 2.0, 10.0] {
            for a in [1.0, 2.0, 8.0] {
                let m = SpjModel { a, p };
                assert!(m.speedup_nonconditional_update() >= 1.0);
                assert!(!m.tuple_based_wins());
            }
        }
    }

    /// The paper's corner case: `a < 1 − p` (sub-unit probe cost and
    /// heavy overestimation) lets tuple-based win.
    #[test]
    fn corner_case_detected() {
        let m = SpjModel { a: 0.2, p: 0.1 };
        assert!(m.tuple_based_wins());
        assert!(m.speedup_nonconditional_update() < 1.0);
        let m = SpjModel { a: 1.5, p: 0.1 };
        assert!(!m.tuple_based_wins());
    }

    #[test]
    fn lower_bound_capped_at_one() {
        let m = SpjModel { a: 9.0, p: 1.0 };
        assert!((m.speedup_lower_bound() - 1.0).abs() < 1e-12);
    }
}
