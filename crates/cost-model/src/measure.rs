//! Parameter extraction: confront the analytic model with measured
//! maintenance rounds.

use crate::{AggModel, SpjModel};

/// Counters of one measured round per engine, in the paper's cost unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ObservedParams {
    /// Base diff tuples consumed (`|D_R|`).
    pub base_diff_tuples: u64,
    /// View diff tuples the ID-based engine produced (`|∆_V|`).
    pub id_view_diff_tuples: u64,
    /// View tuples the ID-based engine actually modified (`|D_V|`).
    pub id_view_modified: u64,
    /// Tuple-based diff-computation accesses.
    pub tuple_diff_compute: u64,
    /// Total accesses per engine.
    pub id_total: u64,
    pub tuple_total: u64,
}

impl ObservedParams {
    /// Observed compression factor `p = |D_V| / |∆_V|`.
    pub fn p(&self) -> f64 {
        if self.id_view_diff_tuples == 0 {
            return 0.0;
        }
        self.id_view_modified as f64 / self.id_view_diff_tuples as f64
    }

    /// Observed per-diff-tuple tuple-based computation cost `a`.
    pub fn a(&self) -> f64 {
        if self.base_diff_tuples == 0 {
            return 0.0;
        }
        self.tuple_diff_compute as f64 / self.base_diff_tuples as f64
    }

    /// Observed speedup (tuple cost / ID cost).
    pub fn observed_speedup(&self) -> f64 {
        if self.id_total == 0 {
            return 1.0;
        }
        self.tuple_total as f64 / self.id_total as f64
    }

    /// The SPJ model instantiated from the observation.
    pub fn spj_model(&self) -> SpjModel {
        SpjModel {
            a: self.a(),
            p: self.p(),
        }
    }

    /// The aggregate model instantiated from the observation (`g`
    /// supplied by the caller, who knows the grouping; `k` likewise).
    pub fn agg_model(&self, g: f64, k: f64) -> AggModel {
        AggModel {
            a: self.a(),
            p: self.p(),
            g,
            k,
        }
    }

    /// Relative error between the model's predicted speedup and the
    /// observed one (SPJ, non-conditional updates).
    pub fn spj_prediction_error(&self) -> f64 {
        let predicted = self.spj_model().speedup_nonconditional_update();
        let observed = self.observed_speedup();
        ((predicted - observed) / observed).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_extracted() {
        let o = ObservedParams {
            base_diff_tuples: 100,
            id_view_diff_tuples: 100,
            id_view_modified: 200, // p = 2
            tuple_diff_compute: 400, // a = 4
            id_total: 300,          // 100 (1 + p)
            tuple_total: 800,       // 100 (a + 2p)
        };
        assert!((o.p() - 2.0).abs() < 1e-12);
        assert!((o.a() - 4.0).abs() < 1e-12);
        // Perfectly model-shaped observation ⇒ zero prediction error.
        assert!(o.spj_prediction_error() < 1e-12);
    }

    #[test]
    fn degenerate_rounds_are_safe() {
        let o = ObservedParams::default();
        assert_eq!(o.p(), 0.0);
        assert_eq!(o.a(), 0.0);
        assert_eq!(o.observed_speedup(), 1.0);
    }
}
