//! Umbrella crate for the idIVM reproduction workspace.
//!
//! This crate exists to host workspace-spanning integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the member crates; the most commonly used items are
//! re-exported here for convenience.

pub use idivm_algebra as algebra;
pub use idivm_core as core;
/// The multi-view catalog + shared-diff maintenance scheduler
/// (`idivm-sched`). Exposed as `catalog` here because it sits *above*
/// `idivm_core` in the dependency DAG and so cannot be re-exported
/// from there.
pub use idivm_sched as catalog;
/// The streaming CDC ingestion front-end (`idivm-ingest`): bounded
/// admission queue, adaptive micro-batcher, dead-letter quarantine.
pub use idivm_ingest as ingest;
pub use idivm_cost as cost;
/// Write-ahead logging, checkpoints, and crash-consistent recovery
/// (`idivm-durability`).
pub use idivm_durability as durability;
pub use idivm_exec as exec;
pub use idivm_reldb as reldb;
pub use idivm_sdbt as sdbt;
/// The SQL front-end (`idivm-sql`): `CREATE MATERIALIZED VIEW` text
/// lowered to algebra plans, plus `EXPLAIN MAINTENANCE`.
pub use idivm_sql as sql;
pub use idivm_tuple as tuple;
pub use idivm_types as types;
pub use idivm_workloads as workloads;
