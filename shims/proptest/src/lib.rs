//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this path crate
//! implements the slice of the proptest 1.x API the workspace's
//! property tests use: the `proptest!` macro with
//! `#![proptest_config(..)]`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, integer-range / tuple / collection
//! strategies, `prop_map`, and `prop_recursive`.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (fully reproducible runs), there is **no
//! shrinking** (a failing case panics with the assertion message), and
//! `.proptest-regressions` files are ignored.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A value generator. Object-safe core (`generate`) plus sized
    /// combinators, mirroring proptest's `Strategy`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategies: at each of `depth` levels, flip
        /// between the leaf strategy and one recursion step. The
        /// `_desired_size`/`_expected_branch_size` tuning knobs of
        /// upstream are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let expanded = recurse(cur).boxed();
                cur = OneOf {
                    options: vec![leaf.clone(), expanded],
                }
                .boxed();
            }
            cur
        }
    }

    /// Clonable type-erased strategy (stands in for proptest's
    /// `BoxedStrategy`).
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Canonical strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = Map<Range<$t>, fn($t) -> $t>;
                fn arbitrary() -> Self::Strategy {
                    (<$t>::MIN..<$t>::MAX).prop_map((|v| v) as fn($t) -> $t)
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Half-open size specification accepted by the collection
    /// strategies: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo)
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`. Duplicate draws collapse, so
    /// the set may come out smaller than the drawn size (same
    /// observable contract as upstream for the sizes used here).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate ordered sets of values from `element`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Per-test configuration (`cases` is the only knob the workspace
    /// uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 case generator, seeded deterministically so failures
    /// reproduce run-to-run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` macro.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x1D1F_F0CA_5EED_2026,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy arms (weights unsupported).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The property-test macro: expands each `fn name(arg in strategy, ..)`
/// into a plain test that generates and runs `config.cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::OneOf;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic();
        let strat = (0u8..4, -5i64..5).prop_map(|(a, b)| (a as i64) * 100 + b);
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            let (hi, lo) = (v.div_euclid(100), v.rem_euclid(100));
            let (hi, lo) = if lo > 50 { (hi + 1, lo - 100) } else { (hi, lo) };
            assert!((0..4).contains(&hi), "{v}");
            assert!((-5..5).contains(&lo), "{v}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic();
        let strat: OneOf<i32> = prop_oneof![Just(1), Just(2), Just(3)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::deterministic();
        let v = crate::collection::vec(0i64..10, 4);
        let s = crate::collection::btree_set(0usize..3, 0..3);
        for _ in 0..200 {
            assert_eq!(v.generate(&mut rng).len(), 4);
            let set = s.generate(&mut rng);
            assert!(set.len() <= 2);
            assert!(set.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn recursion_terminates_and_nests() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(
            3,
            8,
            2,
            |inner| {
                (inner.clone(), inner)
                    .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            },
        );
        let mut rng = TestRng::deterministic();
        let mut max = 0;
        for _ in 0..500 {
            max = max.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max >= 1, "recursion never fired");
        assert!(max <= 3, "depth bound exceeded: {max}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: generated args are in range.
        #[test]
        fn macro_generates_cases(x in 0i64..100, v in crate::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!((0..100).contains(&x));
            prop_assert!(v.len() < 5);
        }
    }
}
