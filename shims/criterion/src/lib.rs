//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this path crate
//! implements the slice of the criterion 0.5 API the workspace's bench
//! harness uses: `Criterion::default().sample_size(..)`,
//! `benchmark_group` / `bench_function` / `finish`,
//! `BenchmarkId::from_parameter`, and the `criterion_group!` /
//! `criterion_main!` macros. Each sample is timed with `Instant` and a
//! mean ± spread line is printed per benchmark — no statistical
//! analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Ungrouped benchmark (criterion parity; unused by the harness but
    /// cheap to provide).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, f);
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an ID from a single parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// Build an ID from a function name and a parameter value.
    pub fn new(function: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), p),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// End the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run and time the routine once per sample. The routine's output
    /// is dropped after timing (sinking it keeps the call from being
    /// optimized away entirely).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(black_box(out));
        }
    }
}

/// Identity function that hides `x` from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<40} mean {mean:>12?}   [min {min:?}, max {max:?}, n={}]",
        b.samples.len()
    );
}

/// Bundle benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_routine_sample_size_times() {
        let mut c = Criterion::default().sample_size(7);
        let mut count = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| count += 1)
        });
        g.finish();
        assert_eq!(count, 7);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
