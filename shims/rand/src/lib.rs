//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this path crate
//! provides the small slice of the rand 0.8 API the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over
//! half-open integer ranges, and `Rng::gen_bool`. The generator is
//! SplitMix64 — deterministic per seed, statistically solid for
//! workload synthesis (not cryptographic).

use std::ops::Range;

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (rand 0.8 surface subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Map raw bits into `[lo, hi)`.
    fn from_bits(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_bits(bits: u64, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64 — irrelevant for workload
                // synthesis.
                let off = (u128::from(bits) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// User-facing sampling methods, blanket-implemented over any core.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::from_bits(self.next_u64(), range.start, range.end)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for rand's
    /// `StdRng`; sequences differ from upstream but are stable per
    /// seed, which is all the workloads rely on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn values_spread_over_domain() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(r.gen_range(0i64..100));
        }
        assert!(seen.len() > 90, "only {} distinct values", seen.len());
    }
}
