//! Device-catalog maintenance: the running-example domain at realistic
//! size, showing the full operator repertoire of `QSPJADU` — selection,
//! join, antisemijoin (negation), union, and aggregation — under one
//! mixed modification workload.
//!
//! Views maintained:
//! * `phone_costs` — total part cost per phone (σ + ⋈ + γ SUM).
//! * `unused_parts` — parts in no device (antisemijoin/negation).
//! * `watchlist`   — union of cheap parts and parts used in tablets,
//!   with the union-branch attribute in the key.
//!
//! Run with: `cargo run --release --example device_catalog`

use idivm_algebra::{Expr, Plan, PlanBuilder};
use idivm_core::{IdIvm, IvmOptions};
use idivm_exec::{executor::sorted, recompute_rows, DbCatalog};
use idivm_types::{row, Key, Result, Value};
use idivm_workloads::RunningExample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<()> {
    let cfg = RunningExample {
        n_parts: 1_500,
        n_devices: 1_000,
        fanout: 6,
        selectivity_pct: 30,
        joins: 2,
        seed: 99,
    };
    let mut db = cfg.build()?;
    println!(
        "catalog: {} parts, {} devices, {} links",
        db.table("parts")?.len(),
        db.table("devices")?.len(),
        db.table("devices_parts")?.len()
    );

    // phone_costs: the aggregate view V′.
    let phone_costs = cfg.agg_plan(&db)?;

    // unused_parts: parts ▷ devices_parts — negation.
    let cat = DbCatalog(&db);
    let unused_parts = PlanBuilder::scan(&cat, "parts")?
        .anti_join(
            PlanBuilder::scan(&cat, "devices_parts")?,
            &[("parts.pid", "devices_parts.pid")],
        )?
        .build()?;

    // watchlist: cheap parts ∪ parts used in tablets.
    let cheap = PlanBuilder::scan(&cat, "parts")?
        .select(Expr::col(1).lt(Expr::lit(50)))
        .build()?;
    let in_tablets = PlanBuilder::scan(&cat, "parts")?
        .semi_join(
            PlanBuilder::scan(&cat, "devices_parts")?
                .join(
                    PlanBuilder::scan(&cat, "devices")?,
                    &[("devices_parts.did", "devices.did")],
                )?
                .select_eq("devices.category", "tablet")?,
            &[("parts.pid", "devices_parts.pid")],
        )?
        .build()?;
    let watchlist = Plan::UnionAll {
        left: Box::new(cheap),
        right: Box::new(in_tablets),
    };

    let engines = vec![
        IdIvm::setup(&mut db, "phone_costs", phone_costs, IvmOptions::default())?,
        IdIvm::setup(&mut db, "unused_parts", unused_parts, IvmOptions::default())?,
        IdIvm::setup(&mut db, "watchlist", watchlist, IvmOptions::default())?,
    ];
    for e in &engines {
        println!(
            "view {:<14} {:>6} rows, {} cache(s)",
            e.view_name(),
            db.table(e.view_name())?.len(),
            e.caches().len()
        );
    }

    // A mixed workload: price changes, new parts, discontinued parts,
    // re-categorized devices, link churn.
    let mut rng = StdRng::seed_from_u64(1234);
    for round in 1..=4 {
        let mut ops = [0usize; 5];
        for _ in 0..60 {
            match rng.gen_range(0..5) {
                0 => {
                    let pid = rng.gen_range(0..cfg.n_parts) as i64;
                    let _ = db.update_named(
                        "parts",
                        &Key(vec![Value::Int(pid)]),
                        &[("price", Value::Int(rng.gen_range(1..1_000)))],
                    );
                    ops[0] += 1;
                }
                1 => {
                    let pid = (cfg.n_parts as i64) + rng.gen_range(0..10_000);
                    if db.insert("parts", row![pid, rng.gen_range(1..1_000)]).is_ok() {
                        ops[1] += 1;
                    }
                }
                2 => {
                    let pid = rng.gen_range(0..cfg.n_parts) as i64;
                    if db
                        .delete("parts", &Key(vec![Value::Int(pid)]))?
                        .is_some()
                    {
                        ops[2] += 1;
                    }
                }
                3 => {
                    let did = rng.gen_range(0..cfg.n_devices) as i64;
                    let cat = if rng.gen_bool(0.5) { "phone" } else { "tablet" };
                    let _ = db.update_named(
                        "devices",
                        &Key(vec![Value::Int(did)]),
                        &[("category", Value::str(cat))],
                    );
                    ops[3] += 1;
                }
                _ => {
                    let did = rng.gen_range(0..cfg.n_devices) as i64;
                    let pid = rng.gen_range(0..cfg.n_parts) as i64;
                    if rng.gen_bool(0.5) {
                        let _ = db.insert("devices_parts", row![did, pid]);
                    } else {
                        let _ = db.delete(
                            "devices_parts",
                            &Key(vec![Value::Int(did), Value::Int(pid)]),
                        );
                    }
                    ops[4] += 1;
                }
            }
        }
        let net = db.fold_log();
        db.clear_log();
        db.stats().reset();
        let mut accesses = 0;
        for e in &engines {
            accesses += e.maintain_with_changes(&mut db, &net)?.total_accesses();
        }
        println!(
            "round {round}: {} price updates, {} new, {} dropped, {} recategorized, {} link ops \
             -> {} accesses",
            ops[0], ops[1], ops[2], ops[3], ops[4], accesses
        );
        // Verify every view against recomputation — the IVM contract.
        for e in &engines {
            let expected = sorted(recompute_rows(&db, e.plan())?);
            let actual = sorted(db.table(e.view_name())?.rows_uncounted());
            assert_eq!(actual, expected, "{} diverged", e.view_name());
        }
    }
    println!("all views verified against full recomputation after every round ✓");
    Ok(())
}
