//! Social-media analytics: the paper's primary IVM use case
//! (Section 7.1).
//!
//! Generates a BSMA-style social network (users, friendships, tweets,
//! retweets, mentions, events), registers three analytics views under
//! ID-based maintenance, then streams batches of profile updates
//! through them — the "rapid, frequent updates" + "analytic views that
//! monitor metrics and trends" scenario the paper motivates.
//!
//! Run with: `cargo run --release --example social_analytics`

use idivm_core::{IdIvm, IvmOptions};
use idivm_workloads::bsma::{Bsma, BsmaQuery};

fn main() -> idivm_types::Result<()> {
    let cfg = Bsma {
        scale: 0.25,
        seed: 7,
    };
    println!("generating social graph (scale {}):", cfg.scale);
    let mut db = cfg.build()?;
    for t in db.table_names() {
        println!("  {:<22} {:>7} rows", t, db.table(t)?.len());
    }

    // Three dashboards: trending mentions, retweet influence, topics.
    let queries = [BsmaQuery::Q7, BsmaQuery::QStar2, BsmaQuery::QStar3];
    let mut engines = Vec::new();
    for q in queries {
        let plan = cfg.plan(&db, q)?;
        let name = format!("dash_{}", q.label().replace('*', "s"));
        let ivm = IdIvm::setup(&mut db, &name, plan, IvmOptions::default())?;
        println!(
            "\nregistered view {:<10} ({}) — {} rows, {} cache(s)",
            name,
            q.description(),
            db.table(&name)?.len(),
            ivm.caches().len()
        );
        engines.push(ivm);
    }

    // Stream five batches of user-profile updates through the system.
    println!("\nstreaming update batches (100 user-profile updates each):");
    for round in 1..=5u64 {
        cfg.user_update_batch(&mut db, 100, round)?;
        db.stats().reset();
        let mut total_accesses = 0;
        let mut total_ms = 0.0;
        // All views share one modification log; fold it once.
        let net = db.fold_log();
        db.clear_log();
        for ivm in &engines {
            let report = ivm.maintain_with_changes(&mut db, &net)?;
            total_accesses += report.total_accesses();
            total_ms += report.wall.as_secs_f64() * 1e3;
        }
        println!(
            "  round {round}: {} accesses, {:.2} ms across {} views",
            total_accesses,
            total_ms,
            engines.len()
        );
    }

    println!("\nfinal dashboard sizes:");
    for (q, ivm) in queries.iter().zip(&engines) {
        println!(
            "  {:<10} {:>7} rows",
            q.label(),
            db.table(ivm.view_name())?.len()
        );
    }
    Ok(())
}

