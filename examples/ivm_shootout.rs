//! IVM shootout: all four maintenance strategies side by side on the
//! same workload — the executable summary of the paper's evaluation.
//!
//! Systems: ID-based idIVM (the contribution), classical tuple-based
//! IVM, SDBT-fixed and SDBT-streams (the DBToaster-style comparators),
//! plus full recomputation as the non-incremental floor.
//!
//! Run with: `cargo run --release --example ivm_shootout`

use idivm_core::{IdIvm, IvmOptions};
use idivm_exec::refresh_view;
use idivm_sdbt::{Sdbt, SdbtVariant};
use idivm_tuple::TupleIvm;
use idivm_types::Result;
use idivm_workloads::RunningExample;
use std::time::Instant;

fn main() -> Result<()> {
    let cfg = RunningExample {
        n_parts: 4_000,
        n_devices: 4_000,
        fanout: 10,
        selectivity_pct: 20,
        joins: 2,
        seed: 1,
    };
    let d = 200;
    println!(
        "workload: aggregate view V' over {} parts / {} devices / ~{} links; {d} price updates per round\n",
        cfg.n_parts,
        cfg.n_devices,
        cfg.n_devices * cfg.fanout
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>10}",
        "system", "accesses", "wall (ms)", "view rows", "dummies"
    );

    // idIVM.
    {
        let mut db = cfg.build()?;
        let plan = cfg.agg_plan(&db)?;
        let ivm = IdIvm::setup(&mut db, "V", plan, IvmOptions::default())?;
        cfg.price_update_batch(&mut db, d, 1)?;
        db.stats().reset();
        let r = ivm.maintain(&mut db)?;
        println!(
            "{:<18} {:>12} {:>12.2} {:>12} {:>10}",
            "idIVM (ID-based)",
            r.total_accesses(),
            r.wall.as_secs_f64() * 1e3,
            db.table("V")?.len(),
            r.view_outcome.dummies
        );
    }
    // Tuple-based.
    {
        let mut db = cfg.build()?;
        let plan = cfg.agg_plan(&db)?;
        let ivm = TupleIvm::setup(&mut db, "V", plan)?;
        cfg.price_update_batch(&mut db, d, 1)?;
        db.stats().reset();
        let r = ivm.maintain(&mut db)?;
        println!(
            "{:<18} {:>12} {:>12.2} {:>12} {:>10}",
            "tuple-based",
            r.total_accesses(),
            r.wall.as_secs_f64() * 1e3,
            db.table("V")?.len(),
            r.view_outcome.dummies
        );
    }
    // SDBT-fixed.
    {
        let mut db = cfg.build()?;
        let plan = cfg.agg_plan(&db)?;
        let partial = cfg.sdbt_parts_partial(&db)?;
        let sdbt = Sdbt::setup(
            &mut db,
            "V",
            plan,
            vec![partial],
            SdbtVariant::Fixed("parts".into()),
        )?;
        cfg.price_update_batch(&mut db, d, 1)?;
        db.stats().reset();
        let r = sdbt.maintain(&mut db)?;
        println!(
            "{:<18} {:>12} {:>12.2} {:>12} {:>10}",
            "SDBT-fixed",
            r.total_accesses(),
            r.wall.as_secs_f64() * 1e3,
            sdbt.visible_rows(&db)?.len(),
            r.view_outcome.dummies
        );
    }
    // SDBT-streams.
    {
        let mut db = cfg.build()?;
        let plan = cfg.agg_plan(&db)?;
        let partials = cfg.sdbt_all_partials(&db)?;
        let sdbt = Sdbt::setup(&mut db, "V", plan, partials, SdbtVariant::Streams)?;
        cfg.price_update_batch(&mut db, d, 1)?;
        db.stats().reset();
        let r = sdbt.maintain(&mut db)?;
        println!(
            "{:<18} {:>12} {:>12.2} {:>12} {:>10}",
            "SDBT-streams",
            r.total_accesses(),
            r.wall.as_secs_f64() * 1e3,
            sdbt.visible_rows(&db)?.len(),
            r.view_outcome.dummies
        );
    }
    // Full recomputation (the floor IVM must beat).
    {
        let mut db = cfg.build()?;
        let plan = cfg.agg_plan(&db)?;
        idivm_exec::materialize_view(&mut db, "V", &plan)?;
        cfg.price_update_batch(&mut db, d, 1)?;
        db.clear_log();
        db.stats().reset();
        let t = Instant::now();
        refresh_view(&mut db, "V", &plan)?;
        let snap = db.stats().snapshot();
        println!(
            "{:<18} {:>12} {:>12.2} {:>12} {:>10}",
            "recompute",
            snap.total(),
            t.elapsed().as_secs_f64() * 1e3,
            db.table("V")?.len(),
            "-"
        );
    }
    println!(
        "\nexpected ordering (paper Figures 10/12): SDBT-fixed <= idIVM << tuple-based < SDBT-streams << recompute"
    );
    Ok(())
}
