//! Quickstart: the paper's running example, end to end.
//!
//! Builds the devices/parts database of Figure 1, defines the SPJ view
//! V and the aggregate view V′ (Figure 5), runs the Figure 2 price
//! update through ID-based IVM, and prints the ∆-script, the maintained
//! views, and the cost report.
//!
//! Run with: `cargo run --example quickstart`

use idivm_algebra::{display::explain, AggFunc, PlanBuilder};
use idivm_core::{script::explain_script, IdIvm, IvmOptions};
use idivm_exec::DbCatalog;
use idivm_reldb::Database;
use idivm_types::{row, ColumnType, Key, Schema, Value};

fn main() -> idivm_types::Result<()> {
    // ------------------------------------------------------------------
    // 1. The database of Figure 1a: every table has a primary key.
    // ------------------------------------------------------------------
    let mut db = Database::new();
    db.set_logging(false); // initial load is not a maintenance round
    db.create_table(
        "parts",
        Schema::from_pairs(
            &[("pid", ColumnType::Str), ("price", ColumnType::Int)],
            &["pid"],
        )?,
    )?;
    db.create_table(
        "devices",
        Schema::from_pairs(
            &[("did", ColumnType::Str), ("category", ColumnType::Str)],
            &["did"],
        )?,
    )?;
    db.create_table(
        "devices_parts",
        Schema::from_pairs(
            &[("did", ColumnType::Str), ("pid", ColumnType::Str)],
            &["did", "pid"],
        )?,
    )?;
    db.insert("parts", row!["P1", 10])?;
    db.insert("parts", row!["P2", 20])?;
    db.insert("devices", row!["D1", "phone"])?;
    db.insert("devices", row!["D2", "phone"])?;
    db.insert("devices", row!["D3", "tablet"])?;
    db.insert("devices_parts", row!["D1", "P1"])?;
    db.insert("devices_parts", row!["D2", "P1"])?;
    db.insert("devices_parts", row!["D1", "P2"])?;
    db.set_logging(true);

    // ------------------------------------------------------------------
    // 2. The view V of Figure 1b: parts of phone devices.
    // ------------------------------------------------------------------
    let cat = DbCatalog(&db);
    let v_plan = PlanBuilder::scan(&cat, "parts")?
        .join(
            PlanBuilder::scan(&cat, "devices_parts")?,
            &[("parts.pid", "devices_parts.pid")],
        )?
        .join(
            PlanBuilder::scan(&cat, "devices")?,
            &[("devices_parts.did", "devices.did")],
        )?
        .select_eq("devices.category", "phone")?
        .project_names(&["devices_parts.did", "parts.pid", "parts.price"])?
        .build()?;
    println!("== View V (Figure 1b), algebraic plan with inferred IDs ==");
    println!("{}", explain(&v_plan));

    // The aggregate view V′ of Figure 5b: total part cost per device.
    let cat = DbCatalog(&db);
    let vagg_plan = PlanBuilder::scan(&cat, "parts")?
        .join(
            PlanBuilder::scan(&cat, "devices_parts")?,
            &[("parts.pid", "devices_parts.pid")],
        )?
        .join(
            PlanBuilder::scan(&cat, "devices")?,
            &[("devices_parts.did", "devices.did")],
        )?
        .select_eq("devices.category", "phone")?
        .group_by(
            &["devices_parts.did"],
            &[(AggFunc::Sum, "parts.price", "cost")],
        )?
        .build()?;

    // ------------------------------------------------------------------
    // 3. Set both views up for ID-based maintenance (the four passes run
    //    here: ID inference, i-diff schema generation, cache planning,
    //    materialization).
    // ------------------------------------------------------------------
    let ivm_v = IdIvm::setup(&mut db, "V", v_plan, IvmOptions::default())?;
    let ivm_vagg = IdIvm::setup(&mut db, "Vagg", vagg_plan, IvmOptions::default())?;
    println!("== Generated ∆-script for V′ (compare paper Figure 7) ==");
    println!("{}", explain_script(&ivm_vagg));

    print_view(&db, "V")?;
    print_view(&db, "Vagg")?;

    // ------------------------------------------------------------------
    // 4. The Figure 2 modification: P1's price 10 → 11. One i-diff
    //    tuple will update *two* view tuples.
    // ------------------------------------------------------------------
    println!("\n== UPDATE parts SET price = 11 WHERE pid = 'P1' ==");
    db.update_named(
        "parts",
        &Key(vec![Value::str("P1")]),
        &[("price", Value::Int(11))],
    )?;

    db.stats().reset();
    // Both views share one deferred round: fold the log once and hand
    // the same change set to each engine (`maintain` would consume the
    // log on the first call, leaving nothing for the second view).
    let net = db.fold_log();
    db.clear_log();
    let report_v = ivm_v.maintain_with_changes(&mut db, &net)?;
    let report_vagg = ivm_vagg.maintain_with_changes(&mut db, &net)?;

    print_view(&db, "V")?;
    print_view(&db, "Vagg")?;

    println!("\n== Maintenance report for V (the Q∆ of Example 1.2) ==");
    println!("{report_v}");
    println!(
        "\ncompression factor p = {:.2} (one i-diff tuple -> two view tuples)",
        report_v.compression_factor().unwrap_or(0.0)
    );
    println!("\n== Maintenance report for V′ (cache + view updated) ==");
    println!("{report_vagg}");
    Ok(())
}

fn print_view(db: &Database, name: &str) -> idivm_types::Result<()> {
    let mut rows = db.table(name)?.rows_uncounted();
    rows.sort();
    println!("\n{name} =");
    for r in rows {
        println!("  {r}");
    }
    Ok(())
}
